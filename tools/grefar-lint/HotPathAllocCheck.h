// grefar-hot-path-alloc: no direct allocating operations inside functions
// annotated GREFAR_HOT_PATH (src/util/annotations.h).
//
// The repo's per-slot contract (DESIGN.md Sec. 7) is that steady-state
// decide/reset/kernel surfaces make no heap allocations: scratch reaches a
// high-water size after a few slots and is reused in place. This check makes
// the contract static. It is deliberately NON-transitive — only calls spelled
// directly in the annotated function body are flagged; callees are audited by
// annotating them too. Audited amortized-growth sites (clear()+refill within
// high-water capacity, first-slot sizing) carry NOLINT(grefar-hot-path-alloc)
// with a justifying comment.
//
// Banned: operator new, the malloc family, growth calls on contiguous
// containers (push_back/resize/reserve/...), any mutation of node-based
// containers, and std::string construction (other than default/move).
// Allowed: assign() and clear() — the sanctioned clear-and-refill idiom.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::grefar {

class HotPathAllocCheck : public ClangTidyCheck {
public:
  HotPathAllocCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::grefar
