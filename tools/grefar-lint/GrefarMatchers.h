// Shared matcher helpers for the grefar-lint clang-tidy module.
//
// The domain checks key off the [[clang::annotate("grefar::...")]] markers
// that src/util/annotations.h plants (GREFAR_HOT_PATH, GREFAR_DETERMINISTIC).
// AnnotateAttr is inheritable, but clang only copies attributes forward onto
// redeclarations it has already seen — so the matcher walks the whole
// redeclaration chain explicitly: annotating the header declaration is
// enough to cover the out-of-line definition regardless of parse order.
#pragma once

#include <string>

#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"

namespace clang::tidy::grefar {

inline bool anyRedeclHasAnnotation(const FunctionDecl &FD, llvm::StringRef Name) {
  for (const FunctionDecl *Redecl : FD.redecls()) {
    for (const auto *A : Redecl->specific_attrs<AnnotateAttr>()) {
      if (A->getAnnotation() == Name)
        return true;
    }
  }
  return false;
}

AST_MATCHER_P(FunctionDecl, hasGrefarAnnotation, std::string, Name) {
  return anyRedeclHasAnnotation(Node, Name);
}

/// True when `Loc` is spelled in a file whose path contains `Needle` (e.g.
/// "/src/obs/") — used to exempt the observability layer itself, which is
/// the one place allowed to touch registries and clocks directly.
inline bool spelledInPathContaining(SourceLocation Loc, const SourceManager &SM,
                                    llvm::StringRef Needle) {
  if (Loc.isInvalid())
    return false;
  return SM.getFilename(SM.getSpellingLoc(Loc)).contains(Needle);
}

}  // namespace clang::tidy::grefar
