// grefar-check-side-effects: expressions inside GREFAR_CHECK-family macros
// must be side-effect-free.
//
// GREFAR_DCHECK / GREFAR_DCHECK_MSG compile out entirely in Release
// (src/util/check.h), so a side effect in their condition changes program
// behaviour across build types. GREFAR_CHECK / GREFAR_CHECK_MSG always
// evaluate today, but share the family contract: program semantics must not
// live inside an assertion, or the check can never be demoted or compiled
// out. Modeled on bugprone-assert-side-effect: match if-conditions that
// expand from the macros and contain an assignment, increment/decrement, or
// a non-const member call.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::grefar {

class CheckSideEffectsCheck : public ClangTidyCheck {
public:
  CheckSideEffectsCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::grefar
