// Seeded violations for grefar-check-side-effects. The GREFAR_CHECK-family
// macros come from the real src/util/check.h; conditions with side effects
// must diagnose, side-effect-free conditions must stay silent.
#include <vector>

#include "util/check.h"

namespace fixture {

struct Cursor {
  int pos = 0;
  int advance() { return ++pos; }
  int peek() const { return pos; }
};

void bad_increment(int i, int n) {
  GREFAR_CHECK(i++ < n);  // GREFAR-EXPECT: side effect inside a GREFAR_CHECK-family condition
}

void bad_assignment(int i, int n) {
  GREFAR_DCHECK((i = n) > 0);  // GREFAR-EXPECT: side effect inside a GREFAR_CHECK-family condition
}

void bad_mutating_member(Cursor& cursor, int n) {
  GREFAR_CHECK_MSG(cursor.advance() < n, "cursor past " << n);  // GREFAR-EXPECT: side effect inside a GREFAR_CHECK-family condition
}

void bad_dcheck_member(Cursor& cursor, int n) {
  GREFAR_DCHECK_MSG(cursor.advance() < n, "cursor past " << n);  // GREFAR-EXPECT: side effect inside a GREFAR_CHECK-family condition
}

// ---- negative controls ----------------------------------------------------

// Pure reads, const member calls, and arithmetic are all legal conditions.
void good_checks(const Cursor& cursor, const std::vector<int>& xs, int i,
                 int n) {
  GREFAR_CHECK(i < n);
  GREFAR_CHECK(cursor.peek() <= n);
  GREFAR_CHECK_MSG(!xs.empty(), "xs size " << xs.size());
  GREFAR_DCHECK(i + 1 <= n);
}

// Side effects in ordinary if-statements are outside the contract: silent.
int good_plain_if(int i, int n) {
  if (i++ < n) {
    return i;
  }
  return n;
}

}  // namespace fixture
