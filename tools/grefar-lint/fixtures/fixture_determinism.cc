// Seeded violations for grefar-determinism. Lines that must diagnose carry a
// GREFAR-EXPECT marker; everything else is a negative control.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"

namespace fixture {

GREFAR_DETERMINISTIC double det_entropy_call() {
  return static_cast<double>(::rand());  // GREFAR-EXPECT: call to 'rand'
}

GREFAR_DETERMINISTIC long det_wall_clock() {
  return static_cast<long>(::time(nullptr));  // GREFAR-EXPECT: call to 'time'
}

GREFAR_DETERMINISTIC long det_chrono_clock() {
  auto t = std::chrono::steady_clock::now();  // GREFAR-EXPECT: steady_clock
  return static_cast<long>(t.time_since_epoch().count());
}

GREFAR_DETERMINISTIC unsigned det_hardware_entropy() {
  std::random_device device;  // GREFAR-EXPECT: std::random_device
  return device();
}

GREFAR_DETERMINISTIC double det_unordered_reduction(
    const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {  // GREFAR-EXPECT: floating-point accumulation over unordered-container iteration
    total += entry.second;
  }
  return total;
}

// ---- negative controls ----------------------------------------------------

// Unannotated: clocks and entropy are fine outside the contract.
long cold_wall_clock() { return static_cast<long>(::time(nullptr)); }

// Seeded streams are the sanctioned source of randomness.
GREFAR_DETERMINISTIC unsigned det_seeded_stream(unsigned seed) {
  std::mt19937 gen(seed);
  return gen();
}

// Integer accumulation over hashed iteration is order-independent: silent.
GREFAR_DETERMINISTIC long det_unordered_count(
    const std::unordered_map<int, double>& weights) {
  long n = 0;
  for (const auto& entry : weights) {
    n += entry.second > 0.0 ? 1 : 0;
  }
  return n;
}

// Ordered containers have a stable iteration order: silent.
GREFAR_DETERMINISTIC double det_ordered_reduction(
    const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    total += w;
  }
  return total;
}

}  // namespace fixture
