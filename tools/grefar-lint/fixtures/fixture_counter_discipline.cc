// Seeded violations for grefar-counter-discipline. The mock registries live
// in fixtures/src/obs/mock_obs.h, mirroring the real src/obs API; this file
// is spelled outside /src/obs/, so raw mutations here must be flagged.
#include "src/obs/mock_obs.h"

namespace fixture {

void bad_direct_count() {
  grefar::obs::CounterRegistry* r = grefar::obs::active_counters();
  if (r != nullptr) {
    r->count("fixture.events", 1);  // GREFAR-EXPECT: raw registry mutation 'count'
  }
}

void bad_direct_gauge(grefar::obs::CounterRegistry& registry) {
  registry.gauge_max("fixture.depth", 3);  // GREFAR-EXPECT: raw registry mutation 'gauge_max'
}

void bad_unordered_merge(grefar::obs::CounterRegistry& parent,
                         const grefar::obs::CounterRegistry& child) {
  parent.merge(child);  // GREFAR-EXPECT: raw registry mutation 'merge'
}

void bad_profile_record(grefar::obs::ProfileRegistry& profile) {
  profile.record("fixture.phase", 42, 1);  // GREFAR-EXPECT: raw registry mutation 'record'
}

void bad_reset(grefar::obs::CounterRegistry& registry) {
  registry.clear();  // GREFAR-EXPECT: raw registry mutation 'clear'
}

// ---- negative controls ----------------------------------------------------

// The obs:: free-function entry points are the sanctioned write path (their
// internal registry calls are spelled in /src/obs/ and exempt).
void good_entry_points() {
  grefar::obs::count("fixture.events", 1);
  grefar::obs::gauge_max("fixture.depth", 3);
}

// Scoped installation plus entry-point writes: the full sanctioned pattern.
long good_scoped_counting() {
  grefar::obs::CounterRegistry local;
  {
    grefar::obs::CountersScope scope(&local);
    grefar::obs::count("fixture.events", 2);
  }
  return local.counter("fixture.events");
}

// Read-only accessors are reporting, not mutation: legal everywhere.
void good_reporting(const grefar::obs::CounterRegistry& counters,
                    const grefar::obs::ProfileRegistry& profile,
                    std::string& out) {
  out = counters.dump();
  out += profile.summary_table();
}

}  // namespace fixture
