// Seeded violations for grefar-hot-path-alloc. Lines that must diagnose
// carry a GREFAR-EXPECT marker (consumed by run_golden_test.py); everything
// else is a negative control and must stay silent.
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"

namespace fixture {

struct Workspace {
  std::vector<double> values;
  std::map<int, double> lookup;
  std::unordered_map<int, int> index;
  std::deque<int> pending;
  std::string label;
};

GREFAR_HOT_PATH void hot_contiguous_growth(Workspace& ws) {
  ws.values.push_back(1.0);  // GREFAR-EXPECT: allocating container call 'push_back'
  ws.values.emplace_back(2.0);  // GREFAR-EXPECT: allocating container call 'emplace_back'
  ws.values.resize(100);  // GREFAR-EXPECT: allocating container call 'resize'
  ws.values.reserve(200);  // GREFAR-EXPECT: allocating container call 'reserve'
  ws.pending.push_front(3);  // GREFAR-EXPECT: allocating container call 'push_front'
  ws.label.append("x");  // GREFAR-EXPECT: allocating container call 'append'
}

GREFAR_HOT_PATH void hot_node_mutation(Workspace& ws) {
  ws.lookup[7] = 1.0;  // GREFAR-EXPECT: node-container mutation 'operator[]'
  ws.lookup.insert({1, 2.0});  // GREFAR-EXPECT: node-container mutation 'insert'
  ws.lookup.erase(7);  // GREFAR-EXPECT: node-container mutation 'erase'
  ws.index.clear();  // GREFAR-EXPECT: node-container mutation 'clear'
}

GREFAR_HOT_PATH double* hot_raw_allocation(std::size_t n) {
  void* block = ::malloc(n);  // GREFAR-EXPECT: call to 'malloc'
  ::free(block);
  return new double[8];  // GREFAR-EXPECT: operator new
}

GREFAR_HOT_PATH std::size_t hot_string_build(const char* name) {
  std::string key(name);  // GREFAR-EXPECT: std::string construction
  return key.size();
}

// ---- negative controls ----------------------------------------------------

// Unannotated: identical body, no diagnostics.
void cold_growth(Workspace& ws) {
  ws.values.push_back(1.0);
  ws.lookup[7] = 1.0;
}

// Clear-and-refill on contiguous storage is the sanctioned idiom: capacity
// is retained, so steady-state refills never allocate.
GREFAR_HOT_PATH void hot_refill(Workspace& ws, std::size_t n) {
  ws.values.clear();
  ws.values.assign(n, 0.0);
  for (std::size_t i = 0; i < ws.values.size(); ++i) {
    ws.values[i] = static_cast<double>(i);
  }
}

// Audited amortized growth takes an explicit NOLINT and must stay silent.
GREFAR_HOT_PATH void hot_audited_growth(Workspace& ws) {
  ws.values.push_back(2.0);  // NOLINT(grefar-hot-path-alloc)
}

}  // namespace fixture
