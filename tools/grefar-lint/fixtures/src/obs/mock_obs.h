// Minimal stand-in for src/obs/counters.h + profile.h, shaped like the real
// registries so fixture_counter_discipline.cc needs no repo dependencies.
//
// This header deliberately lives under fixtures/src/obs/: the
// grefar-counter-discipline check exempts call sites spelled in paths
// containing "/src/obs/", so the registry mutations inside the inline
// obs::count / obs::gauge_max entry points below must NOT be flagged — the
// fixture run exercises the exemption as well as the ban.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace grefar::obs {

class CounterRegistry {
public:
  void count(const std::string& name, std::int64_t delta) {
    counters_[name] += delta;
  }
  void gauge_max(const std::string& name, std::int64_t value) {
    auto& g = gauges_[name];
    if (value > g) g = value;
  }
  void merge(const CounterRegistry& other) {
    for (const auto& [name, v] : other.counters_) counters_[name] += v;
  }
  void clear() { counters_.clear(); }
  std::int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  std::string dump() const { return {}; }

private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
};

class ProfileRegistry {
public:
  void record(const std::string& name, std::int64_t ns, std::int64_t calls) {
    ns_[name] += ns;
    calls_[name] += calls;
  }
  void merge(const ProfileRegistry& other) {
    for (const auto& [name, v] : other.ns_) ns_[name] += v;
  }
  std::string summary_table() const { return {}; }

private:
  std::map<std::string, std::int64_t> ns_;
  std::map<std::string, std::int64_t> calls_;
};

inline CounterRegistry*& active_counters_slot() {
  thread_local CounterRegistry* active = nullptr;
  return active;
}

inline CounterRegistry* active_counters() { return active_counters_slot(); }

// Sanctioned entry points: mutations here are spelled in /src/obs/ and are
// therefore exempt from grefar-counter-discipline, like the real inline
// free functions in src/obs/counters.h.
inline void count(const std::string& name, std::int64_t delta) {
  if (CounterRegistry* r = active_counters()) r->count(name, delta);
}

inline void gauge_max(const std::string& name, std::int64_t value) {
  if (CounterRegistry* r = active_counters()) r->gauge_max(name, value);
}

class CountersScope {
public:
  explicit CountersScope(CounterRegistry* r)
      : previous_(active_counters_slot()) {
    active_counters_slot() = r;
  }
  ~CountersScope() { active_counters_slot() = previous_; }
  CountersScope(const CountersScope&) = delete;
  CountersScope& operator=(const CountersScope&) = delete;

private:
  CounterRegistry* previous_;
};

}  // namespace grefar::obs
