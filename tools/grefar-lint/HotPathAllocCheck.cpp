#include "HotPathAllocCheck.h"

#include "GrefarMatchers.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::grefar {

namespace {
constexpr char kTail[] =
    "; steady-state hot paths must reuse preallocated storage (audited "
    "amortized growth takes NOLINT(grefar-hot-path-alloc))";
}  // namespace

void HotPathAllocCheck::registerMatchers(MatchFinder *Finder) {
  auto InHot = forFunction(
      functionDecl(hasGrefarAnnotation("grefar::hot_path")).bind("func"));

  Finder->addMatcher(cxxNewExpr(InHot).bind("new"), this);

  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::malloc", "::calloc",
                                              "::realloc", "::aligned_alloc",
                                              "::posix_memalign", "::strdup"))),
               InHot)
          .bind("alloc-call"),
      this);

  // Growth on contiguous containers. assign/clear stay legal: they are the
  // sanctioned refill idiom and never grow past high-water capacity.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              ofClass(hasAnyName("::std::vector", "::std::basic_string",
                                 "::std::deque")),
              hasAnyName("push_back", "emplace_back", "resize", "reserve",
                         "insert", "emplace", "append", "push_front",
                         "emplace_front"))),
          InHot)
          .bind("grow"),
      this);

  // Node-based containers allocate per element; any mutation is banned on
  // the hot path (their per-node malloc cannot be amortized away).
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              ofClass(hasAnyName(
                  "::std::map", "::std::multimap", "::std::set",
                  "::std::multiset", "::std::unordered_map",
                  "::std::unordered_set", "::std::unordered_multimap",
                  "::std::unordered_multiset", "::std::list")),
              hasAnyName("insert", "emplace", "emplace_hint", "try_emplace",
                         "insert_or_assign", "erase", "clear", "merge",
                         "operator[]"))),
          InHot)
          .bind("node"),
      this);

  Finder->addMatcher(
      cxxConstructExpr(
          hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
              classTemplateSpecializationDecl(hasName("::std::basic_string")))))),
          unless(hasDeclaration(cxxConstructorDecl(
              anyOf(isDefaultConstructor(), isMoveConstructor())))),
          InHot)
          .bind("string-ctor"),
      this);
}

void HotPathAllocCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr)
    return;

  if (const auto *E = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    diag(E->getBeginLoc(), "operator new in GREFAR_HOT_PATH function %0%1")
        << Func << kTail;
  } else if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("alloc-call")) {
    diag(E->getBeginLoc(), "call to '%0' in GREFAR_HOT_PATH function %1%2")
        << E->getDirectCallee()->getName() << Func << kTail;
  } else if (const auto *E =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("grow")) {
    diag(E->getBeginLoc(),
         "allocating container call '%0' in GREFAR_HOT_PATH function %1%2")
        << E->getMethodDecl()->getName() << Func << kTail;
  } else if (const auto *E =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("node")) {
    diag(E->getBeginLoc(),
         "node-container mutation '%0' in GREFAR_HOT_PATH function %1%2")
        << E->getMethodDecl()->getNameAsString() << Func << kTail;
  } else if (const auto *E =
                 Result.Nodes.getNodeAs<CXXConstructExpr>("string-ctor")) {
    diag(E->getBeginLoc(),
         "std::string construction in GREFAR_HOT_PATH function %0%1")
        << Func << kTail;
  }
}

}  // namespace clang::tidy::grefar
