// Registers the grefar-* checks as a clang-tidy plugin module.
//
// Built as a MODULE library and loaded with `clang-tidy --load
// libgrefar_tidy_module.so`; all LLVM/Clang symbols resolve from the
// clang-tidy executable itself, so the module links nothing.
#include "CheckSideEffectsCheck.h"
#include "CounterDisciplineCheck.h"
#include "DeterminismCheck.h"
#include "HotPathAllocCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace grefar {

class GrefarModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<HotPathAllocCheck>("grefar-hot-path-alloc");
    Factories.registerCheck<DeterminismCheck>("grefar-determinism");
    Factories.registerCheck<CounterDisciplineCheck>(
        "grefar-counter-discipline");
    Factories.registerCheck<CheckSideEffectsCheck>(
        "grefar-check-side-effects");
  }
};

}  // namespace grefar

static ClangTidyModuleRegistry::Add<grefar::GrefarModule>
    X("grefar-module",
      "GreFar domain checks: hot-path allocation, determinism, observability "
      "and contract-check discipline.");

// Referenced nowhere; exists so the static registration above is not
// dead-stripped from the module.
volatile int GrefarModuleAnchorSource = 0;

}  // namespace clang::tidy
