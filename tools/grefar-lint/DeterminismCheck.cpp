#include "DeterminismCheck.h"

#include "GrefarMatchers.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::grefar {

void DeterminismCheck::registerMatchers(MatchFinder *Finder) {
  auto InDet = forFunction(
      functionDecl(hasGrefarAnnotation("grefar::deterministic")).bind("func"));

  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::srand", "::random", "::srandom", "::rand_r",
                   "::drand48", "::erand48", "::lrand48", "::nrand48",
                   "::mrand48", "::jrand48", "::time", "::clock",
                   "::gettimeofday", "::clock_gettime", "::timespec_get",
                   "::pthread_self", "::gettid",
                   "::std::this_thread::get_id"))),
               InDet)
          .bind("banned-call"),
      this);

  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::steady_clock",
                                      "::std::chrono::high_resolution_clock")))),
               InDet)
          .bind("banned-call"),
      this);

  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasName("::std::random_device")))),
                       InDet)
          .bind("random-device"),
      this);

  // Range-for over a hashed container with a floating-point accumulation in
  // the body: the reduction order follows the hash layout, not the data.
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(classTemplateSpecializationDecl(
                  hasAnyName("::std::unordered_map", "::std::unordered_set",
                             "::std::unordered_multimap",
                             "::std::unordered_multiset")))))))),
          hasDescendant(
              binaryOperator(isAssignmentOperator(),
                             hasLHS(expr(hasType(realFloatingPointType()))))
                  .bind("accum")),
          InDet)
          .bind("unordered-loop"),
      this);
}

void DeterminismCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("banned-call")) {
    if (spelledInPathContaining(E->getBeginLoc(), SM, "/src/obs/"))
      return;
    diag(E->getBeginLoc(),
         "call to '%0' in GREFAR_DETERMINISTIC function %1; decisions must "
         "be bit-reproducible (timing belongs in src/obs behind the "
         "profiling gate)")
        << E->getDirectCallee()->getQualifiedNameAsString() << Func;
  } else if (const auto *E =
                 Result.Nodes.getNodeAs<CXXConstructExpr>("random-device")) {
    if (spelledInPathContaining(E->getBeginLoc(), SM, "/src/obs/"))
      return;
    diag(E->getBeginLoc(),
         "std::random_device in GREFAR_DETERMINISTIC function %0; decisions "
         "must be bit-reproducible (use a seeded stream)")
        << Func;
  } else if (const auto *Loop =
                 Result.Nodes.getNodeAs<CXXForRangeStmt>("unordered-loop")) {
    if (spelledInPathContaining(Loop->getBeginLoc(), SM, "/src/obs/"))
      return;
    diag(Loop->getBeginLoc(),
         "floating-point accumulation over unordered-container iteration in "
         "GREFAR_DETERMINISTIC function %0; hashed iteration order is not a "
         "stable reduction order")
        << Func;
  }
}

}  // namespace clang::tidy::grefar
