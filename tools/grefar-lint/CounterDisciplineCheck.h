// grefar-counter-discipline: observability registries are mutated only
// inside src/obs (and tests).
//
// The counters/profile determinism contract (DESIGN.md Sec. 11, src/obs/
// counters.h) holds because every mutation funnels through the obs entry
// points: CountersScope/ProfileScope install per-task registries, the
// obs::count / obs::gauge_max / obs::record free functions write through the
// thread-local active pointer, and src/obs merges task registries back in
// task order. A raw registry mutation anywhere else (r->count(...),
// parent->merge(...)) bypasses that ordering and silently breaks
// bit-identical counter totals across --jobs values.
//
// Flagged: calls to the mutating CounterRegistry / ProfileRegistry members
// (count, gauge_max, record, merge, clear) spelled outside src/obs/ and
// tests/. Read-only accessors (counter(), gauges(), dump(), summary_table())
// stay legal everywhere — reporting is not mutation.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::grefar {

class CounterDisciplineCheck : public ClangTidyCheck {
public:
  CounterDisciplineCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::grefar
