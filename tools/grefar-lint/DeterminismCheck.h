// grefar-determinism: functions annotated GREFAR_DETERMINISTIC must be
// bit-reproducible (DESIGN.md Sec. 11: identical decisions at any
// intra_slot_jobs / --jobs value, and Sec. 12: sparse == dense bitwise).
//
// Flagged inside annotated functions:
//   * randomness sources: rand/srand/random/drand48 family and
//     std::random_device (seeded mt19937 streams are fine — they are not
//     reachable through these entry points);
//   * wall/CPU clock reads: time, clock, gettimeofday, clock_gettime, and
//     std::chrono::{system,steady,high_resolution}_clock::now — timing
//     belongs in src/obs behind the profiling gate (obs::PhaseClock,
//     obs::ScopedTimer), never in decision code;
//   * thread identity: std::this_thread::get_id, pthread_self, gettid;
//   * floating-point accumulation inside a range-for over an unordered
//     container: hashed iteration order is not a stable reduction order, so
//     such sums are not reproducible across libstdc++ versions or seeds.
//
// Code spelled in src/obs files is exempt: the observability layer owns the
// clocks and hides them behind the profiling gate.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::grefar {

class DeterminismCheck : public ClangTidyCheck {
public:
  DeterminismCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::grefar
