#include "CounterDisciplineCheck.h"

#include "GrefarMatchers.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::grefar {

void CounterDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              ofClass(hasAnyName("::grefar::obs::CounterRegistry",
                                 "::grefar::obs::ProfileRegistry")),
              hasAnyName("count", "gauge_max", "record", "merge", "clear"))))
          .bind("mutation"),
      this);
}

void CounterDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *E = Result.Nodes.getNodeAs<CXXMemberCallExpr>("mutation");
  if (E == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  // The obs layer owns the registries; tests exercise them directly.
  if (spelledInPathContaining(E->getBeginLoc(), SM, "/src/obs/") ||
      spelledInPathContaining(E->getBeginLoc(), SM, "/tests/"))
    return;
  diag(E->getBeginLoc(),
       "raw registry mutation '%0' outside src/obs; go through "
       "CountersScope/ProfileScope and the obs::count / obs::gauge_max / "
       "obs::record entry points (ordered merges live in obs)")
      << E->getMethodDecl()->getName();
}

}  // namespace clang::tidy::grefar
