#include "CheckSideEffectsCheck.h"

#include "GrefarMatchers.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::grefar {

namespace {

AST_MATCHER(Expr, grefarHasSideEffect) {
  if (const auto *Op = dyn_cast<UnaryOperator>(&Node))
    return Op->isIncrementDecrementOp();
  if (const auto *Op = dyn_cast<BinaryOperator>(&Node))
    return Op->isAssignmentOp();
  if (const auto *Op = dyn_cast<CXXOperatorCallExpr>(&Node)) {
    const OverloadedOperatorKind K = Op->getOperator();
    return K == OO_Equal || K == OO_PlusPlus || K == OO_MinusMinus ||
           K == OO_PlusEqual || K == OO_MinusEqual || K == OO_StarEqual ||
           K == OO_SlashEqual || K == OO_PercentEqual || K == OO_AmpEqual ||
           K == OO_PipeEqual || K == OO_CaretEqual || K == OO_LessLessEqual ||
           K == OO_GreaterGreaterEqual;
  }
  if (const auto *Call = dyn_cast<CXXMemberCallExpr>(&Node)) {
    const auto *Method = dyn_cast_or_null<CXXMethodDecl>(Call->getMethodDecl());
    if (Method == nullptr || Method->isConst())
      return false;
    // Lookup/iterator accessors resolve to their non-const overload on a
    // mutable object (e.g. `values_.end()` in a non-const method) without
    // observable effect — treating them as mutations would be pure noise.
    static const llvm::StringRef Pure[] = {
        "begin", "end",  "rbegin",      "rend",        "cbegin",     "cend",
        "find",  "data", "lower_bound", "upper_bound", "equal_range"};
    const IdentifierInfo *Id = Method->getIdentifier();
    if (Id != nullptr) {
      for (llvm::StringRef Name : Pure) {
        if (Id->getName() == Name)
          return false;
      }
    }
    return true;
  }
  return isa<CXXNewExpr>(Node) || isa<CXXDeleteExpr>(Node);
}

bool isCheckFamilyMacro(StringRef Name) {
  return Name == "GREFAR_CHECK" || Name == "GREFAR_CHECK_MSG" ||
         Name == "GREFAR_DCHECK" || Name == "GREFAR_DCHECK_MSG";
}

}  // namespace

void CheckSideEffectsCheck::registerMatchers(MatchFinder *Finder) {
  // Every GREFAR_CHECK-family macro expands to `if (!(cond)) ...`, so the
  // condition always wraps `cond` as a descendant. The macro-origin test
  // happens in check(): matching all if-conditions here and filtering by
  // expansion stack is how bugprone-assert-side-effect handles macros too.
  Finder->addMatcher(
      ifStmt(hasCondition(
                 forEachDescendant(expr(grefarHasSideEffect()).bind("side"))))
          .bind("if"),
      this);
}

void CheckSideEffectsCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *If = Result.Nodes.getNodeAs<IfStmt>("if");
  const auto *Side = Result.Nodes.getNodeAs<Expr>("side");
  if (If == nullptr || Side == nullptr)
    return;

  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = If->getIfLoc();
  bool FromCheckMacro = false;
  while (Loc.isMacroID()) {
    const StringRef MacroName =
        Lexer::getImmediateMacroName(Loc, SM, getLangOpts());
    if (isCheckFamilyMacro(MacroName)) {
      FromCheckMacro = true;
      break;
    }
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  if (!FromCheckMacro)
    return;

  diag(Side->getExprLoc(),
       "side effect inside a GREFAR_CHECK-family condition; contract checks "
       "must be side-effect-free (GREFAR_DCHECK conditions are not even "
       "evaluated in Release)");
}

}  // namespace clang::tidy::grefar
