#!/usr/bin/env python3
"""Golden-diagnostics harness for the grefar-lint clang-tidy checks.

Each fixture under fixtures/ seeds deliberate violations. Every line that
must produce a diagnostic carries a marker comment:

    ws.values.push_back(1.0);  // GREFAR-EXPECT: allocating container call 'push_back'

The harness runs clang-tidy with ONLY the check under test enabled
(--checks=-*,<check>), loads the plugin, and normalises the emitted
diagnostics to (line, message). It then verifies an exact correspondence:

  * every marker line produced at least one diagnostic whose message
    contains the marker substring, and
  * every diagnostic (for the check under test, in the fixture file) landed
    on a marker line.

Negative-control lines — unannotated functions, sanctioned idioms, and
NOLINT'd escapes — carry no marker, so any diagnostic on them fails the
test. Matching on message substrings instead of full golden text keeps the
harness stable across clang-tidy versions, which vary in column placement
and note formatting but not in the check's own message text.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

MARKER_RE = re.compile(r"//\s*GREFAR-EXPECT:\s*(.+?)\s*$")
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<checks>[\w\-,.*]+)\]\s*$"
)


def parse_markers(fixture: Path):
    markers = []
    for lineno, text in enumerate(fixture.read_text().splitlines(), start=1):
        m = MARKER_RE.search(text)
        if m:
            markers.append((lineno, m.group(1)))
    return markers


def run_clang_tidy(args):
    fixture = Path(args.fixture).resolve()
    repo_root = Path(args.repo_root).resolve()
    cmd = [
        args.clang_tidy,
        f"--load={args.plugin}",
        f"--checks=-*,{args.check}",
        # Neutralise WarningsAsErrors from the repo .clang-tidy so exit
        # codes stay meaningful (nonzero == real failure, not a finding).
        "--warnings-as-errors=-*",
        "--quiet",
        str(fixture),
        "--",
        "-std=c++20",
        f"-I{repo_root / 'src'}",
        f"-I{fixture.parent}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc, cmd


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--fixture", required=True)
    parser.add_argument("--repo-root", required=True)
    args = parser.parse_args()

    fixture = Path(args.fixture).resolve()
    markers = parse_markers(fixture)
    if not markers:
        print(f"FAIL: no GREFAR-EXPECT markers found in {fixture}")
        return 1

    proc, cmd = run_clang_tidy(args)
    if "Error while processing" in proc.stderr or "error: " in proc.stderr:
        print("FAIL: clang-tidy reported a processing error")
        print("command:", " ".join(cmd))
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        return 1

    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        if Path(m.group("file")).name != fixture.name:
            continue  # diagnostics from included headers are out of scope
        if args.check not in m.group("checks"):
            continue
        diags.append((int(m.group("line")), m.group("msg")))

    failures = []
    for lineno, substr in markers:
        hits = [msg for dline, msg in diags if dline == lineno]
        if not hits:
            failures.append(f"line {lineno}: expected '{substr}', got nothing")
        elif not any(substr in msg for msg in hits):
            failures.append(
                f"line {lineno}: expected '{substr}' in one of {hits!r}"
            )
    marker_lines = {lineno for lineno, _ in markers}
    for dline, msg in diags:
        if dline not in marker_lines:
            failures.append(f"line {dline}: unexpected diagnostic: {msg}")

    if failures:
        print(f"FAIL: {args.check} on {fixture.name}")
        for f in failures:
            print("  " + f)
        print("--- raw clang-tidy output ---")
        print(proc.stdout)
        return 1

    print(
        f"PASS: {args.check}: {len(markers)} expected diagnostics matched, "
        f"no extras"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
