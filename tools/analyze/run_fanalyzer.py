#!/usr/bin/env python3
"""Opt-in GCC static-analyzer sweep (`cmake --build build --target analyze`).

Re-compiles every first-party translation unit from the exported compile
database with -fanalyzer (objects sent to /dev/null — the analyzer runs as a
middle-end pass, so -fsyntax-only would skip it). Findings are normalised to
`relative/path.cc [-Wanalyzer-id]` keys and diffed against the triaged
baseline in SUPPRESSIONS.md next to this script.

Exit status: 0 when every finding is suppressed (or none), 1 when new
findings appear. GCC's C++ interprocedural analysis is still maturing, so
CI runs this step non-blocking (continue-on-error) — the value is the diff
report, not a gate. New findings should be either fixed or triaged into
SUPPRESSIONS.md with a one-line justification.
"""

import argparse
import concurrent.futures
import json
import re
import shlex
import subprocess
import sys
from pathlib import Path

FINDING_RE = re.compile(r"warning: .* \[(-Wanalyzer-[\w\-]+)\]")
SUPPRESSION_RE = re.compile(r"`([^`]+\.cc) (\-Wanalyzer\-[\w\-]+)`")


def load_suppressions(path: Path):
    suppressed = set()
    if path.exists():
        for m in SUPPRESSION_RE.finditer(path.read_text()):
            suppressed.add((m.group(1), m.group(2)))
    return suppressed


def analyze_one(entry, source_root: Path, timeout: int):
    """Returns (relpath, set of warning ids, note)."""
    file_path = Path(entry["file"])
    rel = str(file_path.relative_to(source_root))
    if "command" in entry:
        argv = shlex.split(entry["command"])
    else:
        argv = list(entry["arguments"])
    # Swap the object output for /dev/null and bolt the analyzer on.
    out_args = []
    skip_next = False
    for a in argv:
        if skip_next:
            skip_next = False
            continue
        if a == "-o":
            skip_next = True
            continue
        out_args.append(a)
    out_args += ["-o", "/dev/null", "-fanalyzer"]
    try:
        proc = subprocess.run(
            out_args,
            cwd=entry.get("directory", "."),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return rel, set(), "timeout (skipped)"
    ids = set(FINDING_RE.findall(proc.stderr))
    note = "" if proc.returncode == 0 else f"exit {proc.returncode}"
    return rel, ids, note


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-db", required=True)
    parser.add_argument("--source-root", required=True)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--timeout", type=int, default=180,
                        help="per-TU analyzer timeout in seconds")
    parser.add_argument("--prefix", action="append", default=None,
                        help="source subtrees to analyze (default: src)")
    args = parser.parse_args()

    source_root = Path(args.source_root).resolve()
    prefixes = args.prefix or ["src"]
    entries = []
    for entry in json.loads(Path(args.compile_db).read_text()):
        file_path = Path(entry["file"])
        try:
            rel = file_path.relative_to(source_root)
        except ValueError:
            continue
        if any(rel.parts and rel.parts[0] == p for p in prefixes):
            entries.append(entry)
    if not entries:
        print("analyze: no first-party TUs found in compile database")
        return 1

    suppressed = load_suppressions(Path(__file__).parent / "SUPPRESSIONS.md")
    new_findings = []
    notes = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(analyze_one, e, source_root, args.timeout)
            for e in entries
        ]
        for future in concurrent.futures.as_completed(futures):
            rel, ids, note = future.result()
            if note:
                notes.append(f"  {rel}: {note}")
            for wid in sorted(ids):
                if (rel, wid) in suppressed:
                    continue
                new_findings.append(f"  {rel} {wid}")

    print(f"analyze: {len(entries)} TUs, {len(suppressed)} suppressions")
    if notes:
        print("notes:")
        for n in sorted(notes):
            print(n)
    if new_findings:
        print("NEW findings (fix, or triage into tools/analyze/SUPPRESSIONS.md):")
        for f in sorted(set(new_findings)):
            print(f)
        return 1
    print("analyze: no unsuppressed findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
