// simulate — the general-purpose simulation runner.
//
// Everything configurable from the command line: the cluster (inline paper
// scenario or a JSON config file), the scheduler (any policy in the
// library), horizon and seed; metrics summary on stdout and optional CSV of
// the full per-slot series. The entry point a downstream user scripts
// against.
//
//   ./examples/simulate --scheduler grefar --V 7.5 --beta 100
//   ./examples/simulate --config configs/paper_experiment.json --csv out.csv
//   ./examples/simulate --scheduler mpc --mpc-window 8 --horizon 300
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "lookahead/mpc.h"
#include "scenario/config_io.h"
#include "scenario/paper_scenario.h"
#include "stats/summary_table.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/strings.h"

using namespace grefar;

namespace {

std::shared_ptr<Scheduler> make_scheduler(const std::string& kind,
                                          const PaperScenario& scenario,
                                          const GreFarParams& params,
                                          const CliParser& cli) {
  if (kind == "grefar") {
    return std::make_shared<GreFarScheduler>(scenario.config, params);
  }
  if (kind == "always") return std::make_shared<AlwaysScheduler>(scenario.config);
  if (kind == "cheapest") {
    return std::make_shared<CheapestFirstScheduler>(scenario.config);
  }
  if (kind == "random") {
    return std::make_shared<RandomScheduler>(scenario.config, scenario.seed ^ 0x5EEDULL);
  }
  if (kind == "local") return std::make_shared<LocalOnlyScheduler>(scenario.config);
  if (kind == "threshold") {
    return std::make_shared<PriceThresholdScheduler>(scenario.config,
                                                     cli.get_double("threshold"));
  }
  if (kind == "mpc") {
    MpcParams mpc;
    mpc.window = cli.get_int("mpc-window");
    mpc.r_max = params.r_max;
    mpc.h_max = params.h_max;
    return std::make_shared<MpcScheduler>(scenario.config, scenario.prices,
                                          scenario.availability, scenario.arrivals,
                                          mpc);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("simulate", "run any scheduler on a configurable cluster");
  cli.add_option("scheduler", "grefar",
                 "grefar | always | cheapest | random | local | threshold | mpc");
  cli.add_option("config", "", "JSON experiment config (cluster + grefar params)");
  cli.add_option("horizon", "1000", "slots (hours) to simulate");
  cli.add_option("seed", "42", "scenario seed");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "0", "GreFar energy-fairness parameter");
  cli.add_option("threshold", "0.4", "price threshold (scheduler=threshold)");
  cli.add_option("mpc-window", "8", "lookahead window (scheduler=mpc)");
  cli.add_option("csv", "", "write per-slot metrics to this CSV file");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }

  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  PaperScenario scenario = make_paper_scenario(seed);
  GreFarParams params = paper_grefar_params(cli.get_double("V"), cli.get_double("beta"));
  if (auto path = cli.get_string("config"); !path.empty()) {
    auto loaded = load_experiment_config(path);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.error().message << "\n";
      return 1;
    }
    scenario.config = loaded.value().cluster;
    params = loaded.value().grefar;
  }

  auto scheduler = make_scheduler(cli.get_string("scheduler"), scenario, params, cli);
  if (scheduler == nullptr) {
    std::cerr << "error: unknown scheduler '" << cli.get_string("scheduler") << "'\n";
    return 1;
  }

  auto engine = run_scenario(scenario, scheduler, horizon);
  const auto& m = engine->metrics();

  std::cout << engine->scheduler().name() << " on " << horizon << " h (seed " << seed
            << ")\n\n";
  SummaryTable summary({"metric", "value"});
  summary.add_row("avg energy cost", {m.final_average_energy_cost()});
  summary.add_row("avg fairness", {m.final_average_fairness()});
  summary.add_row("avg delay (slots)", {m.mean_delay()});
  summary.add_row("delay p50", {m.delay_p50()});
  summary.add_row("delay p95", {m.delay_p95()});
  summary.add_row("delay p99", {m.delay_p99()});
  summary.add_row("completions", {static_cast<double>(m.delay_stats.count())});
  for (std::size_t i = 0; i < m.num_data_centers(); ++i) {
    summary.add_row("work/slot DC" + std::to_string(i + 1), {m.mean_dc_work(i)});
  }
  summary.add_row("final backlog (jobs)",
                  {m.total_queue_jobs.empty()
                       ? 0.0
                       : m.total_queue_jobs.at(m.total_queue_jobs.size() - 1)});
  std::cout << summary.render();

  if (auto csv_path = cli.get_string("csv"); !csv_path.empty()) {
    std::vector<const TimeSeries*> series{&m.energy_cost, &m.fairness,
                                          &m.arrived_work, &m.total_queue_jobs};
    for (const auto& s : m.dc_work) series.push_back(&s);
    for (const auto& s : m.dc_price) series.push_back(&s);
    for (const auto& s : m.account_work) series.push_back(&s);
    if (auto st = write_file(csv_path, time_series_to_csv(series)); !st.ok()) {
      std::cerr << "error: " << st.error().message << "\n";
      return 1;
    }
    std::cout << "\nwrote " << csv_path << "\n";
  }
  return 0;
}
