// Trace tooling: generate, inspect and replay workload/price traces.
//
// Subcommand-style example exercising the trace substrate:
//   --mode generate  writes a job trace + price trace CSV pair from the
//                    calibrated paper generators;
//   --mode inspect   prints summary statistics of an existing trace pair;
//   --mode replay    drives GreFar from trace files instead of generators
//                    (the workflow for plugging in *real* recorded data).
//
//   ./examples/trace_tools --mode generate --jobs jobs.csv --prices prices.csv
//   ./examples/trace_tools --mode replay  --jobs jobs.csv --prices prices.csv
#include <iostream>
#include <memory>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "stats/running_stats.h"
#include "stats/summary_table.h"
#include "trace/job_trace.h"
#include "trace/price_trace.h"
#include "util/cli.h"
#include "util/strings.h"

using namespace grefar;

namespace {

int generate(const PaperScenario& scenario, std::int64_t horizon,
             const std::string& jobs_path, const std::string& prices_path) {
  auto counts = materialize_arrivals(*scenario.arrivals, horizon);
  auto series = materialize_prices(*scenario.prices, horizon);
  if (auto st = write_job_trace(jobs_path, counts); !st.ok()) {
    std::cerr << "error: " << st.error().message << "\n";
    return 1;
  }
  if (auto st = write_price_trace(prices_path, series); !st.ok()) {
    std::cerr << "error: " << st.error().message << "\n";
    return 1;
  }
  std::cout << "wrote " << jobs_path << " (" << horizon << " slots, "
            << scenario.config.num_job_types() << " job types)\n"
            << "wrote " << prices_path << " (3 data centers)\n";
  return 0;
}

int inspect(const PaperScenario& scenario, const std::string& jobs_path,
            const std::string& prices_path) {
  auto counts = read_job_trace(jobs_path, scenario.config.num_job_types());
  if (!counts.ok()) {
    std::cerr << "error: " << counts.error().message << "\n";
    return 1;
  }
  auto series = read_price_trace(prices_path, scenario.config.num_data_centers());
  if (!series.ok()) {
    std::cerr << "error: " << series.error().message << "\n";
    return 1;
  }
  std::cout << "job trace: " << counts.value().size() << " slots\n";
  SummaryTable jobs({"type", "work d", "account", "mean jobs/slot", "max jobs/slot"});
  for (std::size_t j = 0; j < scenario.config.num_job_types(); ++j) {
    RunningStats stats;
    for (const auto& row : counts.value()) stats.add(static_cast<double>(row[j]));
    jobs.add_row(scenario.config.job_types[j].name,
                 {scenario.config.job_types[j].work,
                  static_cast<double>(scenario.config.job_types[j].account + 1),
                  stats.mean(), stats.max()});
  }
  std::cout << jobs.render() << "\n";
  SummaryTable prices({"dc", "mean price", "min", "max"});
  for (std::size_t dc = 0; dc < series.value().size(); ++dc) {
    RunningStats stats;
    for (double p : series.value()[dc]) stats.add(p);
    // Built in two steps: GCC 12's -Wrestrict misfires on `"#" + temporary`.
    std::string label = "#";
    label += std::to_string(dc + 1);
    prices.add_row(label, {stats.mean(), stats.min(), stats.max()});
  }
  std::cout << prices.render();
  return 0;
}

int replay(const PaperScenario& scenario, std::int64_t horizon,
           const std::string& jobs_path, const std::string& prices_path, double V) {
  auto counts = read_job_trace(jobs_path, scenario.config.num_job_types());
  auto series = read_price_trace(prices_path, scenario.config.num_data_centers());
  if (!counts.ok() || !series.ok()) {
    std::cerr << "error: cannot read traces (run --mode generate first)\n";
    return 1;
  }
  auto arrivals = std::make_shared<TableArrivals>(std::move(counts).value());
  auto prices = std::make_shared<TablePriceModel>(std::move(series).value());
  auto scheduler = std::make_shared<GreFarScheduler>(scenario.config,
                                                     paper_grefar_params(V, 0.0));
  SimulationEngine engine(scenario.config, prices, scenario.availability, arrivals,
                          scheduler);
  engine.run(horizon);
  const auto& m = engine.metrics();
  std::cout << "replayed " << horizon << " slots from trace files with "
            << scheduler->name() << "\n"
            << "  avg energy cost: " << format_fixed(m.final_average_energy_cost(), 3)
            << "\n  avg delay:       " << format_fixed(m.mean_delay(), 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("trace_tools", "generate / inspect / replay workload & price traces");
  cli.add_option("mode", "generate", "generate | inspect | replay");
  cli.add_option("horizon", "336", "slots to generate / replay (2 weeks)");
  cli.add_option("jobs", "jobs_trace.csv", "job trace path");
  cli.add_option("prices", "prices_trace.csv", "price trace path");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter for replay");
  cli.add_option("seed", "42", "generator seed");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }

  auto scenario = make_paper_scenario(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto mode = cli.get_string("mode");
  const auto horizon = cli.get_int("horizon");
  const auto jobs = cli.get_string("jobs");
  const auto prices = cli.get_string("prices");
  if (mode == "generate") return generate(scenario, horizon, jobs, prices);
  if (mode == "inspect") return inspect(scenario, jobs, prices);
  if (mode == "replay") {
    return replay(scenario, horizon, jobs, prices, cli.get_double("V"));
  }
  std::cerr << "unknown --mode '" << mode << "' (generate | inspect | replay)\n";
  return 1;
}
