// Multi-tenant fairness: tuning beta on a shared cluster.
//
// Four organizations share the paper's 3-DC cluster with target shares
// 40/30/15/15%. This example sweeps the energy-fairness parameter beta and
// reports, per organization, the achieved share of processed work — showing
// how beta moves allocations toward the targets at a small energy premium.
//
//   ./examples/fair_sharing [--horizon 1000] [--V 7.5] [--seed 42]
#include <iostream>
#include <memory>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "stats/summary_table.h"
#include "util/cli.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;

  CliParser cli("fair_sharing", "beta sweep on the shared 3-DC cluster");
  cli.add_option("horizon", "1000", "slots (hours) to simulate");
  cli.add_option("V", "7.5", "cost-delay parameter");
  cli.add_option("beta", "0,100,300,1000", "beta values to sweep");
  cli.add_option("seed", "42", "scenario seed");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }
  const auto horizon = cli.get_int("horizon");
  const double V = cli.get_double("V");
  const auto betas = cli.get_double_list("beta");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  PaperScenario scenario = make_paper_scenario(seed);
  std::cout << "fairness weights:";
  for (const auto& account : scenario.config.accounts) {
    std::cout << "  " << account.name << "=" << format_fixed(account.gamma * 100, 0)
              << "%";
  }
  std::cout << "\n\n";

  SummaryTable table({"beta", "org1 %", "org2 %", "org3 %", "org4 %",
                      "avg fairness", "avg energy cost", "avg delay"});
  for (double beta : betas) {
    auto engine = run_scenario(
        scenario,
        std::make_shared<GreFarScheduler>(scenario.config, paper_grefar_params(V, beta)),
        horizon);
    const auto& m = engine->metrics();
    double total = 0.0;
    std::vector<double> per_org;
    for (const auto& series : m.account_work) {
      per_org.push_back(series.sum());
      total += series.sum();
    }
    std::vector<double> row;
    for (double w : per_org) row.push_back(total > 0 ? 100.0 * w / total : 0.0);
    row.push_back(m.final_average_fairness());
    row.push_back(m.final_average_energy_cost());
    row.push_back(m.mean_delay());
    table.add_row("beta=" + format_fixed(beta, 0), row, 2);
  }
  std::cout << table.render()
            << "\nShares of *processed* work track arrivals when demand is below\n"
               "capacity (everything eventually runs); the fairness score instead\n"
               "rewards allocating each slot's resources near the target split,\n"
               "which larger beta achieves — note the fairness column rising and\n"
               "delay falling, at a modest energy premium at high beta.\n";
  return 0;
}
