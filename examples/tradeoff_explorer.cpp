// Energy/fairness/delay tradeoff explorer.
//
// Sweeps a (V, beta) grid over the paper scenario and prints the achieved
// operating points — the data a capacity planner needs to pick parameters
// for a business requirement like "delay below 4 hours at minimum cost".
// With --csv the full grid is written for external plotting.
//
//   ./examples/tradeoff_explorer [--horizon 700] [--csv grid.csv]
#include <fstream>
#include <iostream>
#include <memory>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "stats/summary_table.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;

  CliParser cli("tradeoff_explorer", "sweep the (V, beta) grid of operating points");
  cli.add_option("horizon", "700", "slots (hours) per grid point");
  cli.add_option("V", "0.5,2.5,7.5,20", "V values");
  cli.add_option("beta", "0,100,300", "beta values");
  cli.add_option("seed", "42", "scenario seed");
  cli.add_option("max-delay", "4", "highlight the cheapest point within this delay");
  cli.add_option("csv", "", "write the grid to this CSV file");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }
  const auto horizon = cli.get_int("horizon");
  const auto v_values = cli.get_double_list("V");
  const auto betas = cli.get_double_list("beta");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double max_delay = cli.get_double("max-delay");
  const auto csv_path = cli.get_string("csv");

  PaperScenario scenario = make_paper_scenario(seed);

  struct Point {
    double V, beta, energy, fairness, delay;
  };
  std::vector<Point> grid;
  std::cout << "sweeping " << v_values.size() * betas.size() << " grid points ("
            << horizon << " h each)...\n\n";
  for (double V : v_values) {
    for (double beta : betas) {
      auto engine = run_scenario(scenario,
                                 std::make_shared<GreFarScheduler>(
                                     scenario.config, paper_grefar_params(V, beta)),
                                 horizon);
      const auto& m = engine->metrics();
      grid.push_back({V, beta, m.final_average_energy_cost(),
                      m.final_average_fairness(), m.mean_delay()});
    }
  }

  SummaryTable table({"V", "beta", "avg energy cost", "avg fairness", "avg delay"});
  for (const auto& p : grid) {
    table.add_row(format_fixed(p.V, 1),
                  {p.beta, p.energy, p.fairness, p.delay}, 3);
  }
  std::cout << table.render() << "\n";

  // Pick the cheapest operating point meeting the delay requirement.
  const Point* best = nullptr;
  for (const auto& p : grid) {
    if (p.delay <= max_delay && (best == nullptr || p.energy < best->energy)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    std::cout << "cheapest point with avg delay <= " << format_fixed(max_delay, 1)
              << " h: V=" << format_fixed(best->V, 1)
              << ", beta=" << format_fixed(best->beta, 0)
              << " (energy " << format_fixed(best->energy, 2) << ", delay "
              << format_fixed(best->delay, 2) << ")\n";
  } else {
    std::cout << "no grid point meets avg delay <= " << format_fixed(max_delay, 1)
              << " h — extend the grid toward smaller V.\n";
  }

  if (!csv_path.empty()) {
    std::string csv = "V,beta,avg_energy_cost,avg_fairness,avg_delay\n";
    for (const auto& p : grid) {
      csv += format_fixed(p.V, 3) + "," + format_fixed(p.beta, 1) + "," +
             format_fixed(p.energy, 5) + "," + format_fixed(p.fairness, 6) + "," +
             format_fixed(p.delay, 5) + "\n";
    }
    if (auto st = write_file(csv_path, csv); !st.ok()) {
      std::cerr << "error: " << st.error().message << "\n";
      return 1;
    }
    std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}
