// Quickstart: build the paper's 3-DC scenario, run GreFar and Always for a
// few weeks of simulated time, and compare energy cost, fairness and delay.
//
//   ./examples/quickstart [--horizon 672] [--V 7.5] [--beta 100] [--seed 42]
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "scenario/config_io.h"
#include "scenario/paper_scenario.h"
#include "stats/summary_table.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace grefar;

  CliParser cli("quickstart", "GreFar vs Always on the paper's 3-DC scenario");
  cli.add_option("horizon", "672", "slots (hours) to simulate");
  cli.add_option("V", "7.5", "cost-delay parameter");
  cli.add_option("beta", "100", "energy-fairness parameter");
  cli.add_option("seed", "42", "scenario seed");
  cli.add_option("config", "",
                 "JSON experiment config overriding cluster + GreFar params "
                 "(see configs/paper_experiment.json)");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }
  const auto horizon = cli.get_int("horizon");
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  PaperScenario scenario = make_paper_scenario(seed);
  GreFarParams params = paper_grefar_params(V, beta);
  if (auto path = cli.get_string("config"); !path.empty()) {
    auto loaded = load_experiment_config(path);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.error().message << "\n";
      return 1;
    }
    scenario.config = loaded.value().cluster;
    params = loaded.value().grefar;
    std::cout << "loaded cluster + params from " << path << "\n";
  }

  auto grefar = std::make_shared<GreFarScheduler>(scenario.config, params);
  auto always = std::make_shared<AlwaysScheduler>(scenario.config);

  std::cout << "simulating " << horizon << " hours (seed " << seed << ")...\n\n";
  auto run_grefar = run_scenario(scenario, grefar, horizon);
  auto run_always = run_scenario(scenario, always, horizon);

  SummaryTable table({"scheduler", "avg energy cost", "avg fairness", "avg delay",
                      "delay DC1", "work DC1", "work DC2", "work DC3"});
  for (const auto* engine : {run_grefar.get(), run_always.get()}) {
    const auto& m = engine->metrics();
    table.add_row(engine->scheduler().name(),
                  {m.final_average_energy_cost(), m.final_average_fairness(),
                   m.mean_delay(), m.final_average_dc_delay(0), m.mean_dc_work(0),
                   m.mean_dc_work(1), m.mean_dc_work(2)});
  }
  std::cout << table.render() << "\n";
  std::cout << "GreFar defers work to cheap-electricity hours and spreads it to\n"
               "energy-efficient data centers; Always processes immediately.\n";
  return 0;
}
