// Geographic + temporal price arbitrage with a custom cluster.
//
// Builds a two-region deployment from scratch (no paper scenario): a "west"
// DC with cheap-but-volatile spot-market prices and an "east" DC with
// stable, pricier power. Shows how to assemble ClusterConfig, price models
// and workloads directly from the public API, and how GreFar's V knob moves
// the deployment along the energy/delay frontier.
//
//   ./examples/geo_arbitrage [--horizon 1000] [--seed 7]
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "stats/summary_table.h"
#include "util/cli.h"
#include "workload/cosmos_like.h"

int main(int argc, char** argv) {
  using namespace grefar;

  CliParser cli("geo_arbitrage", "two-region price arbitrage from the public API");
  cli.add_option("horizon", "1000", "slots (hours) to simulate");
  cli.add_option("seed", "7", "seed for prices/workload");
  if (auto st = cli.parse(argc, argv); !st.ok()) {
    return st.error().message == "help" ? 0 : (std::cerr << st.error().message << "\n", 1);
  }
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // -- Cluster: one server generation per region ------------------------------
  ClusterConfig config;
  config.server_types = {
      {"west-blade", 1.0, 0.9},  // energy per unit work: 0.9
      {"east-blade", 1.0, 1.0},  // energy per unit work: 1.0
  };
  config.data_centers = {
      {"west", {60, 0}},
      {"east", {60, 0}},  // east installs west-blade? no: fix below
  };
  config.data_centers[1].installed = {0, 60};
  config.accounts = {{"batch", 1.0}};
  config.job_types = {
      {"etl", 2.0, {0, 1}, 0},        // can run anywhere
      {"west-pinned", 3.0, {0}, 0},   // data gravity: west only
  };
  config.validate();

  // -- Prices: volatile spot market in the west, flat tariff in the east ------
  std::vector<DiurnalOuParams> west_east(2);
  west_east[0] = {.mean = 0.30, .diurnal_amplitude = 0.25, .peak_hour = 17.0,
                  .reversion = 0.25, .volatility = 0.05, .floor = 0.02};
  west_east[1] = {.mean = 0.45, .diurnal_amplitude = 0.02, .peak_hour = 12.0,
                  .reversion = 0.5, .volatility = 0.002, .floor = 0.05};
  auto base = std::make_shared<DiurnalOuPriceModel>(west_east, seed);
  // Spot markets spike: +150% events decaying over a few hours.
  auto prices = std::make_shared<SpikyPriceModel>(base, 0.01, 2.5, 0.6, seed ^ 1);

  // -- Workload: diurnal ETL plus a pinned stream ----------------------------
  std::vector<CosmosTypeParams> arrival_params(2);
  arrival_params[0].base_rate = 14.0;
  arrival_params[0].a_max = 80;
  arrival_params[1].base_rate = 4.0;
  arrival_params[1].diurnal_amplitude = 0.2;
  arrival_params[1].a_max = 30;
  auto arrivals = std::make_shared<CosmosLikeArrivals>(arrival_params, seed ^ 2);
  auto availability = std::make_shared<FullAvailability>(config.data_centers);

  // -- Sweep V and compare with Always ----------------------------------------
  std::cout << "two-region arbitrage, " << horizon << " h, seed " << seed << "\n\n";
  SummaryTable table({"scheduler", "avg energy cost", "avg delay", "west work/slot",
                      "east work/slot"});
  auto run = [&](std::shared_ptr<Scheduler> scheduler) {
    SimulationEngine engine(config, prices, availability, arrivals,
                            std::move(scheduler));
    engine.run(horizon);
    const auto& m = engine.metrics();
    table.add_row(engine.scheduler().name(),
                  {m.final_average_energy_cost(), m.mean_delay(), m.mean_dc_work(0),
                   m.mean_dc_work(1)});
  };
  for (double V : {0.5, 5.0, 25.0}) {
    GreFarParams params;
    params.V = V;
    run(std::make_shared<GreFarScheduler>(config, params));
  }
  run(std::make_shared<AlwaysScheduler>(config));
  run(std::make_shared<CheapestFirstScheduler>(config));
  std::cout << table.render()
            << "\nlarger V chases the west's price troughs harder (lower cost,\n"
               "higher delay); CheapestFirst picks good locations but cannot wait\n"
               "for good hours.\n";
  return 0;
}
