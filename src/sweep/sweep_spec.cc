#include "sweep/sweep_spec.h"

#include "util/check.h"

namespace grefar {
namespace sweep {

std::size_t SweepAxis::size() const {
  if (!values.empty() && !labels.empty()) {
    GREFAR_CHECK_MSG(values.size() == labels.size(),
                     "sweep axis '" << name << "' has " << values.size()
                                    << " values but " << labels.size()
                                    << " labels");
  }
  return values.empty() ? labels.size() : values.size();
}

double SweepPoint::value(std::size_t axis) const {
  GREFAR_CHECK(spec != nullptr && axis < spec->axes.size());
  const SweepAxis& a = spec->axes[axis];
  GREFAR_CHECK_MSG(index(axis) < a.values.size(),
                   "sweep axis '" << a.name << "' has no numeric values");
  return a.values[index(axis)];
}

const std::string& SweepPoint::label(std::size_t axis) const {
  GREFAR_CHECK(spec != nullptr && axis < spec->axes.size());
  const SweepAxis& a = spec->axes[axis];
  GREFAR_CHECK_MSG(index(axis) < a.labels.size(),
                   "sweep axis '" << a.name << "' has no labels");
  return a.labels[index(axis)];
}

std::size_t SweepSpec::num_legs() const {
  std::size_t n = 1;
  for (const SweepAxis& a : axes) n *= a.size();
  return axes.empty() ? 0 : n;
}

SweepPoint SweepSpec::point(std::size_t leg) const {
  GREFAR_CHECK_MSG(leg < num_legs(), "sweep leg " << leg << " out of range");
  SweepPoint p;
  p.spec = this;
  p.leg = leg;
  p.coords.resize(axes.size());
  // Row-major decode, last axis fastest.
  for (std::size_t a = axes.size(); a-- > 0;) {
    const std::size_t n = axes[a].size();
    p.coords[a] = leg % n;
    leg /= n;
  }
  return p;
}

std::size_t SweepSpec::innermost_run_length() const {
  return axes.empty() ? 1 : axes.back().size();
}

void SweepSpec::validate() const {
  GREFAR_CHECK_MSG(!axes.empty(), "SweepSpec needs at least one axis");
  for (const SweepAxis& a : axes) {
    GREFAR_CHECK_MSG(a.size() > 0, "sweep axis '" << a.name << "' is empty");
  }
  GREFAR_CHECK_MSG(horizon > 0, "SweepSpec needs a positive horizon");
  GREFAR_CHECK_MSG(scenario != nullptr, "SweepSpec needs a scenario callback");
  GREFAR_CHECK_MSG(plan != nullptr, "SweepSpec needs a plan callback");
}

}  // namespace sweep
}  // namespace grefar
