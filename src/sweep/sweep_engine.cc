#include "sweep/sweep_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "check/invariant_auditor.h"
#include "obs/counters.h"
#include "parallel/sim_runner.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace grefar {
namespace sweep {

namespace {

AuditMode resolve_audit(AuditMode audit) {
  if (audit != AuditMode::kAuto) return audit;
#ifdef NDEBUG
  return AuditMode::kOff;
#else
  return AuditMode::kThrow;
#endif
}

PerSlotSolver default_solver(const GreFarParams& params) {
  // The same rule GreFarScheduler's solver-less constructor applies.
  return params.beta == 0.0 ? PerSlotSolver::kGreedy
                            : PerSlotSolver::kProjectedGradient;
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(options) {}

SweepRunStats SweepEngine::run(
    const SweepSpec& spec,
    const std::function<void(std::size_t leg, SimulationEngine& engine)>& collect,
    const std::function<void(std::size_t leg, SimulationEngine& engine)>& pre_run) {
  spec.validate();
  GREFAR_CHECK(collect != nullptr);
  GREFAR_CHECK(options_.audit_stride >= 1);
  const auto run_start = std::chrono::steady_clock::now();
  const std::size_t num_legs = spec.num_legs();

  // Phase 1 (serial, leg order): resolve every plan and materialize every
  // unique scenario in first-reference order. Scenario construction is the
  // only step that consumes model RNG streams; doing it here means the
  // parallel phase below touches immutable artifacts only.
  std::vector<LegPlan> plans;
  plans.reserve(num_legs);
  std::vector<std::shared_ptr<const ScenarioArtifacts>> artifacts(num_legs);
  std::unordered_set<std::string> unique_keys;
  for (std::size_t leg = 0; leg < num_legs; ++leg) {
    const SweepPoint point = spec.point(leg);
    LegPlan plan = spec.plan(point);
    GREFAR_CHECK_MSG(plan.grefar.has_value() != (plan.make_scheduler != nullptr),
                     "leg " << leg
                            << " must set exactly one of grefar / make_scheduler");
    GREFAR_CHECK_MSG(!plan.scenario_key.empty(),
                     "leg " << leg << " has an empty scenario key");
    unique_keys.insert(plan.scenario_key);
    artifacts[leg] = cache_.get_or_build(plan.scenario_key, [&] {
      return materialize_scenario(spec.scenario(point), spec.horizon);
    });
    // Table models wrap modulo their length — running past the materialized
    // horizon would silently replay the prefix instead of fresh draws.
    GREFAR_CHECK_MSG(spec.horizon <= artifacts[leg]->horizon,
                     "scenario '" << plan.scenario_key << "' materialized over "
                                  << artifacts[leg]->horizon
                                  << " slots but the sweep runs " << spec.horizon);
    plans.push_back(std::move(plan));
  }

  // Phase 2: chunked parallel execution. Warm mode aligns chunk boundaries
  // to the innermost-axis run length so each warm leg's predecessor chain
  // stays within its own chunk (fixed warm ancestry at any --jobs).
  const std::size_t jobs =
      options_.jobs == 0 ? ThreadPool::default_concurrency() : options_.jobs;
  std::size_t chunk = std::max<std::size_t>(options_.chunk_size, 1);
  if (options_.warm_start) {
    const std::size_t L = spec.innermost_run_length();
    chunk = (chunk + L - 1) / L * L;
  }
  const std::size_t num_ranges = (num_legs + chunk - 1) / chunk;
  const std::size_t workers = std::max<std::size_t>(
      1, std::min(jobs, num_ranges));  // mirrors SimRunner's task count
  if (arenas_.size() != workers) {
    arenas_.clear();
    arenas_.resize(workers);
  }
  const AuditMode audit = resolve_audit(options_.audit);
  const std::size_t innermost = spec.innermost_run_length();

  std::vector<double> leg_ms(num_legs, 0.0);
  SimRunner runner(jobs);
  runner.for_each_index_tasked(
      num_legs,
      [&](std::size_t task, std::size_t leg) {
        WorkerArena& arena = arenas_[task];
        const LegPlan& plan = plans[leg];
        const ScenarioArtifacts& art = *artifacts[leg];

        std::shared_ptr<Scheduler> scheduler;
        if (plan.grefar.has_value()) {
          const PerSlotSolver solver =
              plan.grefar->solver.value_or(default_solver(plan.grefar->params));
          const bool reuse_sched = options_.reuse_engines &&
                                   arena.grefar != nullptr &&
                                   arena.grefar_config == art.config.get();
          if (reuse_sched) {
            // Warm only when the predecessor leg ran on this worker, in the
            // same innermost run (leg % L != 0 ⇒ leg-1 shares the chunk) and
            // on the same scenario.
            const bool keep_warm =
                options_.warm_start && arena.has_last &&
                arena.last_leg + 1 == leg && leg % innermost != 0 &&
                arena.last_scenario_key == plan.scenario_key;
            arena.grefar->begin_run(plan.grefar->params, solver, keep_warm);
            obs::count("sweep.scheduler_reuses");
            if (keep_warm) obs::count("sweep.warm_start_legs");
          } else {
            arena.grefar = std::make_shared<GreFarScheduler>(
                art.config, plan.grefar->params, solver);
            arena.grefar_config = art.config.get();
            obs::count("sweep.scheduler_builds");
          }
          scheduler = arena.grefar;
        } else {
          scheduler = plan.make_scheduler(art);
          GREFAR_CHECK_MSG(scheduler != nullptr,
                           "leg " << leg << " make_scheduler returned null");
        }

        if (options_.reuse_engines && arena.engine != nullptr) {
          arena.engine->reset(art.config, art.prices, art.availability,
                              art.arrivals, std::move(scheduler),
                              plan.engine_options);
          obs::count("sweep.engine_reuses");
        } else {
          arena.engine = std::make_unique<SimulationEngine>(
              art.config, art.prices, art.availability, art.arrivals,
              std::move(scheduler), plan.engine_options);
          obs::count("sweep.engine_builds");
        }
        SimulationEngine& engine = *arena.engine;

        std::shared_ptr<AdmissionPolicy> admission =
            plan.make_admission != nullptr ? plan.make_admission(art)
                                           : art.admission;
        if (admission != nullptr) {
          engine.set_admission_policy(std::move(admission));
        }
        if (audit != AuditMode::kOff && leg % options_.audit_stride == 0) {
          InvariantAuditorOptions auditor_options;
          auditor_options.throw_on_violation = audit == AuditMode::kThrow;
          engine.set_inspector(
              std::make_shared<InvariantAuditor>(art.config, auditor_options));
        }
        if (pre_run != nullptr) pre_run(leg, engine);

        const auto t0 = std::chrono::steady_clock::now();
        engine.run(spec.horizon);
        leg_ms[leg] = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        collect(leg, engine);
        arena.has_last = true;
        arena.last_leg = leg;
        arena.last_scenario_key = plan.scenario_key;
      },
      chunk);

  stats_ = SweepRunStats{};
  stats_.legs = num_legs;
  stats_.unique_scenarios = unique_keys.size();
  stats_.workers = workers;
  stats_.chunk = chunk;
  stats_.leg_ms = std::move(leg_ms);
  stats_.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - run_start)
                        .count();
  return stats_;
}

std::vector<SweepLegResult> SweepEngine::run_collect(
    const SweepSpec& spec,
    const std::function<void(std::size_t leg, SimulationEngine& engine)>& pre_run) {
  std::vector<SweepLegResult> results(spec.num_legs());
  run(
      spec,
      [&results](std::size_t leg, SimulationEngine& engine) {
        results[leg].metrics = engine.metrics();
        results[leg].scheduler_name = engine.scheduler().name();
      },
      pre_run);
  for (std::size_t leg = 0; leg < results.size(); ++leg) {
    results[leg].leg_ms = stats_.leg_ms[leg];
  }
  return results;
}

}  // namespace sweep
}  // namespace grefar
