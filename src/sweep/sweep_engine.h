// SweepEngine: executes a SweepSpec's cross product with shared scenario
// artifacts, per-worker engine/scheduler arenas, chunked dynamic scheduling
// and (opt-in) cross-leg warm starts. DESIGN.md §16 documents the
// determinism argument; the short version:
//
//   * Plans are resolved serially in leg order; unique scenario keys are
//     materialized up front in first-reference order, so materialization
//     (the only RNG-consuming step) never races and never depends on --jobs.
//   * Legs are handed to workers in fixed consecutive ranges of `chunk`
//     (ThreadPool::submit_batch). Each leg writes only its own result slot,
//     reads only immutable shared artifacts, and runs on exactly one
//     thread; with reuse, the per-worker arena state entering a leg is made
//     equivalent to a fresh engine/scheduler by reset()/begin_run(), so the
//     leg's outputs are a pure function of the leg alone — bit-identical at
//     any jobs and chunk size.
//   * warm_start breaks that per-leg purity on purpose (a warm leg reuses
//     its predecessor's solver state): determinism is then recovered by
//     rounding the chunk up to a multiple of the innermost-axis run length,
//     which pins every leg's warm ancestry regardless of jobs. Warm results
//     are NOT bitwise-comparable to cold results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "sim/engine.h"
#include "sweep/artifact_cache.h"
#include "sweep/sweep_spec.h"

namespace grefar {
namespace sweep {

struct SweepOptions {
  /// Worker count; 0 = ThreadPool::default_concurrency().
  std::size_t jobs = 1;
  /// Legs per ticket range (>= 1). With warm_start it is rounded up to a
  /// multiple of the spec's innermost run length.
  std::size_t chunk_size = 1;
  /// Reuse each worker's engine + GreFar scheduler across its legs (the
  /// arena path). Off = construct fresh per leg (the reference behaviour
  /// the determinism suite compares against).
  bool reuse_engines = true;
  /// Cross-leg warm starts along the innermost axis (GreFar legs only).
  /// Perf mode: results converge to the same optima but are not bitwise
  /// equal to cold runs. Implies nothing unless reuse_engines is set.
  bool warm_start = false;
  /// Per-leg InvariantAuditor attachment (scenario/paper_scenario.h
  /// semantics: kAuto = throw in Debug, off in Release).
  AuditMode audit = AuditMode::kAuto;
  /// Audit every `audit_stride`-th leg only (1 = every audited leg); lets a
  /// big sweep keep a sampled machine-checked leg without paying the audit
  /// everywhere.
  std::size_t audit_stride = 1;
};

struct SweepLegResult {
  SimMetrics metrics{1, 1};
  std::string scheduler_name;
  double leg_ms = 0.0;
};

struct SweepRunStats {
  std::size_t legs = 0;
  std::size_t unique_scenarios = 0;
  std::size_t workers = 0;
  std::size_t chunk = 0;
  double total_ms = 0.0;
  std::vector<double> leg_ms;  // wall time of each leg's engine.run()
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  /// Runs every leg of `spec`. `collect(leg, engine)` fires on the worker
  /// right after the leg's run (before the engine is reused), in ascending
  /// leg order within each chunk; it must only touch leg-owned state.
  /// `pre_run(leg, engine)` (optional) fires after the engine is bound to
  /// the leg but before run() — e.g. to attach a tracer. Rethrows the first
  /// failing leg's exception in leg order.
  SweepRunStats run(const SweepSpec& spec,
                    const std::function<void(std::size_t leg,
                                             SimulationEngine& engine)>& collect,
                    const std::function<void(std::size_t leg,
                                             SimulationEngine& engine)>& pre_run =
                        nullptr);

  /// run() with the default collector: copies out per-leg metrics,
  /// scheduler name and wall time.
  std::vector<SweepLegResult> run_collect(
      const SweepSpec& spec,
      const std::function<void(std::size_t leg, SimulationEngine& engine)>&
          pre_run = nullptr);

  const SweepOptions& options() const { return options_; }
  ArtifactCache& artifacts() { return cache_; }
  const SweepRunStats& last_stats() const { return stats_; }

 private:
  /// One worker's persistent state. Arenas live across run() calls, so a
  /// steady-state re-run of the same spec constructs nothing.
  struct WorkerArena {
    std::unique_ptr<SimulationEngine> engine;
    std::shared_ptr<GreFarScheduler> grefar;
    const ClusterConfig* grefar_config = nullptr;  // config grefar was built on
    bool has_last = false;
    std::size_t last_leg = 0;
    std::string last_scenario_key;
  };

  SweepOptions options_;
  ArtifactCache cache_;
  std::vector<WorkerArena> arenas_;
  SweepRunStats stats_;
};

}  // namespace sweep
}  // namespace grefar
