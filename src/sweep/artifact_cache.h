// Shared immutable scenario artifacts for sweep execution (DESIGN.md §16).
//
// A sweep leg used to *regenerate* its scenario inside its closure: fresh
// RNG-backed price/arrival/availability models, a fresh ClusterConfig copy.
// That was the only thread-safe option — the stochastic models carry lazily
// extended mutable caches and must never be shared between concurrent runs.
// Materialization removes the mutability instead of duplicating the work:
// each unique scenario key is realized ONCE into table-backed models
// (TablePriceModel / TableAvailability / Table- or ValuedTableArrivals) over
// [0, horizon). Tables are immutable after construction, so every leg that
// references the key shares one read-only ScenarioArtifacts through
// shared_ptrs — including across worker threads.
//
// Bitwise contract: a table model replays, by construction, exactly the
// values the lazy model produces for slots in [0, horizon) — the cache is
// invisible to simulation results. One documented exception:
// ArrivalProcess::max_arrivals() of a table is derived from the realized
// table rather than the generator's a_max envelope, so *forecast consumers*
// (MPC lookahead) may differ at FP level from the lazy path. No
// bitwise-equality gate in this repo involves MPC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "scenario/paper_scenario.h"

namespace grefar {
namespace sweep {

/// One materialized scenario: immutable, shareable across threads and legs.
struct ScenarioArtifacts {
  std::shared_ptr<const ClusterConfig> config;
  std::shared_ptr<const PriceModel> prices;
  std::shared_ptr<const AvailabilityModel> availability;
  std::shared_ptr<const ArrivalProcess> arrivals;
  /// Admission policy factory state lives in the scenario, not here:
  /// policies are cheap and engine-local (attached per leg).
  std::shared_ptr<AdmissionPolicy> admission;
  /// Slots the tables cover. Table models wrap modulo their length, so a
  /// run longer than this would silently replay the prefix — the sweep
  /// engine contract-checks run horizon <= this.
  std::int64_t horizon = 0;
  std::uint64_t seed = 0;
};

/// Realizes `scenario`'s models into table-backed immutable artifacts over
/// [0, horizon). Values replayed for slots < horizon are bitwise equal to
/// the lazy models'.
ScenarioArtifacts materialize_scenario(const PaperScenario& scenario,
                                       std::int64_t horizon);

/// Hash-cons store: one ScenarioArtifacts per unique key, built on first
/// reference, shared read-only afterwards. Thread-safe; the builder for a
/// given key runs at most once (under the lock — materialization is the
/// expensive step sharing exists to amortize, so serializing builds of the
/// *same* key is the point; distinct keys are typically materialized before
/// the parallel phase by SweepEngine).
class ArtifactCache {
 public:
  using Builder = std::function<ScenarioArtifacts()>;

  /// Returns the artifacts for `key`, invoking `builder` exactly once per
  /// unique key. Counts obs "sweep.artifact_hits"/"sweep.artifact_misses".
  std::shared_ptr<const ScenarioArtifacts> get_or_build(const std::string& key,
                                                        const Builder& builder);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ScenarioArtifacts>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sweep
}  // namespace grefar
