// SweepSpec: a declarative, config-driven cross product of sweep axes — the
// batch scenario-sweep API the ROADMAP's scenario-gym item calls for.
//
// A spec is axes (outermost first, LAST axis innermost/fastest-varying) plus
// two callbacks: `scenario` maps a grid point to the PaperScenario it runs
// in (legs mapping to the same scenario_key share one materialized artifact
// set — see artifact_cache.h), and `plan` maps a grid point to the leg's
// scheduler/admission/engine configuration. Leg indices enumerate the cross
// product row-major: leg = ((i0 * n1 + i1) * n2 + i2) ... with the last
// axis fastest, so consecutive legs differ (mostly) in the innermost axis —
// exactly the adjacency the cross-leg warm starts exploit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "sim/scheduler.h"
#include "sweep/artifact_cache.h"
#include "workload/admission.h"

namespace grefar {
namespace sweep {

/// One sweep dimension. `values` and/or `labels` name the points; they must
/// agree on the count when both are given.
struct SweepAxis {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;

  std::size_t size() const;
};

/// A resolved point of the cross product: per-axis indices plus the flat
/// leg number.
class SweepSpec;
struct SweepPoint {
  const SweepSpec* spec = nullptr;
  std::vector<std::size_t> coords;  // one index per axis
  std::size_t leg = 0;

  std::size_t index(std::size_t axis) const { return coords.at(axis); }
  double value(std::size_t axis) const;
  const std::string& label(std::size_t axis) const;
};

/// The GreFar fast path: legs declaring params (+ optional solver override)
/// ride the scheduler arena — one persistent GreFarScheduler per worker is
/// re-targeted via begin_run() instead of reconstructed, and adjacent legs
/// may warm-start. Legs needing any other Scheduler provide make_scheduler.
struct GreFarLegSpec {
  GreFarParams params;
  std::optional<PerSlotSolver> solver;  // default: GreFar's beta rule
};

/// Everything the sweep engine needs to run one leg.
struct LegPlan {
  /// Artifact-cache key; legs with equal keys must describe the *same*
  /// scenario (they share one materialized instance).
  std::string scenario_key;
  /// Exactly one of grefar / make_scheduler must be set.
  std::optional<GreFarLegSpec> grefar;
  std::function<std::shared_ptr<Scheduler>(const ScenarioArtifacts&)> make_scheduler;
  /// Optional per-leg admission policy; overrides the scenario's (which is
  /// attached when this is unset and the scenario carries one).
  std::function<std::shared_ptr<AdmissionPolicy>(const ScenarioArtifacts&)>
      make_admission;
  EngineOptions engine_options;
};

class SweepSpec {
 public:
  std::vector<SweepAxis> axes;  // outermost first; LAST axis is innermost
  std::int64_t horizon = 0;
  std::function<PaperScenario(const SweepPoint&)> scenario;
  std::function<LegPlan(const SweepPoint&)> plan;

  std::size_t num_axes() const { return axes.size(); }
  std::size_t num_legs() const;
  SweepPoint point(std::size_t leg) const;

  /// Size of the innermost (fastest-varying) axis: consecutive legs within
  /// a run of this length share every outer coordinate. Warm-start chunking
  /// aligns chunk boundaries to multiples of this, so a warm leg's
  /// predecessor is always in the same chunk. 1 when there are no axes.
  std::size_t innermost_run_length() const;

  void validate() const;
};

}  // namespace sweep
}  // namespace grefar
