#include "sweep/artifact_cache.h"

#include <utility>
#include <vector>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {
namespace sweep {

ScenarioArtifacts materialize_scenario(const PaperScenario& scenario,
                                       std::int64_t horizon) {
  GREFAR_CHECK(horizon > 0);
  GREFAR_CHECK(scenario.prices != nullptr && scenario.availability != nullptr &&
               scenario.arrivals != nullptr);
  ScenarioArtifacts a;
  a.seed = scenario.seed;
  a.horizon = horizon;
  a.config = std::make_shared<const ClusterConfig>(scenario.config);
  a.admission = scenario.admission;

  // Prices: one N x horizon table. PriceModel::price is required to be a
  // pure function of (dc, t) per model seed, so reading it here replays the
  // exact lazy sequence.
  const std::size_t N = scenario.prices->num_data_centers();
  std::vector<std::vector<double>> series(N, std::vector<double>(
                                                 static_cast<std::size_t>(horizon)));
  for (std::size_t i = 0; i < N; ++i) {
    for (std::int64_t t = 0; t < horizon; ++t) {
      series[i][static_cast<std::size_t>(t)] = scenario.prices->price(i, t);
    }
  }
  a.prices = std::make_shared<TablePriceModel>(std::move(series));

  // Availability: one snapshot per slot.
  std::vector<Matrix<std::int64_t>> snapshots;
  snapshots.reserve(static_cast<std::size_t>(horizon));
  for (std::int64_t t = 0; t < horizon; ++t) {
    snapshots.push_back(scenario.availability->availability(t));
  }
  a.availability = std::make_shared<TableAvailability>(std::move(snapshots));

  // Arrivals: valued processes keep their batch annotations (value / decay /
  // deadline) through a ValuedTableArrivals; plain processes become count
  // tables. Either way the engine sees the same batches in the same order.
  const std::size_t J = scenario.arrivals->num_job_types();
  if (scenario.arrivals->has_valued_arrivals()) {
    std::vector<std::vector<ArrivalBatch>> slots(static_cast<std::size_t>(horizon));
    std::vector<ArrivalBatch> scratch;
    for (std::int64_t t = 0; t < horizon; ++t) {
      scenario.arrivals->valued_arrivals_into(t, scratch);
      slots[static_cast<std::size_t>(t)] = scratch;
    }
    a.arrivals = std::make_shared<ValuedTableArrivals>(std::move(slots), J);
  } else {
    std::vector<std::vector<std::int64_t>> counts(static_cast<std::size_t>(horizon));
    std::vector<std::int64_t> scratch;
    for (std::int64_t t = 0; t < horizon; ++t) {
      scenario.arrivals->arrivals_into(t, scratch);
      counts[static_cast<std::size_t>(t)] = scratch;
    }
    a.arrivals = std::make_shared<TableArrivals>(std::move(counts));
  }
  return a;
}

std::shared_ptr<const ScenarioArtifacts> ArtifactCache::get_or_build(
    const std::string& key, const Builder& builder) {
  GREFAR_CHECK(builder != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    obs::count("sweep.artifact_hits");
    return it->second;
  }
  ++misses_;
  obs::count("sweep.artifact_misses");
  auto artifacts = std::make_shared<const ScenarioArtifacts>(builder());
  map_.emplace(key, artifacts);
  return artifacts;
}

std::size_t ArtifactCache::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return map_.size();
}

std::uint64_t ArtifactCache::hits() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ArtifactCache::misses() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return misses_;
}

void ArtifactCache::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  map_.clear();
}

}  // namespace sweep
}  // namespace grefar
