// Job model (paper §III-B).
//
// A job is {d, D, rho}: service demand d > 0 (work units; the paper scales
// "1" to 1000 hours on a speed-1 server), an eligible data-center set D
// (where the job's input data lives), and an owning account rho. Jobs with
// the same tuple form a *job type*; arrivals are counted per type per slot.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace grefar {

using AccountId = std::size_t;
using JobTypeId = std::size_t;
using DataCenterId = std::size_t;

/// Static description of one job type y_j = {d_j, D_j, rho_j}.
struct JobType {
  std::string name;
  double work = 1.0;                        // d_j, in work units
  std::vector<DataCenterId> eligible_dcs;   // D_j, sorted ascending
  AccountId account = 0;                    // rho_j
  /// Parallelism constraint (paper §III-B): the paper assumes jobs are fully
  /// parallelizable but notes the model adapts by bounding how many servers
  /// one job can occupy. max_rate is that bound expressed as work units one
  /// job can absorb per slot; infinity (default) = fully parallelizable.
  double max_rate = std::numeric_limits<double>::infinity();

  bool eligible(DataCenterId dc) const {
    for (DataCenterId d : eligible_dcs) {
      if (d == dc) return true;
    }
    return false;
  }
};

/// A concrete job instance inside a queue. `remaining` shrinks as the fluid
/// FIFO service applies work; the job departs when it reaches 0.
struct Job {
  std::uint64_t id = 0;
  JobTypeId type = 0;
  std::int64_t arrival_slot = 0;   // slot during which the job arrived
  std::int64_t dc_entry_slot = 0;  // slot during which it was routed to a DC
  double remaining = 0.0;          // work units left
};

/// Validates a job-type table: positive work, non-empty eligible sets,
/// account ids within [0, num_accounts).
inline void validate_job_types(const std::vector<JobType>& types,
                               std::size_t num_data_centers,
                               std::size_t num_accounts) {
  GREFAR_CHECK_MSG(!types.empty(), "need at least one job type");
  for (const auto& jt : types) {
    GREFAR_CHECK_MSG(jt.work > 0.0, "job type '" << jt.name << "' has work <= 0");
    GREFAR_CHECK_MSG(!jt.eligible_dcs.empty(),
                     "job type '" << jt.name << "' has empty eligible set");
    for (DataCenterId dc : jt.eligible_dcs) {
      GREFAR_CHECK_MSG(dc < num_data_centers,
                       "job type '" << jt.name << "' references bad DC " << dc);
    }
    GREFAR_CHECK_MSG(jt.account < num_accounts,
                     "job type '" << jt.name << "' references bad account");
    GREFAR_CHECK_MSG(jt.max_rate > 0.0,
                     "job type '" << jt.name << "' has max_rate <= 0");
  }
}

}  // namespace grefar
