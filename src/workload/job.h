// Job model (paper §III-B, extended per arXiv 1404.4865 / 1509.03699).
//
// A job is {d, D, rho}: service demand d > 0 (work units; the paper scales
// "1" to 1000 hours on a speed-1 server), an eligible data-center set D
// (where the job's input data lives), and an owning account rho. Jobs with
// the same tuple form a *job type*; arrivals are counted per type per slot.
//
// The revenue-management descendants add per-job economics on top: a base
// value v_j realized when the job completes, a decay curve discounting that
// value by the job's total delay, and a relative completion deadline after
// which the job is abandoned (removed from its queue, value forfeit). All
// three default to the paper's behavior (value 1, no decay, no deadline).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace grefar {

using AccountId = std::size_t;
using JobTypeId = std::size_t;
using DataCenterId = std::size_t;

/// How a job's value discounts with its total delay (arrival -> completion).
enum class DecayKind : std::uint8_t {
  kNone,         // full value whenever the job completes
  kLinear,       // value * max(0, 1 - rate * delay)
  kExponential,  // value * exp(-rate * delay)
};

/// No relative deadline (JobType::deadline / ArrivalBatch::deadline).
inline constexpr std::int64_t kNoDeadline = -1;
/// Sentinel absolute deadline slot for "never expires" (Job::deadline_slot).
inline constexpr std::int64_t kNoDeadlineSlot =
    std::numeric_limits<std::int64_t>::max();

/// Value realized by a job of base value 1 completing `delay` slots after
/// arrival. Pure and branch-cheap: the engine calls it per completion.
inline double decay_factor(DecayKind kind, double rate, std::int64_t delay) {
  switch (kind) {
    case DecayKind::kNone: return 1.0;
    case DecayKind::kLinear:
      return std::max(0.0, 1.0 - rate * static_cast<double>(delay));
    case DecayKind::kExponential:
      return std::exp(-rate * static_cast<double>(delay));
  }
  return 1.0;
}

/// Static description of one job type y_j = {d_j, D_j, rho_j}.
struct JobType {
  std::string name;
  double work = 1.0;                        // d_j, in work units
  std::vector<DataCenterId> eligible_dcs;   // D_j, sorted ascending
  AccountId account = 0;                    // rho_j
  /// Parallelism constraint (paper §III-B): the paper assumes jobs are fully
  /// parallelizable but notes the model adapts by bounding how many servers
  /// one job can occupy. max_rate is that bound expressed as work units one
  /// job can absorb per slot; infinity (default) = fully parallelizable.
  double max_rate = std::numeric_limits<double>::infinity();
  /// Base value v_j realized on completion (arXiv 1404.4865). Per-batch
  /// trace annotations override it (trace/trace_schema.h, schema v2).
  double value = 1.0;
  /// Value-decay curve over total delay; decay_rate is the curve's rate
  /// parameter (slope for kLinear, exponent for kExponential).
  DecayKind decay = DecayKind::kNone;
  double decay_rate = 0.0;
  /// Relative completion deadline in slots counted from the arrival slot
  /// (a job arriving at t must complete by t + deadline); kNoDeadline = none.
  std::int64_t deadline = kNoDeadline;

  bool eligible(DataCenterId dc) const {
    for (DataCenterId d : eligible_dcs) {
      if (d == dc) return true;
    }
    return false;
  }
};

/// A concrete job instance inside a queue. `remaining` shrinks as the fluid
/// FIFO service applies work; the job departs when it reaches 0.
struct Job {
  std::uint64_t id = 0;
  JobTypeId type = 0;
  std::int64_t arrival_slot = 0;   // slot during which the job arrived
  std::int64_t dc_entry_slot = 0;  // slot during which it was routed to a DC
  double remaining = 0.0;          // work units left
  double value = 1.0;              // base value realized on completion
  double decay_rate = 0.0;         // rate of the owning type's decay curve
  std::int64_t deadline_slot = kNoDeadlineSlot;  // absolute; kNoDeadlineSlot = none
};

/// Validates a job-type table: positive work, non-empty eligible sets,
/// account ids within [0, num_accounts), sane value/decay/deadline.
inline void validate_job_types(const std::vector<JobType>& types,
                               std::size_t num_data_centers,
                               std::size_t num_accounts) {
  GREFAR_CHECK_MSG(!types.empty(), "need at least one job type");
  for (const auto& jt : types) {
    GREFAR_CHECK_MSG(jt.work > 0.0, "job type '" << jt.name << "' has work <= 0");
    GREFAR_CHECK_MSG(!jt.eligible_dcs.empty(),
                     "job type '" << jt.name << "' has empty eligible set");
    for (DataCenterId dc : jt.eligible_dcs) {
      GREFAR_CHECK_MSG(dc < num_data_centers,
                       "job type '" << jt.name << "' references bad DC " << dc);
    }
    GREFAR_CHECK_MSG(jt.account < num_accounts,
                     "job type '" << jt.name << "' references bad account");
    GREFAR_CHECK_MSG(jt.max_rate > 0.0,
                     "job type '" << jt.name << "' has max_rate <= 0");
    GREFAR_CHECK_MSG(std::isfinite(jt.value) && jt.value >= 0.0,
                     "job type '" << jt.name << "' has bad value");
    GREFAR_CHECK_MSG(std::isfinite(jt.decay_rate) && jt.decay_rate >= 0.0,
                     "job type '" << jt.name << "' has bad decay rate");
    GREFAR_CHECK_MSG(jt.deadline == kNoDeadline || jt.deadline >= 0,
                     "job type '" << jt.name << "' has bad deadline");
  }
}

}  // namespace grefar
