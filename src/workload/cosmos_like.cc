#include "workload/cosmos_like.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace grefar {

CosmosLikeArrivals::CosmosLikeArrivals(std::vector<CosmosTypeParams> params,
                                       std::uint64_t seed)
    : params_(std::move(params)),
      seed_(seed),
      burst_active_(params_.size(), false),
      rng_(seed) {
  GREFAR_CHECK(!params_.empty());
  for (const auto& p : params_) {
    GREFAR_CHECK(p.base_rate >= 0.0);
    GREFAR_CHECK(p.diurnal_amplitude >= 0.0 && p.diurnal_amplitude <= 1.0);
    GREFAR_CHECK(p.burst_on_prob >= 0.0 && p.burst_on_prob <= 1.0);
    GREFAR_CHECK(p.burst_off_prob >= 0.0 && p.burst_off_prob <= 1.0);
    GREFAR_CHECK(p.burst_multiplier >= 0.0);
    GREFAR_CHECK(p.idle_multiplier >= 0.0);
    GREFAR_CHECK(p.weekend_multiplier >= 0.0);
    GREFAR_CHECK(p.a_max >= 0);
  }
}

void CosmosLikeArrivals::extend(std::int64_t t) const {
  while (static_cast<std::int64_t>(count_cache_.size()) <= t) {
    std::int64_t slot = static_cast<std::int64_t>(count_cache_.size());
    double hour = static_cast<double>(slot % 24);
    std::int64_t day = (slot / 24) % 7;
    bool weekend = day >= 5;

    std::vector<std::int64_t> counts(params_.size());
    std::vector<double> rates(params_.size());
    for (std::size_t j = 0; j < params_.size(); ++j) {
      const auto& p = params_[j];
      // Markov burst chain.
      if (burst_active_[j]) {
        if (rng_.bernoulli(p.burst_off_prob)) burst_active_[j] = false;
      } else {
        if (rng_.bernoulli(p.burst_on_prob)) burst_active_[j] = true;
      }
      double diurnal =
          1.0 + p.diurnal_amplitude *
                    std::cos(2.0 * std::numbers::pi * (hour - p.peak_hour) / 24.0);
      double burst = burst_active_[j] ? p.burst_multiplier : p.idle_multiplier;
      double wknd = weekend ? p.weekend_multiplier : 1.0;
      double rate = p.base_rate * diurnal * burst * wknd;
      rates[j] = rate;
      counts[j] = std::min<std::int64_t>(p.a_max, rng_.poisson(rate));
    }
    rate_cache_.push_back(std::move(rates));
    count_cache_.push_back(std::move(counts));
  }
}

std::vector<std::int64_t> CosmosLikeArrivals::arrivals(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  return count_cache_[static_cast<std::size_t>(t)];
}

void CosmosLikeArrivals::arrivals_into(std::int64_t t,
                                       std::vector<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  const auto& row = count_cache_[static_cast<std::size_t>(t)];
  out.assign(row.begin(), row.end());
}

std::int64_t CosmosLikeArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < params_.size());
  return params_[j].a_max;
}

double CosmosLikeArrivals::rate(JobTypeId j, std::int64_t t) const {
  GREFAR_CHECK(j < params_.size());
  GREFAR_CHECK(t >= 0);
  extend(t);
  return rate_cache_[static_cast<std::size_t>(t)][j];
}

}  // namespace grefar
