// AdmissionPolicy: the online admission stage ahead of GreFar routing
// (arXiv 1404.4865 / 1509.03699).
//
// The revenue-management descendants of the paper observe that when jobs
// carry values, decay curves and deadlines, routing every arrival is wrong:
// an overloaded system should reject low-value-density work at the door so
// the capacity it does have realizes the most value. The engine consults the
// attached policy once per non-empty arrival batch, in batch order, before
// the batch's jobs enter the central queues; rejected jobs never touch any
// queue (the InvariantAuditor checks exactly that).
//
// Determinism contract (DESIGN.md §11): admit() must be a pure function of
// (policy parameters, slot, batch) — stateful policies key any randomness on
// (seed, slot) like ZipfArrivals, so a sweep replays bit-identically at any
// --jobs / shard count and out-of-order policy construction is safe. One
// policy instance serves one engine (mirrors Scheduler).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "workload/job.h"

namespace grefar {

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// How many of the batch's `count` identical jobs to admit, in [0, count].
  /// `value` is the resolved per-job base value and `deadline` the resolved
  /// relative deadline (kNoDeadline = none) — batch annotations already
  /// merged over the JobType defaults. Called once per non-empty batch of
  /// slot `slot`, in batch order, slots in non-decreasing order.
  virtual std::int64_t admit(std::int64_t slot, const JobType& type,
                             std::int64_t count, double value,
                             std::int64_t deadline) = 0;

  /// The value-density threshold in effect for `slot` (for tracing); NaN
  /// for policies without one. Pure in (parameters, slot).
  virtual double threshold(std::int64_t slot) const {
    (void)slot;
    return std::numeric_limits<double>::quiet_NaN();
  }

  virtual std::string name() const = 0;
};

/// Admits everything — the paper's original behavior, and the ablation
/// baseline the threshold policies are measured against.
class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  std::int64_t admit(std::int64_t /*slot*/, const JobType& /*type*/,
                     std::int64_t count, double /*value*/,
                     std::int64_t /*deadline*/) override {
    return count;
  }
  std::string name() const override { return "admit-all"; }
};

}  // namespace grefar
