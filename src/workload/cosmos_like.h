// CosmosLikeArrivals: the stand-in for the Microsoft Cosmos batch-job trace.
//
// The paper (Fig. 1) shows arrivals that are highly time-dependent — strong
// diurnal swings, sporadic per-organization submissions — and explicitly
// non-stationary. This generator produces exactly those properties:
//
//   rate_j(t) = base_j * diurnal_j(hour(t)) * burst_j(t) * weekend_j(t)
//   a_j(t)    = min(a_j^max, Poisson(rate_j(t)))
//
// where burst_j follows a two-state (idle/active) Markov chain per job type:
// organizations submit batches in sessions rather than continuously.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workload/arrival_process.h"

namespace grefar {

/// Per-job-type generator parameters.
struct CosmosTypeParams {
  double base_rate = 2.0;          // jobs per slot at diurnal=burst=1
  double diurnal_amplitude = 0.6;  // 0..1: day/night swing strength
  double peak_hour = 14.0;         // busiest hour of day
  double burst_on_prob = 0.08;     // P(idle -> active) per slot
  double burst_off_prob = 0.25;    // P(active -> idle) per slot
  double burst_multiplier = 3.0;   // rate multiplier while active
  double idle_multiplier = 0.35;   // rate multiplier while idle
  double weekend_multiplier = 0.5; // rate multiplier on days 5,6 of each week
  std::int64_t a_max = 50;         // boundedness constant of eq. (1)
};

class CosmosLikeArrivals final : public ArrivalProcess {
 public:
  CosmosLikeArrivals(std::vector<CosmosTypeParams> params, std::uint64_t seed);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return params_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

  /// The deterministic rate envelope (before Poisson sampling) — exposed for
  /// tests and for plotting the workload shape.
  double rate(JobTypeId j, std::int64_t t) const;

 private:
  void extend(std::int64_t t) const;

  std::vector<CosmosTypeParams> params_;
  std::uint64_t seed_;
  mutable std::vector<std::vector<std::int64_t>> count_cache_;  // [t][j]
  mutable std::vector<std::vector<double>> rate_cache_;         // [t][j]
  mutable std::vector<bool> burst_active_;
  mutable Rng rng_;
};

}  // namespace grefar
