// Arrival processes (paper §III-B).
//
// a_j(t): number of type-j jobs arriving during slot t. The paper makes no
// distributional assumption beyond boundedness 0 <= a_j(t) <= a_j^max;
// implementations here range from deterministic to the non-stationary
// bursty generator that stands in for the Microsoft Cosmos trace.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "workload/job.h"

namespace grefar {

/// Resolve-to-type-default sentinel for ArrivalBatch::deadline (distinct
/// from kNoDeadline, which explicitly disables the deadline).
inline constexpr std::int64_t kTypeDefaultDeadline =
    std::numeric_limits<std::int64_t>::min();

/// One group of identical arrivals within a slot, optionally carrying
/// per-batch value/decay/deadline annotations (trace schema v2; see
/// trace/trace_schema.h). NaN value/decay and kTypeDefaultDeadline mean
/// "resolve from the JobType defaults" — a plain count trace round-trips
/// through batches without inventing economics.
struct ArrivalBatch {
  JobTypeId type = 0;
  std::int64_t count = 0;
  /// Per-job base value; NaN = use JobType::value.
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Decay-curve rate; NaN = use JobType::decay_rate (the curve *kind*
  /// always comes from the type).
  double decay_rate = std::numeric_limits<double>::quiet_NaN();
  /// Relative completion deadline in slots; kNoDeadline = none,
  /// kTypeDefaultDeadline = use JobType::deadline.
  std::int64_t deadline = kTypeDefaultDeadline;
};

/// Interface: per-slot arrival counts for every job type. Implementations
/// must be deterministic functions of (parameters, t) so runs replay.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Arrival counts per job type during slot t (size == num_job_types()).
  virtual std::vector<std::int64_t> arrivals(std::int64_t t) const = 0;

  /// Writes the slot-t counts into `out`, reusing its storage. The default
  /// delegates to arrivals(); concrete processes override to copy straight
  /// from their internal table/cache so the simulator's per-slot loop stays
  /// free of heap traffic.
  virtual void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const {
    out = arrivals(t);
  }

  virtual std::size_t num_job_types() const = 0;

  /// The boundedness constant a_j^max of eq. (1).
  virtual std::int64_t max_arrivals(JobTypeId j) const = 0;

  /// True when this process carries per-batch value/decay/deadline
  /// annotations; the engine then pulls valued_arrivals_into() instead of
  /// arrivals_into(), so count-only processes pay nothing for the feature.
  virtual bool has_valued_arrivals() const { return false; }

  /// Writes slot t's arrival batches into `out` (storage reused; batches in
  /// a deterministic per-slot order, sum of counts per type consistent with
  /// arrivals_into). Only called when has_valued_arrivals() is true; the
  /// default contract-fails.
  virtual void valued_arrivals_into(std::int64_t t,
                                    std::vector<ArrivalBatch>& out) const;
};

/// Fixed counts every slot (unit tests, slackness checks).
class ConstantArrivals final : public ArrivalProcess {
 public:
  explicit ConstantArrivals(std::vector<std::int64_t> counts);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return counts_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  std::vector<std::int64_t> counts_;
};

/// Independent Poisson arrivals per type, truncated at a_max (stationary
/// baseline for tests and ablations).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(std::vector<double> rates, std::vector<std::int64_t> a_max,
                  std::uint64_t seed);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return rates_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  void extend(std::int64_t t) const;

  std::vector<double> rates_;
  std::vector<std::int64_t> a_max_;
  std::uint64_t seed_;
  mutable std::vector<std::vector<std::int64_t>> cache_;  // [t][j]
  mutable Rng rng_;
};

/// Arrival counts replayed from memory (e.g. a CSV trace); slots beyond the
/// trace wrap around.
class TableArrivals final : public ArrivalProcess {
 public:
  /// counts[t][j]; all rows must have the same width.
  explicit TableArrivals(std::vector<std::vector<std::int64_t>> counts);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override;
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  std::vector<std::vector<std::int64_t>> counts_;
};

/// Valued arrival batches replayed from memory (a schema-v2 job trace, see
/// trace/job_trace.h); slots beyond the table wrap around, matching
/// TableArrivals. Batch order within a slot is preserved as given.
class ValuedTableArrivals final : public ArrivalProcess {
 public:
  /// slots[t] = that slot's batches; `num_types` fixes the count-vector
  /// width (batches reference types sparsely, so it cannot be inferred).
  ValuedTableArrivals(std::vector<std::vector<ArrivalBatch>> slots,
                      std::size_t num_types);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return num_types_; }
  std::int64_t max_arrivals(JobTypeId j) const override;
  bool has_valued_arrivals() const override { return true; }
  void valued_arrivals_into(std::int64_t t,
                            std::vector<ArrivalBatch>& out) const override;

 private:
  std::vector<std::vector<ArrivalBatch>> slots_;
  std::size_t num_types_;
  std::vector<std::int64_t> max_arrivals_;  // per-type high-water
};

}  // namespace grefar
