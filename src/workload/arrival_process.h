// Arrival processes (paper §III-B).
//
// a_j(t): number of type-j jobs arriving during slot t. The paper makes no
// distributional assumption beyond boundedness 0 <= a_j(t) <= a_j^max;
// implementations here range from deterministic to the non-stationary
// bursty generator that stands in for the Microsoft Cosmos trace.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "workload/job.h"

namespace grefar {

/// Interface: per-slot arrival counts for every job type. Implementations
/// must be deterministic functions of (parameters, t) so runs replay.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Arrival counts per job type during slot t (size == num_job_types()).
  virtual std::vector<std::int64_t> arrivals(std::int64_t t) const = 0;

  /// Writes the slot-t counts into `out`, reusing its storage. The default
  /// delegates to arrivals(); concrete processes override to copy straight
  /// from their internal table/cache so the simulator's per-slot loop stays
  /// free of heap traffic.
  virtual void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const {
    out = arrivals(t);
  }

  virtual std::size_t num_job_types() const = 0;

  /// The boundedness constant a_j^max of eq. (1).
  virtual std::int64_t max_arrivals(JobTypeId j) const = 0;
};

/// Fixed counts every slot (unit tests, slackness checks).
class ConstantArrivals final : public ArrivalProcess {
 public:
  explicit ConstantArrivals(std::vector<std::int64_t> counts);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return counts_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  std::vector<std::int64_t> counts_;
};

/// Independent Poisson arrivals per type, truncated at a_max (stationary
/// baseline for tests and ablations).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(std::vector<double> rates, std::vector<std::int64_t> a_max,
                  std::uint64_t seed);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return rates_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  void extend(std::int64_t t) const;

  std::vector<double> rates_;
  std::vector<std::int64_t> a_max_;
  std::uint64_t seed_;
  mutable std::vector<std::vector<std::int64_t>> cache_;  // [t][j]
  mutable Rng rng_;
};

/// Arrival counts replayed from memory (e.g. a CSV trace); slots beyond the
/// trace wrap around.
class TableArrivals final : public ArrivalProcess {
 public:
  /// counts[t][j]; all rows must have the same width.
  explicit TableArrivals(std::vector<std::vector<std::int64_t>> counts);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override;
  std::int64_t max_arrivals(JobTypeId j) const override;

 private:
  std::vector<std::vector<std::int64_t>> counts_;
};

}  // namespace grefar
