#include "workload/arrival_process.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

void ArrivalProcess::valued_arrivals_into(std::int64_t /*t*/,
                                          std::vector<ArrivalBatch>& /*out*/) const {
  GREFAR_CHECK_MSG(false,
                   "valued_arrivals_into called on an arrival process without "
                   "value annotations (check has_valued_arrivals first)");
}

ConstantArrivals::ConstantArrivals(std::vector<std::int64_t> counts)
    : counts_(std::move(counts)) {
  GREFAR_CHECK(!counts_.empty());
  for (auto c : counts_) GREFAR_CHECK_MSG(c >= 0, "arrival counts must be >= 0");
}

std::vector<std::int64_t> ConstantArrivals::arrivals(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  return counts_;
}

void ConstantArrivals::arrivals_into(std::int64_t t,
                                     std::vector<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  out.assign(counts_.begin(), counts_.end());
}

std::int64_t ConstantArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < counts_.size());
  return counts_[j];
}

PoissonArrivals::PoissonArrivals(std::vector<double> rates,
                                 std::vector<std::int64_t> a_max, std::uint64_t seed)
    : rates_(std::move(rates)), a_max_(std::move(a_max)), seed_(seed), rng_(seed) {
  GREFAR_CHECK(!rates_.empty());
  GREFAR_CHECK(rates_.size() == a_max_.size());
  for (double r : rates_) GREFAR_CHECK_MSG(r >= 0.0, "rates must be >= 0");
  for (auto m : a_max_) GREFAR_CHECK_MSG(m >= 0, "a_max must be >= 0");
}

void PoissonArrivals::extend(std::int64_t t) const {
  while (static_cast<std::int64_t>(cache_.size()) <= t) {
    std::vector<std::int64_t> row(rates_.size());
    for (std::size_t j = 0; j < rates_.size(); ++j) {
      row[j] = std::min(a_max_[j], rng_.poisson(rates_[j]));
    }
    cache_.push_back(std::move(row));
  }
}

std::vector<std::int64_t> PoissonArrivals::arrivals(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  return cache_[static_cast<std::size_t>(t)];
}

void PoissonArrivals::arrivals_into(std::int64_t t,
                                    std::vector<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  const auto& row = cache_[static_cast<std::size_t>(t)];
  out.assign(row.begin(), row.end());
}

std::int64_t PoissonArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < a_max_.size());
  return a_max_[j];
}

TableArrivals::TableArrivals(std::vector<std::vector<std::int64_t>> counts)
    : counts_(std::move(counts)) {
  GREFAR_CHECK_MSG(!counts_.empty(), "trace must have at least one slot");
  const std::size_t width = counts_.front().size();
  GREFAR_CHECK_MSG(width > 0, "trace must have at least one job type");
  for (const auto& row : counts_) {
    GREFAR_CHECK_MSG(row.size() == width, "ragged arrival trace");
    for (auto c : row) GREFAR_CHECK_MSG(c >= 0, "arrival counts must be >= 0");
  }
}

std::vector<std::int64_t> TableArrivals::arrivals(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  return counts_[static_cast<std::size_t>(t) % counts_.size()];
}

void TableArrivals::arrivals_into(std::int64_t t,
                                  std::vector<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  const auto& row = counts_[static_cast<std::size_t>(t) % counts_.size()];
  out.assign(row.begin(), row.end());
}

std::size_t TableArrivals::num_job_types() const { return counts_.front().size(); }

std::int64_t TableArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < num_job_types());
  std::int64_t m = 0;
  for (const auto& row : counts_) m = std::max(m, row[j]);
  return m;
}

ValuedTableArrivals::ValuedTableArrivals(
    std::vector<std::vector<ArrivalBatch>> slots, std::size_t num_types)
    : slots_(std::move(slots)), num_types_(num_types) {
  GREFAR_CHECK_MSG(!slots_.empty(), "trace must have at least one slot");
  GREFAR_CHECK_MSG(num_types_ > 0, "trace must have at least one job type");
  max_arrivals_.assign(num_types_, 0);
  std::vector<std::int64_t> slot_counts(num_types_, 0);
  for (const auto& slot : slots_) {
    std::fill(slot_counts.begin(), slot_counts.end(), 0);
    for (const auto& b : slot) {
      GREFAR_CHECK_MSG(b.type < num_types_, "batch references bad job type");
      GREFAR_CHECK_MSG(b.count >= 0, "arrival counts must be >= 0");
      slot_counts[b.type] += b.count;
    }
    for (std::size_t j = 0; j < num_types_; ++j) {
      max_arrivals_[j] = std::max(max_arrivals_[j], slot_counts[j]);
    }
  }
}

std::vector<std::int64_t> ValuedTableArrivals::arrivals(std::int64_t t) const {
  std::vector<std::int64_t> out;
  arrivals_into(t, out);
  return out;
}

void ValuedTableArrivals::arrivals_into(std::int64_t t,
                                        std::vector<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  out.assign(num_types_, 0);
  const auto& slot = slots_[static_cast<std::size_t>(t) % slots_.size()];
  for (const auto& b : slot) out[b.type] += b.count;
}

std::int64_t ValuedTableArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < num_types_);
  return max_arrivals_[j];
}

void ValuedTableArrivals::valued_arrivals_into(
    std::int64_t t, std::vector<ArrivalBatch>& out) const {
  GREFAR_CHECK(t >= 0);
  const auto& slot = slots_[static_cast<std::size_t>(t) % slots_.size()];
  out.assign(slot.begin(), slot.end());
}

}  // namespace grefar
