// Heavy-tailed job-size modelling.
//
// Batch/analytics job sizes are famously heavy-tailed (many small jobs, few
// huge ones). The GreFar job model uses discrete job *types* with fixed work
// d_j, so this builder discretizes a (truncated) Pareto(x_m, alpha) work
// distribution into equal-probability size classes: each class becomes one
// JobType whose work is the conditional mean of its quantile band, with an
// arrival rate that reproduces the requested total work per slot.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace grefar {

struct ParetoWorkloadSpec {
  std::string name_prefix = "job";       // class j named "<prefix>-c<j>"
  AccountId account = 0;
  std::vector<DataCenterId> eligible_dcs;
  double x_m = 1.0;       // Pareto scale (minimum job size, work units)
  double alpha = 1.8;     // Pareto shape (> 1 for finite mean)
  std::size_t classes = 4;
  double mean_work_per_slot = 20.0;  // total across all classes
  double cap_quantile = 0.99;        // truncate the tail here (< 1)
};

/// One discretized size class: the JobType plus the Poisson arrival rate
/// (jobs/slot) that realizes the spec's work budget.
struct ParetoClass {
  JobType type;
  double mean_jobs_per_slot = 0.0;
};

/// Builds the size classes. Guarantees:
///   * class works are strictly increasing,
///   * sum of (work * rate) equals spec.mean_work_per_slot,
///   * every class inherits the spec's account and eligible set.
std::vector<ParetoClass> build_pareto_classes(const ParetoWorkloadSpec& spec);

/// Quantile of Pareto(x_m, alpha): x(q) = x_m * (1 - q)^(-1/alpha).
double pareto_quantile(double x_m, double alpha, double q);

/// Mean of Pareto(x_m, alpha) conditional on the value lying in
/// [quantile(q_lo), quantile(q_hi)] (0 <= q_lo < q_hi < 1, alpha != 1).
double pareto_band_mean(double x_m, double alpha, double q_lo, double q_hi);

}  // namespace grefar
