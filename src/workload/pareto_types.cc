#include "workload/pareto_types.h"

#include <cmath>

#include "util/check.h"

namespace grefar {

double pareto_quantile(double x_m, double alpha, double q) {
  GREFAR_CHECK(x_m > 0.0 && alpha > 0.0);
  GREFAR_CHECK(q >= 0.0 && q < 1.0);
  return x_m * std::pow(1.0 - q, -1.0 / alpha);
}

double pareto_band_mean(double x_m, double alpha, double q_lo, double q_hi) {
  GREFAR_CHECK(x_m > 0.0 && alpha > 0.0 && alpha != 1.0);
  GREFAR_CHECK(q_lo >= 0.0 && q_lo < q_hi && q_hi < 1.0);
  double a = pareto_quantile(x_m, alpha, q_lo);
  double b = pareto_quantile(x_m, alpha, q_hi);
  // integral of x * f(x) over [a, b] with f(x) = alpha x_m^alpha x^{-alpha-1}:
  double integral = alpha * std::pow(x_m, alpha) *
                    (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) /
                    (1.0 - alpha);
  double mass = q_hi - q_lo;
  return integral / mass;
}

std::vector<ParetoClass> build_pareto_classes(const ParetoWorkloadSpec& spec) {
  GREFAR_CHECK_MSG(spec.classes >= 1, "need at least one size class");
  GREFAR_CHECK_MSG(spec.alpha > 1.0, "alpha must exceed 1 (finite mean)");
  GREFAR_CHECK_MSG(spec.x_m > 0.0, "x_m must be positive");
  GREFAR_CHECK_MSG(spec.cap_quantile > 0.0 && spec.cap_quantile < 1.0,
                   "cap_quantile must be in (0,1)");
  GREFAR_CHECK_MSG(spec.mean_work_per_slot >= 0.0, "work budget must be >= 0");
  GREFAR_CHECK_MSG(!spec.eligible_dcs.empty(), "eligible set must be non-empty");

  const double band = spec.cap_quantile / static_cast<double>(spec.classes);
  std::vector<ParetoClass> classes;
  classes.reserve(spec.classes);
  double mean_job_size = 0.0;  // per arriving job, conditional on <= cap
  for (std::size_t g = 0; g < spec.classes; ++g) {
    double q_lo = band * static_cast<double>(g);
    double q_hi = band * static_cast<double>(g + 1);
    ParetoClass cls;
    cls.type.name = spec.name_prefix + "-c" + std::to_string(g);
    cls.type.work = pareto_band_mean(spec.x_m, spec.alpha, q_lo, q_hi);
    cls.type.eligible_dcs = spec.eligible_dcs;
    cls.type.account = spec.account;
    classes.push_back(std::move(cls));
    mean_job_size += classes.back().type.work / static_cast<double>(spec.classes);
  }
  // Equal class probabilities: each class receives total_rate / classes jobs
  // per slot, where total_rate * mean_job_size == the work budget.
  double total_rate =
      mean_job_size > 0.0 ? spec.mean_work_per_slot / mean_job_size : 0.0;
  for (auto& cls : classes) {
    cls.mean_jobs_per_slot = total_rate / static_cast<double>(spec.classes);
  }
  return classes;
}

}  // namespace grefar
