#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace grefar {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  GREFAR_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  GREFAR_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // numeric edge at hi_
  ++counts_[bin];
}

std::int64_t Histogram::bin_count(std::size_t bin) const {
  GREFAR_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  GREFAR_CHECK(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::quantile(double q) const {
  GREFAR_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  // Clamp to lo_ only when underflowed samples actually cover the target;
  // with no underflow, q = 0 falls through and anchors at the first
  // populated bin instead of the (possibly far-below-data) range start.
  if (underflow_ > 0 && target <= cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_lo(b) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(int max_bar_width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    int bar = static_cast<int>(std::llround(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * max_bar_width));
    out += pad_left(format_fixed(bin_lo(b), 2), 10) + " .. " +
           pad_left(format_fixed(bin_hi(b), 2), 10) + " | " +
           std::string(static_cast<std::size_t>(bar), '#') + " " +
           std::to_string(counts_[b]) + "\n";
  }
  if (underflow_ > 0) out += "  underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "  overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace grefar
