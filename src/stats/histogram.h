// Fixed-width-bin histogram with exact quantiles over the binned data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grefar {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus underflow and
/// overflow counters. Quantiles are estimated by linear interpolation within
/// the containing bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::int64_t count() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t bin_count(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }

  /// q in [0,1]; returns the interpolated quantile of binned samples.
  /// Underflow clamps to lo, overflow to hi; with no underflow, q = 0
  /// anchors at the first populated bin. Returns NaN when empty (the
  /// P2Quantile::value() convention).
  double quantile(double q) const;

  /// Renders a compact textual histogram (for benchmark reports).
  std::string render(int max_bar_width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace grefar
