// P² (piecewise-parabolic) streaming quantile estimator (Jain & Chlamtac,
// CACM 1985). Estimates a single quantile in O(1) memory without storing
// samples — used for delay-percentile reporting over long simulations.
#pragma once

#include <array>
#include <cstdint>

namespace grefar {

class P2Quantile {
 public:
  /// q in (0, 1): the quantile to track (e.g. 0.99 for p99).
  explicit P2Quantile(double q);

  void add(double x);

  /// Back to the freshly-constructed state for the same quantile (sweep
  /// engine reuse); bitwise-equal to a new P2Quantile(q).
  void reset() { *this = P2Quantile(q_); }

  /// Current estimate. Exact while fewer than 5 samples have been seen;
  /// NaN when empty — "no samples" must not masquerade as a zero-delay
  /// percentile (JSON emitters serialize it as null).
  double value() const;

  std::int64_t count() const { return count_; }

 private:
  double q_;
  std::int64_t count_ = 0;
  std::array<double, 5> heights_{};     // marker heights
  std::array<double, 5> positions_{};   // actual marker positions
  std::array<double, 5> desired_{};     // desired marker positions
  std::array<double, 5> increments_{};  // desired position increments

  double parabolic(int i, double d) const;
  double linear(int i, double d) const;
};

}  // namespace grefar
