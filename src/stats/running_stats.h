// Streaming statistics: Welford mean/variance, min/max, and EWMA.
#pragma once

#include <cstdint>
#include <limits>

#include "util/annotations.h"

namespace grefar {

/// Numerically-stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC void add(double x);

  std::int64_t count() const { return count_; }
  /// Mean of observed samples; 0 when empty.
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

  /// Merges another accumulator into this one (parallel-combinable).
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC void merge(const RunningStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially-weighted moving average with smoothing factor alpha in (0,1].
class Ewma {
 public:
  explicit Ewma(double alpha);

  GREFAR_HOT_PATH GREFAR_DETERMINISTIC void add(double x);
  /// Current EWMA value; 0 before the first sample.
  double value() const { return initialized_ ? value_ : 0.0; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace grefar
