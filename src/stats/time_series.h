// TimeSeries: a (slot, value) recording with the views the paper's figures
// need — notably running prefix averages ("average values at time t are
// obtained by summing all values up to t and dividing by t", paper §VI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grefar {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends the value observed at the next slot.
  void add(double value);

  /// Drops all samples but keeps the name and the heap capacity, so a reused
  /// engine's metrics re-record without reallocating (sweep arena contract).
  void clear() { values_.clear(); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double at(std::size_t i) const;
  const std::vector<double>& values() const { return values_; }

  /// values[i] replaced by mean(values[0..i]) — the paper's running average.
  TimeSeries prefix_average() const;

  /// Mean over the whole series (0 when empty).
  double mean() const;

  /// Mean over the trailing `n` samples (or all if fewer).
  double tail_mean(std::size_t n) const;

  /// Sum over the whole series.
  double sum() const;

  /// Keeps every `stride`-th sample (for compact CSV output).
  TimeSeries downsample(std::size_t stride) const;

  /// Element-wise running ratio: mean of numerator to `t` over mean of
  /// denominator to `t`. Used for time-averaged delay (total delay incurred /
  /// total jobs finished). Series must be equal length. Slots where the
  /// denominator prefix-sum is 0 yield 0.
  static TimeSeries prefix_ratio(const TimeSeries& numerator,
                                 const TimeSeries& denominator,
                                 std::string name);

 private:
  std::string name_;
  std::vector<double> values_;
};

/// Writes aligned columns of several equally-long series to CSV text,
/// prefixed with a slot column.
std::string time_series_to_csv(const std::vector<const TimeSeries*>& series);

/// Pearson correlation coefficient of two equally-long series; 0 when either
/// series is constant or empty. Used e.g. to quantify how strongly a
/// scheduler's processing tracks electricity prices (Fig. 5).
double correlation(const TimeSeries& a, const TimeSeries& b);

}  // namespace grefar
