#include "stats/summary_table.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace grefar {

SummaryTable::SummaryTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GREFAR_CHECK(!headers_.empty());
}

void SummaryTable::add_row(std::vector<std::string> row) {
  GREFAR_CHECK_MSG(row.size() == headers_.size(),
                   "row has " << row.size() << " fields, expected "
                              << headers_.size());
  rows_.push_back(std::move(row));
}

void SummaryTable::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> row{label};
  for (double v : values) row.push_back(format_fixed(v, precision));
  add_row(std::move(row));
}

std::string SummaryTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      // Left-align the first column (labels), right-align the rest (numbers).
      line += c == 0 ? pad_right(row[c], widths[c]) : pad_left(row[c], widths[c]);
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace grefar
