#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace grefar {

void RunningStats::add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  GREFAR_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace grefar
