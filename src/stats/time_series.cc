#include "stats/time_series.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace grefar {

void TimeSeries::add(double value) { values_.push_back(value); }

double TimeSeries::at(std::size_t i) const {
  GREFAR_CHECK(i < values_.size());
  return values_[i];
}

TimeSeries TimeSeries::prefix_average() const {
  TimeSeries out(name_ + "_avg");
  double sum = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    sum += values_[i];
    out.add(sum / static_cast<double>(i + 1));
  }
  return out;
}

double TimeSeries::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double TimeSeries::tail_mean(std::size_t n) const {
  if (values_.empty()) return 0.0;
  std::size_t start = values_.size() > n ? values_.size() - n : 0;
  double s = 0.0;
  for (std::size_t i = start; i < values_.size(); ++i) s += values_[i];
  return s / static_cast<double>(values_.size() - start);
}

double TimeSeries::sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

TimeSeries TimeSeries::downsample(std::size_t stride) const {
  GREFAR_CHECK(stride > 0);
  TimeSeries out(name_);
  for (std::size_t i = 0; i < values_.size(); i += stride) out.add(values_[i]);
  return out;
}

TimeSeries TimeSeries::prefix_ratio(const TimeSeries& numerator,
                                    const TimeSeries& denominator,
                                    std::string name) {
  GREFAR_CHECK_MSG(numerator.size() == denominator.size(),
                   "prefix_ratio needs equal-length series");
  TimeSeries out(std::move(name));
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < numerator.size(); ++i) {
    num += numerator.values_[i];
    den += denominator.values_[i];
    out.add(den > 0.0 ? num / den : 0.0);
  }
  return out;
}

double correlation(const TimeSeries& a, const TimeSeries& b) {
  GREFAR_CHECK_MSG(a.size() == b.size(), "correlation needs equal-length series");
  if (a.empty()) return 0.0;
  const double ma = a.mean();
  const double mb = b.mean();
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double da = a.at(i) - ma;
    double db = b.at(i) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return va > 0.0 && vb > 0.0 ? cov / std::sqrt(va * vb) : 0.0;
}

std::string time_series_to_csv(const std::vector<const TimeSeries*>& series) {
  std::ostringstream os;
  CsvWriter writer(os);
  std::vector<std::string> header{"slot"};
  std::size_t length = 0;
  for (const auto* s : series) {
    GREFAR_CHECK(s != nullptr);
    header.push_back(s->name());
    length = std::max(length, s->size());
  }
  writer.write_row(header);
  for (std::size_t i = 0; i < length; ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (const auto* s : series) {
      row.push_back(i < s->size() ? format_fixed(s->at(i), 6) : "");
    }
    writer.write_row(row);
  }
  return os.str();
}

}  // namespace grefar
