#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace grefar {

P2Quantile::P2Quantile(double q) : q_(q) {
  GREFAR_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  double np = positions_[i + 1];
  double nm = positions_[i - 1];
  double n = positions_[i];
  return heights_[i] +
         d / (np - nm) *
             ((n - nm + d) * (heights_[i + 1] - heights_[i]) / (np - n) +
              (np - n - d) * (heights_[i] - heights_[i - 1]) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ < 5) {
    // Exact small-sample quantile: sort a copy of observed values.
    const auto n = static_cast<std::size_t>(std::min<std::int64_t>(count_, 5));
    std::array<double, 5> sorted{};
    std::copy_n(heights_.begin(), n, sorted.begin());
    // Tiny insertion sort (std::sort on the partial array trips a GCC
    // -Warray-bounds false positive when inlined).
    for (std::size_t i = 1; i < n; ++i) {
      double key = sorted[i];
      std::size_t j = i;
      while (j > 0 && sorted[j - 1] > key) {
        sorted[j] = sorted[j - 1];
        --j;
      }
      sorted[j] = key;
    }
    double idx = q_ * static_cast<double>(n - 1);
    auto lo = static_cast<std::size_t>(idx);
    auto hi = std::min<std::size_t>(lo + 1, n - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace grefar
