// SummaryTable: aligned plain-text tables for benchmark/report output
// (reproduces the paper's Table I formatting in the terminal).
#pragma once

#include <string>
#include <vector>

namespace grefar {

class SummaryTable {
 public:
  /// Column headers define the table width.
  explicit SummaryTable(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header separator and column alignment.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grefar
