#include "util/cli.h"

#include <iostream>

#include "util/check.h"
#include "util/strings.h"

namespace grefar {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  GREFAR_CHECK_MSG(find_option(name) == nullptr, "duplicate option --" << name);
  options_.emplace_back(name, Option{default_value, help, /*is_flag=*/false});
  values_[name] = default_value;
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  GREFAR_CHECK_MSG(find_option(name) == nullptr, "duplicate flag --" << name);
  options_.emplace_back(name, Option{"", help, /*is_flag=*/true});
  flags_[name] = false;
}

const CliParser::Option* CliParser::find_option(const std::string& name) const {
  for (const auto& [n, opt] : options_) {
    if (n == name) return &opt;
  }
  return nullptr;
}

Status CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return Error::make("help");
    }
    if (!starts_with(arg, "--")) {
      return Error::make("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const Option* opt = find_option(name);
    if (opt == nullptr) return Error::make("unknown option --" + name);
    if (opt->is_flag) {
      if (has_inline_value) return Error::make("flag --" + name + " takes no value");
      flags_[name] = true;
    } else {
      if (!has_inline_value) {
        if (i + 1 >= argc) return Error::make("option --" + name + " needs a value");
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return {};
}

std::string CliParser::get_string(const std::string& name) const {
  auto it = values_.find(name);
  GREFAR_CHECK_MSG(it != values_.end(), "option --" << name << " not registered");
  return it->second;
}

double CliParser::get_double(const std::string& name) const {
  auto parsed = parse_double(get_string(name));
  GREFAR_CHECK_MSG(parsed.ok(), "--" << name << ": " << parsed.error().message);
  return parsed.value();
}

std::int64_t CliParser::get_int(const std::string& name) const {
  auto parsed = parse_int(get_string(name));
  GREFAR_CHECK_MSG(parsed.ok(), "--" << name << ": " << parsed.error().message);
  return parsed.value();
}

bool CliParser::get_flag(const std::string& name) const {
  auto it = flags_.find(name);
  GREFAR_CHECK_MSG(it != flags_.end(), "flag --" << name << " not registered");
  return it->second;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& piece : split(get_string(name), ',')) {
    auto parsed = parse_double(piece);
    GREFAR_CHECK_MSG(parsed.ok(), "--" << name << ": " << parsed.error().message);
    out.push_back(parsed.value());
  }
  return out;
}

std::string CliParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    std::string left = "  --" + name;
    if (!opt.is_flag) left += " <value>";
    out += pad_right(left, 34) + opt.help;
    if (!opt.is_flag && !opt.default_value.empty()) {
      out += " (default: " + opt.default_value + ")";
    }
    out += '\n';
  }
  out += pad_right("  --help", 34);
  out += "show this message\n";
  return out;
}

}  // namespace grefar
