// Minimal RFC-4180-style CSV reader/writer used by the trace module and the
// benchmark harness. Supports quoted fields containing separators, quotes
// (doubled) and newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/stream_csv.h"
#include "util/result.h"

namespace grefar {

/// Serializes rows to CSV. Fields containing the separator, quotes or
/// newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  /// Writes one row; flushes a trailing '\n'.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles formatted with `precision`.
  void write_row(const std::vector<double>& fields, int precision = 6);

 private:
  std::string escape(const std::string& field) const;

  std::ostream& out_;
  char sep_;
};

/// Parses CSV text into materialized rows of fields. A thin wrapper over
/// StreamCsvParser (trace/stream_csv.h) — the repo's one CSV state machine —
/// with the historical lenient dialect. `limits` bounds resource usage
/// (max field bytes / fields per row / row count); violations and malformed
/// quoting fail with byte-offset diagnostics.
class CsvReader {
 public:
  explicit CsvReader(char sep = ',', CsvLimits limits = {})
      : sep_(sep), limits_(limits) {}

  /// Parses an entire document. Returns all rows (the caller decides whether
  /// the first is a header). Fails on unterminated quotes.
  Result<std::vector<std::vector<std::string>>> parse(std::string_view text) const;

  /// Reads and parses a whole file.
  Result<std::vector<std::vector<std::string>>> parse_file(const std::string& path) const;

 private:
  char sep_;
  CsvLimits limits_;
};

/// Reads an entire file into a string.
Result<std::string> read_file(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status write_file(const std::string& path, std::string_view content);

}  // namespace grefar
