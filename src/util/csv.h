// Minimal RFC-4180-style CSV reader/writer used by the trace module and the
// benchmark harness. Supports quoted fields containing separators, quotes
// (doubled) and newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.h"

namespace grefar {

/// Serializes rows to CSV. Fields containing the separator, quotes or
/// newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  /// Writes one row; flushes a trailing '\n'.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles formatted with `precision`.
  void write_row(const std::vector<double>& fields, int precision = 6);

 private:
  std::string escape(const std::string& field) const;

  std::ostream& out_;
  char sep_;
};

/// Parses CSV text into rows of fields.
class CsvReader {
 public:
  explicit CsvReader(char sep = ',') : sep_(sep) {}

  /// Parses an entire document. Returns all rows (the caller decides whether
  /// the first is a header). Fails on unterminated quotes.
  Result<std::vector<std::vector<std::string>>> parse(std::string_view text) const;

  /// Reads and parses a whole file.
  Result<std::vector<std::vector<std::string>>> parse_file(const std::string& path) const;

 private:
  char sep_;
};

/// Reads an entire file into a string.
Result<std::string> read_file(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status write_file(const std::string& path, std::string_view content);

}  // namespace grefar
