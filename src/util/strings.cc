#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace grefar {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return Error::make("empty string is not a number");
  double value = 0.0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    return Error::make("invalid double: '" + std::string(s) + "'");
  }
  return value;
}

Result<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return Error::make("empty string is not an integer");
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    return Error::make("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pad_left(std::string s, std::size_t w) {
  if (s.size() < w) s.insert(s.begin(), w - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
  return s;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace grefar
