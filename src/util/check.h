// Contract-checking macros.
//
// GREFAR_CHECK enforces preconditions and invariants that indicate programmer
// error; violations throw grefar::ContractViolation so tests can assert on
// them and applications fail loudly instead of corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace grefar {

/// Thrown when a GREFAR_CHECK contract is violated. Represents a programming
/// error (bad arguments, broken invariant), never an expected runtime failure.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace internal

}  // namespace grefar

/// Check a precondition/invariant; throws grefar::ContractViolation on failure.
#define GREFAR_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) ::grefar::internal::contract_fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Like GREFAR_CHECK but with a streamed message: GREFAR_CHECK_MSG(x>0, "x=" << x).
#define GREFAR_CHECK_MSG(cond, stream_expr)                                   \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream grefar_check_os_;                                    \
      grefar_check_os_ << stream_expr;                                        \
      ::grefar::internal::contract_fail(#cond, __FILE__, __LINE__,            \
                                        grefar_check_os_.str());              \
    }                                                                         \
  } while (false)

/// Debug-only checks: identical to GREFAR_CHECK / GREFAR_CHECK_MSG when
/// NDEBUG is undefined, compiled out entirely (condition unevaluated) in
/// Release. For per-element invariants on hot loops that the Release build
/// cannot afford. Because the condition may never run, it must be
/// side-effect-free — true for the whole GREFAR_CHECK family by contract
/// (program semantics must not live inside an assertion), and enforced
/// statically by the grefar-check-side-effects clang-tidy check
/// (tools/grefar-lint, DESIGN.md §13).
#ifndef NDEBUG
#define GREFAR_DCHECK(cond) GREFAR_CHECK(cond)
#define GREFAR_DCHECK_MSG(cond, stream_expr) GREFAR_CHECK_MSG(cond, stream_expr)
#else
#define GREFAR_DCHECK(cond) \
  do {                      \
  } while (false)
#define GREFAR_DCHECK_MSG(cond, stream_expr) \
  do {                                       \
  } while (false)
#endif
