#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace grefar {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

/// Downsamples `values` to exactly `n` points by averaging buckets.
std::vector<double> resample(const std::vector<double>& values, std::size_t n) {
  if (values.empty() || n == 0) return {};
  if (values.size() <= n) {
    // Stretch by nearest-neighbour so short series still span the chart.
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t src = i * values.size() / n;
      out[i] = values[src];
    }
    return out;
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo = i * values.size() / n;
    std::size_t hi = std::max(lo + 1, (i + 1) * values.size() / n);
    double sum = 0.0;
    for (std::size_t k = lo; k < hi; ++k) sum += values[k];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace

std::string AsciiChart::render() const {
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  bool any_data = false;
  for (const auto& s : series_) any_data = any_data || !s.values.empty();
  if (series_.empty() || !any_data) {
    out += "  (no data)\n";
    return out;
  }

  // Global y-range across all series.
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  for (const auto& s : series_) {
    for (double v : s.values) {
      if (std::isfinite(v)) {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
  }
  if (!std::isfinite(ymin)) {
    out += "  (no finite data)\n";
    return out;
  }
  if (ymax == ymin) {
    ymax = ymin + 1.0;  // flat series: give it a band
  }
  double pad = 0.05 * (ymax - ymin);
  ymin -= pad;
  ymax += pad;

  const std::size_t w = static_cast<std::size_t>(width_);
  const std::size_t h = static_cast<std::size_t>(height_);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series_.size(); ++si) {
    char glyph = kGlyphs[si % sizeof(kGlyphs)];
    std::vector<double> ys = resample(series_[si].values, w);
    for (std::size_t x = 0; x < ys.size(); ++x) {
      if (!std::isfinite(ys[x])) continue;
      double frac = (ys[x] - ymin) / (ymax - ymin);
      std::size_t row =
          h - 1 - static_cast<std::size_t>(std::clamp(frac, 0.0, 1.0) * (h - 1) + 0.5);
      grid[row][x] = glyph;
    }
  }

  const int label_w = 10;
  if (!y_label_.empty()) {
    out += std::string(label_w + 2, ' ') + y_label_ + "\n";
  }
  for (std::size_t row = 0; row < h; ++row) {
    double frac = 1.0 - static_cast<double>(row) / (h - 1);
    double y = ymin + frac * (ymax - ymin);
    bool labeled = row % 3 == 0 || row == h - 1;
    std::string label = labeled ? format_fixed(y, 3) : "";
    out += pad_left(label, label_w) + " |" + grid[row] + "\n";
  }
  out += std::string(label_w + 1, ' ') + '+' + std::string(w, '-') + "\n";
  if (has_x_range_) {
    std::string left = format_fixed(x0_, 0);
    std::string right = format_fixed(x1_, 0);
    std::string axis_row(label_w + 2 + w, ' ');
    std::string center = x_label_;
    for (std::size_t i = 0; i < left.size() && label_w + 2 + i < axis_row.size(); ++i)
      axis_row[label_w + 2 + i] = left[i];
    for (std::size_t i = 0; i < right.size(); ++i) {
      std::size_t pos = label_w + 2 + w - right.size() + i;
      if (pos < axis_row.size()) axis_row[pos] = right[i];
    }
    if (!center.empty() && center.size() < w) {
      std::size_t start = label_w + 2 + (w - center.size()) / 2;
      for (std::size_t i = 0; i < center.size(); ++i) axis_row[start + i] = center[i];
    }
    out += axis_row + "\n";
  } else if (!x_label_.empty()) {
    out += std::string(label_w + 2, ' ') + x_label_ + "\n";
  }
  out += "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out += "  ";
    out += kGlyphs[si % sizeof(kGlyphs)];
    out += " " + series_[si].label;
  }
  out += "\n";
  return out;
}

}  // namespace grefar
