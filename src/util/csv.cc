#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace grefar {

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << sep_;
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields, int precision) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double f : fields) text.push_back(format_fixed(f, precision));
  write_row(text);
}

std::string CsvWriter::escape(const std::string& field) const {
  bool needs_quotes = field.find(sep_) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::vector<std::string>>> CsvReader::parse(std::string_view text) const {
  std::vector<std::vector<std::string>> rows;
  CsvDialect dialect;
  dialect.separator = sep_;
  Status st = parse_csv(
      text,
      [&rows](const std::vector<std::string>& fields, std::uint64_t /*row*/,
              const CsvPosition& /*row_start*/) -> Status {
        rows.push_back(fields);
        return {};
      },
      dialect, limits_);
  if (!st.ok()) return st.error();
  return rows;
}

Result<std::vector<std::vector<std::string>>> CsvReader::parse_file(const std::string& path) const {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return parse(content.value());
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error::make("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Error::make("write failed: " + path);
  return {};
}

}  // namespace grefar
