#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace grefar {

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << sep_;
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields, int precision) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double f : fields) text.push_back(format_fixed(f, precision));
  write_row(text);
}

std::string CsvWriter::escape(const std::string& field) const {
  bool needs_quotes = field.find(sep_) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::vector<std::string>>> CsvReader::parse(std::string_view text) const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_dirty = false;  // current field consumed chars or was quoted
  bool row_dirty = false;    // current row has any content (fields or seps)

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_dirty = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_dirty = false;
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    if (c == '"' && !field_dirty) {
      in_quotes = true;
      field_dirty = true;
      row_dirty = true;
      ++i;
    } else if (c == sep_) {
      end_field();
      row_dirty = true;
      ++i;
    } else if (c == '\r') {
      ++i;  // tolerate CRLF
    } else if (c == '\n') {
      end_row();
      ++i;
    } else {
      field += c;
      field_dirty = true;
      row_dirty = true;
      ++i;
    }
  }
  if (in_quotes) return Error::make("unterminated quoted CSV field");
  if (row_dirty || field_dirty || !field.empty() || !row.empty()) end_row();
  return rows;
}

Result<std::vector<std::vector<std::string>>> CsvReader::parse_file(const std::string& path) const {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return parse(content.value());
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error::make("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Error::make("write failed: " + path);
  return {};
}

}  // namespace grefar
