// Minimal JSON document model + parser + serializer.
//
// Used for experiment/scenario configuration files. Supports the full JSON
// grammar except numeric exotica (NaN/Inf are rejected on serialize).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace grefar {

class JsonValue;

/// JSON object: ordered by key (std::map) for deterministic serialization.
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

/// A JSON value: null, bool, number (double), string, array or object.
class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  /*implicit*/ JsonValue(std::nullptr_t) : data_(nullptr) {}
  /*implicit*/ JsonValue(bool b) : data_(b) {}
  /*implicit*/ JsonValue(double d) : data_(d) {}
  /*implicit*/ JsonValue(int i) : data_(static_cast<double>(i)) {}
  /*implicit*/ JsonValue(std::int64_t i) : data_(static_cast<double>(i)) {}
  /*implicit*/ JsonValue(const char* s) : data_(std::string(s)) {}
  /*implicit*/ JsonValue(std::string s) : data_(std::move(s)) {}
  /*implicit*/ JsonValue(JsonArray a) : data_(std::move(a)) {}
  /*implicit*/ JsonValue(JsonObject o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(data_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(data_); }

  /// Typed accessors; contract-checked (call the matching is_*() first).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object lookup; returns nullptr when missing or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience typed lookups with defaults, for config parsing.
  double number_or(const std::string& key, double fallback) const;
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;

  /// Serializes; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  bool operator==(const JsonValue& other) const { return data_ == other.data_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> data_;
};

/// Parses a JSON document. Errors carry 1-based line/column positions.
Result<JsonValue> parse_json(std::string_view text);

/// Parses a JSON file from disk.
Result<JsonValue> parse_json_file(const std::string& path);

}  // namespace grefar
