// Command-line argument parsing for examples and benchmark harnesses.
//
// Supports `--name value`, `--name=value`, boolean flags `--flag`, and
// automatically generated --help text. Unknown options are an error so typos
// in experiment parameters fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace grefar {

class CliParser {
 public:
  /// `program` and `description` appear in --help output.
  CliParser(std::string program, std::string description);

  /// Registers an option with a default value shown in --help.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Registers a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On `--help` prints usage and returns an Error whose message
  /// is "help" (callers typically exit 0 on it). Unknown options fail.
  Status parse(int argc, const char* const* argv);

  /// Typed getters (after parse). Contract-checked: the option must have been
  /// registered. Numeric getters fail the program on malformed values.
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Comma-separated list of doubles ("0.1,2.5,7.5,20").
  std::vector<double> get_double_list(const std::string& name) const;

  /// Renders the --help text.
  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Option>> options_;  // declaration order
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;

  const Option* find_option(const std::string& name) const;
};

}  // namespace grefar
