// Result<T>: a minimal expected-style return type for operations with
// anticipated failure modes (parsing, file IO). We target C++20, which lacks
// std::expected; this covers the subset the library needs.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace grefar {

/// Error payload for Result<T>: a human-readable message plus optional
/// location context (file/line of the *input* being processed, not source).
struct Error {
  std::string message;

  /// Builds an error with printf-free streaming-style concatenation left to
  /// callers; keep messages actionable ("expected ',' at line 3, col 7").
  static Error make(std::string msg) { return Error{std::move(msg)}; }
};

/// Result<T> holds either a value or an Error. Query with ok(); access the
/// value with value() (contract-checked) or value_or().
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    GREFAR_CHECK_MSG(ok(), "Result::value() on error: " << error_->message);
    return *value_;
  }
  T& value() & {
    GREFAR_CHECK_MSG(ok(), "Result::value() on error: " << error_->message);
    return *value_;
  }
  T&& value() && {
    GREFAR_CHECK_MSG(ok(), "Result::value() on error: " << error_->message);
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const Error& error() const {
    GREFAR_CHECK(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> specialization-equivalent for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  /*implicit*/ Status(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    GREFAR_CHECK(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace grefar
