// Small string helpers shared across modules (parsing, table formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace grefar {

/// Splits `s` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; rejects trailing garbage ("1.5x" fails).
Result<double> parse_double(std::string_view s);

/// Parses a 64-bit signed integer; rejects trailing garbage.
Result<std::int64_t> parse_int(std::string_view s);

/// Formats a double with `precision` digits after the decimal point.
std::string format_fixed(double v, int precision);

/// Left/right-pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(std::string s, std::size_t w);
std::string pad_right(std::string s, std::size_t w);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace grefar
