#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace grefar {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GREFAR_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GREFAR_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  GREFAR_CHECK(sd >= 0.0);
  return mean + sd * normal();
}

double Rng::exponential(double lambda) {
  GREFAR_CHECK(lambda > 0.0);
  return -std::log(1.0 - uniform()) / lambda;
}

std::int64_t Rng::poisson(double lambda) {
  GREFAR_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    double x = std::round(normal(lambda, std::sqrt(lambda)));
    return x < 0.0 ? 0 : static_cast<std::int64_t>(x);
  }
  // Knuth: multiply uniforms until below e^-lambda.
  const double limit = std::exp(-lambda);
  std::int64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

double Rng::pareto(double x_m, double alpha) {
  GREFAR_CHECK(x_m > 0.0 && alpha > 0.0);
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  GREFAR_CHECK(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GREFAR_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  GREFAR_CHECK_MSG(total > 0.0, "weighted_index needs a positive weight");
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: target == total
}

Rng Rng::fork(std::uint64_t stream) const {
  // Derive a child seed by hashing the parent state with the stream id.
  SplitMix64 sm(s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 41) ^
                (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

}  // namespace grefar
