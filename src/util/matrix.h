// Matrix<T>: a small dense row-major 2-D array used throughout the scheduler
// for (data center x job type) decision variables and queue states.
#pragma once

#include <vector>

#include "util/check.h"

namespace grefar {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, value-initialized (zeros for arithmetic T).
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    GREFAR_CHECK_MSG(r < rows_ && c < cols_,
                     "matrix index (" << r << "," << c << ") out of " << rows_
                                      << "x" << cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    GREFAR_CHECK_MSG(r < rows_ && c < cols_,
                     "matrix index (" << r << "," << c << ") out of " << rows_
                                      << "x" << cols_);
    return data_[r * cols_ + c];
  }

  /// Sets every element to `value`.
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  /// Sum over all elements.
  T sum() const {
    T total{};
    for (const auto& x : data_) total += x;
    return total;
  }

  /// Sum over row r / column c.
  T row_sum(std::size_t r) const {
    GREFAR_CHECK(r < rows_);
    T total{};
    for (std::size_t c = 0; c < cols_; ++c) total += data_[r * cols_ + c];
    return total;
  }
  T col_sum(std::size_t c) const {
    GREFAR_CHECK(c < cols_);
    T total{};
    for (std::size_t r = 0; r < rows_; ++r) total += data_[r * cols_ + c];
    return total;
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;

}  // namespace grefar
