// ASCII line-chart renderer. The benchmark harness uses it to print the
// paper's figures directly into the terminal, next to the CSV data that a
// plotting tool could consume.
#pragma once

#include <string>
#include <vector>

namespace grefar {

/// One plotted series: a label (for the legend) and y-values sampled at the
/// shared x positions of the chart.
struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// Renders multiple series as an ASCII chart with y-axis labels and a legend.
/// Each series gets a distinct glyph. Series are sampled/averaged down to the
/// chart width when longer than `width`.
class AsciiChart {
 public:
  AsciiChart(int width = 72, int height = 18) : width_(width), height_(height) {}

  /// Chart title printed above the plot.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Axis labels, purely cosmetic.
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// x-range covered by the series (used only for tick labels).
  void set_x_range(double x0, double x1) {
    x0_ = x0;
    x1_ = x1;
    has_x_range_ = true;
  }

  void add_series(ChartSeries series) { series_.push_back(std::move(series)); }

  /// Renders the chart; empty series produce an explanatory placeholder.
  std::string render() const;

 private:
  int width_;
  int height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  double x0_ = 0.0, x1_ = 0.0;
  bool has_x_range_ = false;
  std::vector<ChartSeries> series_;
};

}  // namespace grefar
