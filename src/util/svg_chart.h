// SVG line-chart writer: publication-grade counterpart of AsciiChart.
//
// The bench binaries print ASCII charts for the terminal and, with
// --svg-dir, also drop standalone .svg files rendered by this class —
// axes, ticks, grid, legend, one colored polyline per series.
#pragma once

#include <string>
#include <vector>

namespace grefar {

class SvgChart {
 public:
  SvgChart(int width = 720, int height = 400) : width_(width), height_(height) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// x-range covered by every series (used for the x axis ticks); defaults
  /// to [0, longest series length).
  void set_x_range(double x0, double x1);

  /// Adds a series; values are sampled at equally-spaced x positions.
  void add_series(std::string label, std::vector<double> values);

  /// Renders a standalone SVG document. Empty charts render a placeholder.
  std::string render() const;

 private:
  struct Series {
    std::string label;
    std::vector<double> values;
  };

  int width_;
  int height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  double x0_ = 0.0, x1_ = 0.0;
  bool has_x_range_ = false;
  std::vector<Series> series_;
};

}  // namespace grefar
