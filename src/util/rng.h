// Deterministic, platform-stable random number generation.
//
// std::mt19937 is portable but the standard *distributions* are not (their
// algorithms are implementation-defined), so every sampler here is
// implemented from first principles: the same seed produces the same stream
// on every platform/compiler. All simulations in this repository are
// reproducible given their seed.
#pragma once

#include <cstdint>
#include <vector>

namespace grefar {

/// SplitMix64: tiny, high-quality 64-bit generator. Used standalone for
/// hashing-style use and to seed Xoshiro256.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Rng: xoshiro256** — fast, high-quality PRNG with portable samplers.
///
/// Samplers implemented here (uniform, normal via Box-Muller, exponential,
/// Poisson, Pareto) are bit-stable across platforms.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal sample (Box-Muller; caches the second variate).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Exponential with rate `lambda` > 0 (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson with mean `lambda` >= 0. Uses Knuth's method for small lambda
  /// and a normal approximation (rounded, clamped at 0) for lambda > 64 —
  /// adequate for workload synthesis and documented in tests.
  std::int64_t poisson(double lambda);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed job sizes).
  double pareto(double x_m, double alpha);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to non-negative
  /// weights; requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Forks an independent, deterministically-derived child generator;
  /// `stream` distinguishes siblings forked from the same parent state.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace grefar
