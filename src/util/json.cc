#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/csv.h"  // read_file

namespace grefar {

bool JsonValue::as_bool() const {
  GREFAR_CHECK(is_bool());
  return std::get<bool>(data_);
}
double JsonValue::as_number() const {
  GREFAR_CHECK(is_number());
  return std::get<double>(data_);
}
const std::string& JsonValue::as_string() const {
  GREFAR_CHECK(is_string());
  return std::get<std::string>(data_);
}
const JsonArray& JsonValue::as_array() const {
  GREFAR_CHECK(is_array());
  return std::get<JsonArray>(data_);
}
const JsonObject& JsonValue::as_object() const {
  GREFAR_CHECK(is_object());
  return std::get<JsonObject>(data_);
}
JsonArray& JsonValue::as_array() {
  GREFAR_CHECK(is_array());
  return std::get<JsonArray>(data_);
}
JsonObject& JsonValue::as_object() {
  GREFAR_CHECK(is_object());
  return std::get<JsonObject>(data_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<JsonObject>(data_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}
std::int64_t JsonValue::int_or(const std::string& key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? static_cast<std::int64_t>(v->as_number())
                                          : fallback;
}
bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}
std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

namespace {

void escape_json_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_json_number(double d, std::string& out) {
  GREFAR_CHECK_MSG(std::isfinite(d), "JSON cannot represent non-finite numbers");
  char buf[32];
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  // Shortest representation that round-trips exactly.
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    format_json_number(as_number(), out);
  } else if (is_string()) {
    escape_json_string(as_string(), out);
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      append_newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      escape_json_string(key, out);
      out += indent < 0 ? ":" : ": ";
      value.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser with line/column error reporting.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    skip_whitespace();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return value;
  }

 private:
  Error fail(const std::string& msg) const {
    return Error::make(msg + " at line " + std::to_string(line_) + ", col " +
                       std::to_string(col_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    for (std::size_t i = 0; i < lit.size(); ++i) advance();
    return true;
  }

  Result<JsonValue> parse_value() {
    if (eof()) return fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<JsonValue> parse_object() {
    advance();  // '{'
    JsonObject obj;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') return fail("expected object key string");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_whitespace();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      advance();
      skip_whitespace();
      auto value = parse_value();
      if (!value.ok()) return value;
      obj[std::move(key).value()] = std::move(value).value();
      skip_whitespace();
      if (eof()) return fail("unterminated object");
      char c = advance();
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array() {
    advance();  // '['
    JsonArray arr;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_whitespace();
      auto value = parse_value();
      if (!value.ok()) return value;
      arr.push_back(std::move(value).value());
      skip_whitespace();
      if (eof()) return fail("unterminated array");
      char c = advance();
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    advance();  // '"'
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        char esc = advance();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape digit");
            }
            // Encode as UTF-8 (basic multilingual plane; surrogate pairs
            // are passed through as-is, which suffices for config files).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Result<JsonValue> parse_number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') advance();
    bool has_digits = false;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      advance();
      has_digits = true;
    }
    if (!eof() && peek() == '.') {
      advance();
      while (!eof() && peek() >= '0' && peek() <= '9') {
        advance();
        has_digits = true;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      bool exp_digits = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        advance();
        exp_digits = true;
      }
      if (!exp_digits) return fail("malformed exponent");
    }
    if (!has_digits) return fail("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::stod(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

Result<JsonValue> parse_json_file(const std::string& path) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return parse_json(content.value());
}

}  // namespace grefar
