// Contract annotations consumed by the grefar-lint clang-tidy module
// (tools/grefar-lint, DESIGN.md §13).
//
// The repo's performance and determinism guarantees rest on contracts that
// cannot be expressed in the type system:
//
//   * GREFAR_HOT_PATH    — the function runs every slot on the steady-state
//     decide/reset/kernel/merge path and must not allocate (DESIGN.md §7:
//     the runtime alloc_regression_test is the dynamic half of this
//     contract; the grefar-hot-path-alloc check is the static half).
//   * GREFAR_DETERMINISTIC — the function participates in a bit-identical
//     reproducibility contract (DESIGN.md §11: decisions identical at any
//     --jobs / intra_slot_jobs; §12: sparse == dense bitwise). It must not
//     read clocks, entropy, thread ids, or accumulate floating-point state
//     in unordered-container iteration order.
//
// Under clang the macros expand to [[clang::annotate("...")]] so the lint
// module can match annotated declarations in the AST; under every other
// compiler they expand to nothing (GCC would warn on the unknown attribute,
// and -Werror builds would break). Either way they have zero effect on
// codegen: `annotate` is metadata-only and Release binaries are unchanged
// (tests/util/annotations_test.cc asserts the expansion contract).
//
// Usage: the macro goes in front of the declaration (and, for out-of-line
// definitions, in front of the definition too — clang-tidy matches the
// definition it sees in the translation unit):
//
//   GREFAR_HOT_PATH void reset(const SlotObservation& obs);
//   GREFAR_HOT_PATH GREFAR_DETERMINISTIC
//   void solve_per_slot_greedy_into(...);
//
// Annotating a new function opts it into the checks; the contracts and the
// annotation discipline for new code are described in DESIGN.md §13.
#pragma once

// Detection is deliberately ad hoc (__has_cpp_attribute probes the clang::
// namespace) rather than #ifdef __clang__ so any frontend that understands
// the attribute — notably clang-tidy itself, which is what actually reads
// these — gets the annotation.
#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define GREFAR_ANNOTATE(text) [[clang::annotate(text)]]
#endif
#endif
#ifndef GREFAR_ANNOTATE
#define GREFAR_ANNOTATE(text)
#endif

/// Steady-state per-slot function: must not allocate. Enforced statically by
/// grefar-hot-path-alloc and dynamically by alloc_regression_test.
#define GREFAR_HOT_PATH GREFAR_ANNOTATE("grefar::hot_path")

/// Bit-identical-reproducibility function: no clocks, no entropy, no thread
/// ids, no FP accumulation over unordered-container iteration. Enforced by
/// grefar-determinism.
#define GREFAR_DETERMINISTIC GREFAR_ANNOTATE("grefar::deterministic")
