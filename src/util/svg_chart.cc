#include "util/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace grefar {

namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                                    "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
constexpr std::size_t kMaxPoints = 1500;  // polyline points per series

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Chooses a "nice" tick step covering `span` with ~n ticks.
double nice_step(double span, int n) {
  double raw = span / std::max(n, 1);
  double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  double residual = raw / magnitude;
  double nice = residual < 1.5 ? 1.0 : residual < 3.5 ? 2.0 : residual < 7.5 ? 5.0 : 10.0;
  return nice * magnitude;
}

}  // namespace

void SvgChart::set_x_range(double x0, double x1) {
  GREFAR_CHECK(x1 >= x0);
  x0_ = x0;
  x1_ = x1;
  has_x_range_ = true;
}

void SvgChart::add_series(std::string label, std::vector<double> values) {
  series_.push_back({std::move(label), std::move(values)});
}

std::string SvgChart::render() const {
  const double W = width_, H = height_;
  std::string svg;
  svg += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(width_) + "\" height=\"" + std::to_string(height_) +
         "\" viewBox=\"0 0 " + std::to_string(width_) + " " +
         std::to_string(height_) + "\" font-family=\"sans-serif\">\n";
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  std::size_t longest = 0;
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  for (const auto& s : series_) {
    longest = std::max(longest, s.values.size());
    for (double v : s.values) {
      if (std::isfinite(v)) {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
  }
  if (series_.empty() || longest == 0 || !std::isfinite(ymin)) {
    svg += "<text x=\"" + format_fixed(W / 2, 0) + "\" y=\"" + format_fixed(H / 2, 0) +
           "\" text-anchor=\"middle\" fill=\"#888\">no data</text>\n</svg>\n";
    return svg;
  }
  if (ymax == ymin) ymax = ymin + 1.0;
  double pad = 0.06 * (ymax - ymin);
  ymin -= pad;
  ymax += pad;
  const double gx0 = has_x_range_ ? x0_ : 0.0;
  const double gx1 = has_x_range_ ? x1_ : static_cast<double>(longest - 1);

  // Plot area.
  const double left = 64, right = W - 16, top = 40, bottom = H - 48;
  auto map_x = [&](double x) {
    return gx1 > gx0 ? left + (x - gx0) / (gx1 - gx0) * (right - left) : left;
  };
  auto map_y = [&](double y) {
    return bottom - (y - ymin) / (ymax - ymin) * (bottom - top);
  };

  if (!title_.empty()) {
    svg += "<text x=\"" + format_fixed(W / 2, 0) +
           "\" y=\"22\" text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">" +
           escape_xml(title_) + "</text>\n";
  }

  // Gridlines + y ticks.
  double ystep = nice_step(ymax - ymin, 5);
  double first_tick = std::ceil(ymin / ystep) * ystep;
  for (double y = first_tick; y <= ymax + 1e-12; y += ystep) {
    double py = map_y(y);
    svg += "<line x1=\"" + format_fixed(left, 1) + "\" y1=\"" + format_fixed(py, 1) +
           "\" x2=\"" + format_fixed(right, 1) + "\" y2=\"" + format_fixed(py, 1) +
           "\" stroke=\"#e0e0e0\"/>\n";
    svg += "<text x=\"" + format_fixed(left - 6, 1) + "\" y=\"" +
           format_fixed(py + 4, 1) +
           "\" text-anchor=\"end\" font-size=\"11\" fill=\"#444\">" +
           format_fixed(y, std::abs(y) < 10 && ystep < 1 ? 2 : ystep < 10 ? 1 : 0) +
           "</text>\n";
  }
  // x ticks.
  double xstep = nice_step(gx1 - gx0, 6);
  for (double x = std::ceil(gx0 / xstep) * xstep; x <= gx1 + 1e-12; x += xstep) {
    double px = map_x(x);
    svg += "<line x1=\"" + format_fixed(px, 1) + "\" y1=\"" + format_fixed(bottom, 1) +
           "\" x2=\"" + format_fixed(px, 1) + "\" y2=\"" + format_fixed(bottom + 4, 1) +
           "\" stroke=\"#444\"/>\n";
    svg += "<text x=\"" + format_fixed(px, 1) + "\" y=\"" +
           format_fixed(bottom + 17, 1) +
           "\" text-anchor=\"middle\" font-size=\"11\" fill=\"#444\">" +
           format_fixed(x, xstep < 1 ? 1 : 0) + "</text>\n";
  }
  // Axes.
  svg += "<line x1=\"" + format_fixed(left, 1) + "\" y1=\"" + format_fixed(top, 1) +
         "\" x2=\"" + format_fixed(left, 1) + "\" y2=\"" + format_fixed(bottom, 1) +
         "\" stroke=\"#222\"/>\n";
  svg += "<line x1=\"" + format_fixed(left, 1) + "\" y1=\"" + format_fixed(bottom, 1) +
         "\" x2=\"" + format_fixed(right, 1) + "\" y2=\"" + format_fixed(bottom, 1) +
         "\" stroke=\"#222\"/>\n";
  if (!x_label_.empty()) {
    svg += "<text x=\"" + format_fixed((left + right) / 2, 1) + "\" y=\"" +
           format_fixed(H - 8, 1) +
           "\" text-anchor=\"middle\" font-size=\"12\" fill=\"#222\">" +
           escape_xml(x_label_) + "</text>\n";
  }
  if (!y_label_.empty()) {
    svg += "<text x=\"14\" y=\"" + format_fixed((top + bottom) / 2, 1) +
           "\" text-anchor=\"middle\" font-size=\"12\" fill=\"#222\" transform=\"rotate(-90 14 " +
           format_fixed((top + bottom) / 2, 1) + ")\">" + escape_xml(y_label_) +
           "</text>\n";
  }

  // Series polylines + legend.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    if (s.values.empty()) continue;
    const std::size_t stride = std::max<std::size_t>(1, s.values.size() / kMaxPoints);
    std::string points;
    for (std::size_t idx = 0; idx < s.values.size(); idx += stride) {
      double v = s.values[idx];
      if (!std::isfinite(v)) continue;
      double x = gx0 + (gx1 - gx0) *
                           (s.values.size() > 1
                                ? static_cast<double>(idx) /
                                      static_cast<double>(s.values.size() - 1)
                                : 0.0);
      points += format_fixed(map_x(x), 1) + "," + format_fixed(map_y(v), 1) + " ";
    }
    const char* color = kPalette[si % kPaletteSize];
    svg += "<polyline fill=\"none\" stroke=\"" + std::string(color) +
           "\" stroke-width=\"1.8\" points=\"" + points + "\"/>\n";
    double ly = top + 6 + 16.0 * static_cast<double>(si);
    svg += "<rect x=\"" + format_fixed(left + 10, 1) + "\" y=\"" +
           format_fixed(ly - 8, 1) + "\" width=\"14\" height=\"4\" fill=\"" + color +
           "\"/>\n";
    svg += "<text x=\"" + format_fixed(left + 30, 1) + "\" y=\"" + format_fixed(ly, 1) +
           "\" font-size=\"11\" fill=\"#222\">" + escape_xml(s.label) + "</text>\n";
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace grefar
