#include "serve/staged_feed.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

StagedTraceFeed::StagedTraceFeed(std::size_t num_types, std::size_t num_dcs,
                                 bool valued) {
  state_ = std::make_shared<State>();
  state_->num_types = num_types;
  state_->num_dcs = num_dcs;
  state_->valued = valued;
  state_->arrivals.assign(num_types, 0);
  state_->prices.assign(num_dcs, 0.0);
  state_->max_arrivals.assign(num_types, 0);
  arrivals_ = std::make_shared<const StagedArrivals>(state_);
  prices_ = std::make_shared<const StagedPrices>(state_);
}

void StagedTraceFeed::stage(std::int64_t slot,
                            const std::vector<std::int64_t>& arrivals,
                            const std::vector<double>& prices) {
  GREFAR_CHECK_MSG(!state_->valued,
                   "a valued feed must be staged with stage_valued()");
  GREFAR_CHECK_MSG(slot > state_->slot,
                   "stage(" << slot << ") after slot " << state_->slot);
  GREFAR_CHECK(arrivals.size() == state_->num_types);
  GREFAR_CHECK(prices.size() == state_->num_dcs);
  state_->slot = slot;
  std::copy(arrivals.begin(), arrivals.end(), state_->arrivals.begin());
  std::copy(prices.begin(), prices.end(), state_->prices.begin());
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    state_->max_arrivals[j] = std::max(state_->max_arrivals[j], arrivals[j]);
  }
}

void StagedTraceFeed::stage_valued(std::int64_t slot,
                                   const std::vector<ArrivalBatch>& batches,
                                   const std::vector<double>& prices) {
  GREFAR_CHECK_MSG(state_->valued,
                   "a counts feed must be staged with stage()");
  GREFAR_CHECK_MSG(slot > state_->slot,
                   "stage(" << slot << ") after slot " << state_->slot);
  GREFAR_CHECK(prices.size() == state_->num_dcs);
  state_->slot = slot;
  // Amortized: assign reuses capacity once the batch high-water is warm.
  state_->batches.assign(batches.begin(), batches.end());  // NOLINT(grefar-hot-path-alloc)
  std::copy(prices.begin(), prices.end(), state_->prices.begin());
  std::fill(state_->arrivals.begin(), state_->arrivals.end(), 0);
  for (const ArrivalBatch& b : batches) {
    GREFAR_CHECK(b.type < state_->num_types);
    GREFAR_CHECK(b.count >= 0);
    state_->arrivals[b.type] += b.count;
  }
  for (std::size_t j = 0; j < state_->arrivals.size(); ++j) {
    state_->max_arrivals[j] =
        std::max(state_->max_arrivals[j], state_->arrivals[j]);
  }
}

std::int64_t StagedTraceFeed::staged_slot() const { return state_->slot; }

std::vector<std::int64_t> StagedTraceFeed::StagedArrivals::arrivals(
    std::int64_t t) const {
  GREFAR_CHECK_MSG(t == state_->slot, "staged feed asked for slot "
                                          << t << " but slot " << state_->slot
                                          << " is staged");
  return state_->arrivals;
}

void StagedTraceFeed::StagedArrivals::arrivals_into(
    std::int64_t t, std::vector<std::int64_t>& out) const {
  GREFAR_CHECK_MSG(t == state_->slot, "staged feed asked for slot "
                                          << t << " but slot " << state_->slot
                                          << " is staged");
  out.assign(state_->arrivals.begin(), state_->arrivals.end());
}

void StagedTraceFeed::StagedArrivals::valued_arrivals_into(
    std::int64_t t, std::vector<ArrivalBatch>& out) const {
  GREFAR_CHECK_MSG(state_->valued,
                   "valued_arrivals_into on a counts-mode staged feed");
  GREFAR_CHECK_MSG(t == state_->slot, "staged feed asked for slot "
                                          << t << " but slot " << state_->slot
                                          << " is staged");
  out.assign(state_->batches.begin(), state_->batches.end());
}

std::int64_t StagedTraceFeed::StagedArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(static_cast<std::size_t>(j) < state_->num_types);
  return state_->max_arrivals[static_cast<std::size_t>(j)];
}

double StagedTraceFeed::StagedPrices::price(std::size_t dc,
                                            std::int64_t t) const {
  GREFAR_CHECK_MSG(t == state_->slot, "staged feed asked for slot "
                                          << t << " but slot " << state_->slot
                                          << " is staged");
  GREFAR_CHECK(dc < state_->num_dcs);
  return state_->prices[dc];
}

}  // namespace grefar
