// StagedTraceFeed: adapts one staged slot of streamed trace data to the
// ArrivalProcess / PriceModel interfaces the engine pulls from.
//
// The batch engine asks its models for slot t while solving slot t; the
// service loop knows only the current slot's rows (the whole point of
// streaming ingestion). The feed holds exactly one slot of arrivals and
// prices, restaged by the service loop before every engine step; the
// adapters contract-check that the engine only ever asks for the staged
// slot, so a lookahead scheduler wired into serve mode fails loudly instead
// of silently reading stale data.
//
// Single-threaded by design: stage() and the engine's reads happen on the
// solve thread (the ingest thread touches only its own SlotInput buffers).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "price/price_model.h"
#include "workload/arrival_process.h"

namespace grefar {

class StagedTraceFeed {
 public:
  /// `valued` selects batch-staging mode: the arrival adapter then reports
  /// has_valued_arrivals() and serves annotated batches (stage_valued below)
  /// — fixed at construction because the engine samples the flag once.
  StagedTraceFeed(std::size_t num_types, std::size_t num_dcs,
                  bool valued = false);

  /// Copies one slot of trace data into the feed (storage reused; no
  /// allocation once capacities are warm). `arrivals` sized num_types,
  /// `prices` sized num_dcs; slots must be staged in increasing order.
  /// Counts mode only (contract-checked).
  void stage(std::int64_t slot, const std::vector<std::int64_t>& arrivals,
             const std::vector<double>& prices);

  /// Batch-staging variant (valued mode only): stages annotated arrival
  /// batches; the dense per-type counts are derived here so both adapter
  /// views stay consistent.
  void stage_valued(std::int64_t slot, const std::vector<ArrivalBatch>& batches,
                    const std::vector<double>& prices);

  std::int64_t staged_slot() const;

  /// Engine-facing adapters; they share this feed's state and stay valid for
  /// the feed's lifetime (both sides hold the state via shared_ptr).
  std::shared_ptr<const ArrivalProcess> arrival_process() const {
    return arrivals_;
  }
  std::shared_ptr<const PriceModel> price_model() const { return prices_; }

 private:
  struct State {
    std::int64_t slot = -1;  // nothing staged yet
    std::vector<std::int64_t> arrivals;
    std::vector<ArrivalBatch> batches;  // valued mode: the staged slot's rows
    std::vector<double> prices;
    std::vector<std::int64_t> max_arrivals;  // running per-type high-water
    std::size_t num_types = 0;
    std::size_t num_dcs = 0;
    bool valued = false;
  };

  class StagedArrivals final : public ArrivalProcess {
   public:
    explicit StagedArrivals(std::shared_ptr<const State> state)
        : state_(std::move(state)) {}
    std::vector<std::int64_t> arrivals(std::int64_t t) const override;
    void arrivals_into(std::int64_t t,
                       std::vector<std::int64_t>& out) const override;
    std::size_t num_job_types() const override { return state_->num_types; }
    /// Running high-water of staged counts (a_j^max is unknowable for an
    /// open-ended stream; nothing on the serve path consumes this bound).
    std::int64_t max_arrivals(JobTypeId j) const override;
    bool has_valued_arrivals() const override { return state_->valued; }
    void valued_arrivals_into(std::int64_t t,
                              std::vector<ArrivalBatch>& out) const override;

   private:
    std::shared_ptr<const State> state_;
  };

  class StagedPrices final : public PriceModel {
   public:
    explicit StagedPrices(std::shared_ptr<const State> state)
        : state_(std::move(state)) {}
    double price(std::size_t dc, std::int64_t t) const override;
    std::size_t num_data_centers() const override { return state_->num_dcs; }

   private:
    std::shared_ptr<const State> state_;
  };

  std::shared_ptr<State> state_;
  std::shared_ptr<const StagedArrivals> arrivals_;
  std::shared_ptr<const StagedPrices> prices_;
};

}  // namespace grefar
