// BoundedSpscQueue<T>: a fixed-capacity single-producer/single-consumer
// queue with blocking backpressure, connecting the service-loop pipeline
// stages (serve/service_loop.h).
//
// Deliberately mutex+condvar rather than lock-free: the pipeline moves a few
// pointers per simulation slot (microseconds of solve work each), so queue
// overhead is noise, and the simple implementation is trivially TSan-clean.
// The ring storage is sized once at construction — push/pop never allocate.
//
// Stats (read them after the producer and consumer have stopped, or accept a
// momentary snapshot): producer_blocks / consumer_waits count the number of
// times a side had to wait (not wait iterations), high_water is the peak
// occupancy — together they show which pipeline stage is the bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.h"

namespace grefar {

template <typename T>
class BoundedSpscQueue {
 public:
  struct Stats {
    std::uint64_t producer_blocks = 0;  // push() calls that had to wait
    std::uint64_t consumer_waits = 0;   // pop() calls that had to wait
    std::size_t high_water = 0;         // peak queue occupancy
  };

  explicit BoundedSpscQueue(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    GREFAR_CHECK(capacity > 0);
  }

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  /// Blocks while full; returns false (dropping `value`) once closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == capacity_ && !closed_) {
      ++stats_.producer_blocks;
      not_full_.wait(lock, [this] { return size_ < capacity_ || closed_; });
    }
    if (closed_) return false;
    slots_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
    if (size_ > stats_.high_water) stats_.high_water = size_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns false once the queue is closed *and*
  /// drained (close() lets already-queued items flow out first).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0 && !closed_) {
      ++stats_.consumer_waits;
      not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    }
    if (size_ == 0) return false;  // closed and drained
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.notify_one();
    return true;
  }

  /// After close(): push() fails immediately, pop() drains then fails.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;  // ring buffer, sized once
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace grefar
