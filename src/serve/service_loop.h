// ServiceLoop: the long-lived serve mode — a three-stage pipeline that
// ingests slot t+1 while the engine solves slot t while the flush
// inspectors (TraceSink tracer, invariant auditor, ...) consume slot t-1.
//
//   [ingest thread]  --input queue-->  [solve: caller thread]
//        StreamingJobTraceSource            StagedTraceFeed + engine.step()
//        StreamingPriceTraceSource              |
//   [flush thread]  <--flush queue--        copied SlotRecord
//        flush inspectors, in attach order
//
// Stages are connected by bounded SPSC queues (serve/spsc_queue.h) with
// blocking backpressure, and slot buffers are pooled and recycled through
// the queues, so steady-state memory is O(queue_depth) regardless of trace
// length and the hot loop allocates nothing once capacities are warm.
//
// Determinism (DESIGN.md §11 contract, same argument as intra-slot
// sharding): the engine only ever steps on the caller thread, in slot
// order, on inputs that are pure functions of the trace bytes — the worker
// threads move bytes and copies around but never touch engine state. So
// decisions, energy and fairness series are bit-identical to a batch replay
// of the materialized trace at any queue depth, pipelined or serial; the
// flush queue is FIFO, so inspectors also observe slots in order. Counters
// follow the TaskRegistries ordered-merge discipline.
//
// Slot latency (solve-stage residence: staging + engine step + flush
// handoff, excluding time blocked waiting for input) is tracked with
// P2Quantile estimators and reported as p50/p99 — the serve-mode SLO metric.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "stats/p2_quantile.h"
#include "workload/admission.h"
#include "trace/stream_source.h"
#include "util/annotations.h"
#include "util/result.h"

namespace grefar {

class StagedTraceFeed;

struct ServiceLoopOptions {
  /// Capacity of each inter-stage queue (>= 1). Total buffered slots are
  /// O(queue_depth); deeper queues absorb burstier stage-time variance.
  std::size_t queue_depth = 4;
  /// False runs the same three stages serially on the caller thread —
  /// identical results, no overlap — the baseline bench/serve_latency
  /// compares against.
  bool pipelined = true;
  /// Stop after this many slots (0 = run to the end of the traces; the run
  /// ends at whichever of the two traces ends first).
  std::int64_t max_slots = 0;
  /// Optional admission policy screening each staged arrival batch before
  /// it enters the central queues (nullptr = admit everything). Consulted
  /// by the engine on the solve thread, so stateful policies need no
  /// synchronization.
  std::shared_ptr<AdmissionPolicy> admission;
  EngineOptions engine;
};

struct ServiceStats {
  std::int64_t slots = 0;
  double wall_seconds = 0.0;
  double slots_per_second = 0.0;
  /// Solve-stage residence per slot, milliseconds (NaN when no slots ran).
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Times the solve stage waited for ingest (input queue empty).
  std::uint64_t ingest_stalls = 0;
  /// Times any stage blocked on a full queue or an exhausted buffer pool.
  std::uint64_t backpressure_blocks = 0;
  std::size_t input_queue_high_water = 0;
  std::size_t flush_queue_high_water = 0;
};

class ServiceLoop {
 public:
  /// Takes ownership of the streaming sources. The job source must have
  /// config->job_types.size() types and the price source
  /// config->data_centers.size() DCs.
  ServiceLoop(std::shared_ptr<const ClusterConfig> config,
              std::shared_ptr<const AvailabilityModel> availability,
              std::shared_ptr<Scheduler> scheduler,
              std::unique_ptr<StreamingJobTraceSource> jobs,
              std::unique_ptr<StreamingPriceTraceSource> prices,
              ServiceLoopOptions options = {});
  ~ServiceLoop();

  ServiceLoop(const ServiceLoop&) = delete;
  ServiceLoop& operator=(const ServiceLoop&) = delete;

  /// Registers an inspector to run in the flush stage, in registration
  /// order, over a copied SlotRecord (safe off-thread: no pointers into
  /// engine scratch). Call before run(). An inspector throw (e.g. the
  /// auditor's strict mode) surfaces as run()'s error.
  void add_flush_inspector(std::shared_ptr<SlotInspector> inspector);

  /// Runs the loop to completion (trace end, max_slots, or first error).
  /// Single-shot: a ServiceLoop instance runs once.
  Result<ServiceStats> run();

  /// The engine's accumulated metrics (valid after run(); bit-identical to
  /// a batch replay of the same trace).
  const SimMetrics& metrics() const;
  std::int64_t slots_processed() const;

 private:
  struct SlotInput {
    std::int64_t slot = 0;
    std::vector<std::int64_t> arrivals;    // counts mode (v1 traces)
    std::vector<ArrivalBatch> batches;     // valued mode (v2 traces)
    std::vector<double> prices;
  };
  struct FlushCopy;          // deep copy of one SlotRecord (service_loop.cc)
  class PipelineInspector;   // engine hook that fills FlushCopy buffers
  struct Pipeline;           // queues + pools + worker state (pipelined mode)

  /// Pulls the next slot from both sources into `in`. Returns false at
  /// clean end of stream.
  Result<bool> ingest_one(SlotInput& in);

  /// Stages `in` and steps the engine exactly once. The flush handoff
  /// happens inside the step via the attached PipelineInspector.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void solve_slot(const SlotInput& in);

  /// Runs the flush inspectors over one copied record; returns their error
  /// (a throwing inspector is converted, not propagated).
  Status flush_record(const FlushCopy& copy);

  Result<ServiceStats> run_serial();
  Result<ServiceStats> run_pipelined();

  std::shared_ptr<const ClusterConfig> config_;
  std::unique_ptr<StreamingJobTraceSource> jobs_;
  std::unique_ptr<StreamingPriceTraceSource> prices_;
  ServiceLoopOptions options_;
  /// Fixed at construction from the job trace's detected schema: valued
  /// traces flow through the feed as annotated batches (v2), plain traces
  /// as dense counts (v1) — so v1 serve runs stay byte-identical to before.
  bool valued_ = false;
  std::unique_ptr<StagedTraceFeed> feed_;
  std::unique_ptr<SimulationEngine> engine_;
  std::shared_ptr<PipelineInspector> inspector_;
  std::vector<std::shared_ptr<SlotInspector>> flush_inspectors_;
  P2Quantile latency_p50_{0.50};
  P2Quantile latency_p99_{0.99};
  double latency_max_ms_ = 0.0;
  std::int64_t slots_ = 0;
  bool ran_ = false;
};

}  // namespace grefar
