#include "serve/service_loop.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/counters.h"
#include "obs/task_registries.h"
#include "parallel/thread_pool.h"
#include "serve/spsc_queue.h"
#include "serve/staged_feed.h"
#include "util/check.h"

namespace grefar {

// Deep copy of one SlotRecord: every pointer field lands in owned storage
// (copy-assignment reuses capacity, so recycled copies stop allocating once
// warm). The flush stage reads these off-thread after the engine has moved
// on to later slots.
struct ServiceLoop::FlushCopy {
  std::int64_t slot = 0;
  SlotObservation obs;
  SlotAction action;
  MatrixD routed;
  MatrixD served_work;
  MatrixD dc_after;
  std::vector<double> dc_capacity;
  std::vector<double> dc_energy_cost;
  std::vector<double> dc_completions;
  std::vector<double> dc_delay_sum;
  std::vector<double> account_work;
  std::vector<double> central_after;
  double fairness = 0.0;
  std::vector<std::int64_t> arrivals;
  std::vector<std::int64_t> offered;
  bool has_offered = false;
  bool admission_active = false;
  double admitted_value = 0.0;
  double rejected_value = 0.0;
  double realized_value = 0.0;
  double decay_loss = 0.0;
  double abandoned_jobs = 0.0;
  double abandoned_work = 0.0;
  double abandoned_value = 0.0;
  double queued_value_after = 0.0;
  std::int64_t deadline_violations = 0;
  TraceScope scope;
  bool has_scope = false;

  void copy_from(const SlotRecord& r) {
    GREFAR_CHECK(r.obs != nullptr && r.action != nullptr);
    slot = r.slot;
    obs = *r.obs;
    action = *r.action;
    routed = *r.routed;
    served_work = *r.served_work;
    dc_after = *r.dc_after;
    dc_capacity = *r.dc_capacity;
    dc_energy_cost = *r.dc_energy_cost;
    dc_completions = *r.dc_completions;
    dc_delay_sum = *r.dc_delay_sum;
    account_work = *r.account_work;
    central_after = *r.central_after;
    fairness = r.fairness;
    arrivals = *r.arrivals;
    has_offered = r.offered != nullptr;
    if (has_offered) {
      offered = *r.offered;
    } else {
      offered.clear();
    }
    admission_active = r.admission_active;
    admitted_value = r.admitted_value;
    rejected_value = r.rejected_value;
    realized_value = r.realized_value;
    decay_loss = r.decay_loss;
    abandoned_jobs = r.abandoned_jobs;
    abandoned_work = r.abandoned_work;
    abandoned_value = r.abandoned_value;
    queued_value_after = r.queued_value_after;
    deadline_violations = r.deadline_violations;
    has_scope = r.scope != nullptr;
    if (has_scope) {
      scope = *r.scope;
    } else {
      scope.clear();
    }
  }

  /// A SlotRecord view over this copy's storage (valid while `this` lives).
  SlotRecord record() const {
    SlotRecord rec;
    rec.slot = slot;
    rec.obs = &obs;
    rec.action = &action;
    rec.routed = &routed;
    rec.served_work = &served_work;
    rec.dc_capacity = &dc_capacity;
    rec.dc_energy_cost = &dc_energy_cost;
    rec.dc_completions = &dc_completions;
    rec.dc_delay_sum = &dc_delay_sum;
    rec.account_work = &account_work;
    rec.fairness = fairness;
    rec.arrivals = &arrivals;
    rec.central_after = &central_after;
    rec.dc_after = &dc_after;
    rec.scope = has_scope ? &scope : nullptr;
    rec.offered = has_offered ? &offered : nullptr;
    rec.admission_active = admission_active;
    rec.admitted_value = admitted_value;
    rec.rejected_value = rejected_value;
    rec.realized_value = realized_value;
    rec.decay_loss = decay_loss;
    rec.abandoned_jobs = abandoned_jobs;
    rec.abandoned_work = abandoned_work;
    rec.abandoned_value = abandoned_value;
    rec.queued_value_after = queued_value_after;
    rec.deadline_violations = deadline_violations;
    return rec;
  }
};

// The engine-side hook: copies each SlotRecord into a pooled FlushCopy and
// hands it downstream. acquire/submit are mode-specific (queue ops when
// pipelined, a single reused buffer when serial) — the copy itself runs
// synchronously inside engine.step() on the solve thread either way, which
// is what makes the off-thread flush safe.
class ServiceLoop::PipelineInspector final : public SlotInspector {
 public:
  std::function<FlushCopy*()> acquire;
  std::function<void(FlushCopy*)> submit;

  void inspect(const SlotRecord& record) override {
    FlushCopy* copy = acquire();
    GREFAR_CHECK_MSG(copy != nullptr, "serve flush buffer pool closed");
    copy->copy_from(record);
    submit(copy);
  }
};

ServiceLoop::ServiceLoop(std::shared_ptr<const ClusterConfig> config,
                         std::shared_ptr<const AvailabilityModel> availability,
                         std::shared_ptr<Scheduler> scheduler,
                         std::unique_ptr<StreamingJobTraceSource> jobs,
                         std::unique_ptr<StreamingPriceTraceSource> prices,
                         ServiceLoopOptions options)
    : config_(std::move(config)),
      jobs_(std::move(jobs)),
      prices_(std::move(prices)),
      options_(options) {
  GREFAR_CHECK(config_ != nullptr);
  GREFAR_CHECK(jobs_ != nullptr && prices_ != nullptr);
  GREFAR_CHECK(options_.queue_depth >= 1);
  GREFAR_CHECK(options_.max_slots >= 0);
  GREFAR_CHECK_MSG(jobs_->num_types() == config_->job_types.size(),
                   "job trace has " << jobs_->num_types()
                                    << " types, config expects "
                                    << config_->job_types.size());
  GREFAR_CHECK_MSG(
      prices_->num_data_centers() == config_->data_centers.size(),
      "price trace has " << prices_->num_data_centers()
                         << " DCs, config expects "
                         << config_->data_centers.size());
  // The feed's valued flag must match the trace schema at engine
  // construction — the engine samples has_valued_arrivals() once. Plain v1
  // traces keep the counts path, so their serve runs stay byte-identical.
  valued_ = jobs_->valued();
  feed_ = std::make_unique<StagedTraceFeed>(config_->job_types.size(),
                                            config_->data_centers.size(),
                                            valued_);
  inspector_ = std::make_shared<PipelineInspector>();
  engine_ = std::make_unique<SimulationEngine>(
      config_, feed_->price_model(), std::move(availability),
      feed_->arrival_process(), std::move(scheduler), options_.engine);
  if (options_.admission != nullptr) {
    engine_->set_admission_policy(options_.admission);
  }
  engine_->set_inspector(inspector_);
}

ServiceLoop::~ServiceLoop() = default;

void ServiceLoop::add_flush_inspector(std::shared_ptr<SlotInspector> inspector) {
  GREFAR_CHECK(!ran_);
  GREFAR_CHECK(inspector != nullptr);
  flush_inspectors_.push_back(std::move(inspector));
}

const SimMetrics& ServiceLoop::metrics() const { return engine_->metrics(); }

std::int64_t ServiceLoop::slots_processed() const { return slots_; }

Result<bool> ServiceLoop::ingest_one(SlotInput& in) {
  in.slot = jobs_->next_slot();
  auto more_jobs = valued_ ? jobs_->next_slot_batches_into(in.batches)
                           : jobs_->next_slot_into(in.arrivals);
  if (!more_jobs.ok()) return more_jobs.error();
  if (!more_jobs.value()) return false;
  auto more_prices = prices_->next_slot_into(in.prices);
  if (!more_prices.ok()) return more_prices.error();
  // The run covers min(job slots, price slots): a price trace shorter than
  // the job trace ends the run cleanly rather than inventing prices.
  if (!more_prices.value()) return false;
  return true;
}

GREFAR_HOT_PATH GREFAR_DETERMINISTIC
void ServiceLoop::solve_slot(const SlotInput& in) {
  if (valued_) {
    feed_->stage_valued(in.slot, in.batches, in.prices);
  } else {
    feed_->stage(in.slot, in.arrivals, in.prices);
  }
  engine_->step();
}

Status ServiceLoop::flush_record(const FlushCopy& copy) {
  const SlotRecord rec = copy.record();
  for (const auto& inspector : flush_inspectors_) {
    try {
      inspector->inspect(rec);
    } catch (const std::exception& e) {
      return Error::make(std::string("flush inspector failed at slot ") +
                         std::to_string(copy.slot) + ": " + e.what());
    }
  }
  return {};
}

Result<ServiceStats> ServiceLoop::run() {
  GREFAR_CHECK_MSG(!ran_, "ServiceLoop::run() is single-shot");
  ran_ = true;
  return options_.pipelined ? run_pipelined() : run_serial();
}

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Result<ServiceStats> ServiceLoop::run_serial() {
  SlotInput in;
  FlushCopy copy;
  FlushCopy* pending = nullptr;
  inspector_->acquire = [&copy]() { return &copy; };
  inspector_->submit = [&pending](FlushCopy* c) { pending = c; };

  const auto wall_start = std::chrono::steady_clock::now();
  while (options_.max_slots == 0 || slots_ < options_.max_slots) {
    auto more = ingest_one(in);
    if (!more.ok()) return more.error();
    if (!more.value()) break;
    const auto t0 = std::chrono::steady_clock::now();
    solve_slot(in);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = elapsed_ms(t0, t1);
    latency_p50_.add(ms);
    latency_p99_.add(ms);
    if (ms > latency_max_ms_) latency_max_ms_ = ms;
    ++slots_;
    if (pending != nullptr) {
      Status st = flush_record(*pending);
      pending = nullptr;
      if (!st.ok()) return st.error();
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  ServiceStats stats;
  stats.slots = slots_;
  stats.wall_seconds = elapsed_ms(wall_start, wall_end) / 1e3;
  stats.slots_per_second =
      stats.wall_seconds > 0.0 ? static_cast<double>(slots_) / stats.wall_seconds
                               : 0.0;
  stats.latency_p50_ms = latency_p50_.value();
  stats.latency_p99_ms = latency_p99_.value();
  stats.latency_max_ms = latency_max_ms_;
  obs::count("serve.slots", static_cast<std::uint64_t>(slots_));
  return stats;
}

Result<ServiceStats> ServiceLoop::run_pipelined() {
  const std::size_t depth = options_.queue_depth;
  const std::size_t pool_size = depth + 2;  // one in flight at each stage

  std::vector<std::unique_ptr<SlotInput>> input_pool;
  std::vector<std::unique_ptr<FlushCopy>> flush_pool;
  BoundedSpscQueue<SlotInput*> input_free(pool_size);
  BoundedSpscQueue<SlotInput*> input_ready(depth);
  BoundedSpscQueue<FlushCopy*> flush_free(pool_size);
  BoundedSpscQueue<FlushCopy*> flush_ready(depth);
  for (std::size_t i = 0; i < pool_size; ++i) {
    input_pool.push_back(std::make_unique<SlotInput>());
    flush_pool.push_back(std::make_unique<FlushCopy>());
    input_free.push(input_pool.back().get());
    flush_free.push(flush_pool.back().get());
  }

  // Solve thread's flush handoff: acquire a recycled copy (blocking on the
  // flush stage = backpressure), fill it inside engine.step(), queue it.
  inspector_->acquire = [&flush_free]() -> FlushCopy* {
    FlushCopy* c = nullptr;
    return flush_free.pop(c) ? c : nullptr;
  };
  inspector_->submit = [&flush_ready](FlushCopy* c) { flush_ready.push(c); };

  std::mutex error_mutex;
  std::optional<Error> ingest_error;
  std::optional<Error> flush_error;
  std::atomic<bool> flush_failed{false};

  obs::TaskRegistries regs(2);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(2);

    pool.submit([&, this] {
      obs::CountersScope counters(regs.counters(0));
      SlotInput* in = nullptr;
      while (input_free.pop(in)) {
        auto more = ingest_one(*in);
        if (!more.ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          ingest_error = more.error();
          break;
        }
        if (!more.value()) break;
        if (!input_ready.push(in)) break;
      }
      input_ready.close();
    });

    pool.submit([&, this] {
      obs::CountersScope counters(regs.counters(1));
      FlushCopy* copy = nullptr;
      while (flush_ready.pop(copy)) {
        if (!flush_failed.load(std::memory_order_relaxed)) {
          Status st = flush_record(*copy);
          if (!st.ok()) {
            {
              std::lock_guard<std::mutex> lock(error_mutex);
              flush_error = st.error();
            }
            flush_failed.store(true, std::memory_order_relaxed);
          }
        }
        flush_free.push(copy);
      }
    });

    while (options_.max_slots == 0 || slots_ < options_.max_slots) {
      if (flush_failed.load(std::memory_order_relaxed)) break;
      SlotInput* in = nullptr;
      if (!input_ready.pop(in)) break;  // ingest done (or failed)
      const auto t0 = std::chrono::steady_clock::now();
      solve_slot(*in);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = elapsed_ms(t0, t1);
      latency_p50_.add(ms);
      latency_p99_.add(ms);
      if (ms > latency_max_ms_) latency_max_ms_ = ms;
      ++slots_;
      input_free.push(in);
    }

    // Shutdown: unblock the ingest thread (waiting on a free input or a
    // full ready queue) and let the flush thread drain what is queued.
    input_free.close();
    input_ready.close();
    flush_ready.close();
    pool.wait_idle();
  }  // ThreadPool joins
  const auto wall_end = std::chrono::steady_clock::now();
  regs.merge_ordered();

  {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (ingest_error.has_value()) return *ingest_error;
    if (flush_error.has_value()) return *flush_error;
  }

  ServiceStats stats;
  stats.slots = slots_;
  stats.wall_seconds = elapsed_ms(wall_start, wall_end) / 1e3;
  stats.slots_per_second =
      stats.wall_seconds > 0.0 ? static_cast<double>(slots_) / stats.wall_seconds
                               : 0.0;
  stats.latency_p50_ms = latency_p50_.value();
  stats.latency_p99_ms = latency_p99_.value();
  stats.latency_max_ms = latency_max_ms_;
  stats.ingest_stalls = input_ready.stats().consumer_waits;
  stats.backpressure_blocks =
      input_ready.stats().producer_blocks + flush_ready.stats().producer_blocks +
      flush_free.stats().consumer_waits + input_free.stats().consumer_waits;
  stats.input_queue_high_water = input_ready.stats().high_water;
  stats.flush_queue_high_water = flush_ready.stats().high_water;
  obs::count("serve.slots", static_cast<std::uint64_t>(slots_));
  obs::count("serve.ingest_stalls", stats.ingest_stalls);
  obs::count("serve.backpressure_blocks", stats.backpressure_blocks);
  obs::gauge_max("serve.input_queue_high_water",
                 static_cast<double>(stats.input_queue_high_water));
  obs::gauge_max("serve.flush_queue_high_water",
                 static_cast<double>(stats.flush_queue_high_water));
  return stats;
}

}  // namespace grefar
