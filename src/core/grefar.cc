#include "core/grefar.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/counters.h"
#include "obs/trace_scope.h"
#include "util/check.h"
#include "util/strings.h"

namespace grefar {

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params)
    : GreFarScheduler(std::make_shared<const ClusterConfig>(std::move(config)),
                      params) {}

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params,
                                 PerSlotSolver solver)
    : GreFarScheduler(std::make_shared<const ClusterConfig>(std::move(config)),
                      params, solver) {}

GreFarScheduler::GreFarScheduler(std::shared_ptr<const ClusterConfig> config,
                                 GreFarParams params)
    : GreFarScheduler(std::move(config), params,
                      params.beta == 0.0 ? PerSlotSolver::kGreedy
                                         : PerSlotSolver::kProjectedGradient) {}

GreFarScheduler::GreFarScheduler(std::shared_ptr<const ClusterConfig> config,
                                 GreFarParams params, PerSlotSolver solver)
    : config_(std::move(config)), params_(params), solver_(solver) {
  GREFAR_CHECK_MSG(config_ != nullptr, "GreFarScheduler needs a cluster config");
  config_->validate();
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK_MSG(!(params_.beta > 0.0 &&
                     (solver_ == PerSlotSolver::kGreedy || solver_ == PerSlotSolver::kLp)),
                   "greedy/lp per-slot solvers ignore the fairness term; "
                   "use Frank-Wolfe or PGD when beta > 0");
  if (params_.intra_slot_jobs > 1) {
    intra_exec_ = std::make_unique<IntraSlotExecutor>(params_.intra_slot_jobs);
  }
}

void GreFarScheduler::begin_run(const GreFarParams& params, PerSlotSolver solver,
                                bool keep_warm) {
  GREFAR_CHECK(params.V >= 0.0);
  GREFAR_CHECK(params.beta >= 0.0);
  GREFAR_CHECK_MSG(!(params.beta > 0.0 &&
                     (solver == PerSlotSolver::kGreedy || solver == PerSlotSolver::kLp)),
                   "greedy/lp per-slot solvers ignore the fairness term; "
                   "use Frank-Wolfe or PGD when beta > 0");
  if (params.intra_slot_jobs != params_.intra_slot_jobs) {
    intra_exec_ = params.intra_slot_jobs > 1
                      ? std::make_unique<IntraSlotExecutor>(params.intra_slot_jobs)
                      : nullptr;
  }
  params_ = params;
  solver_ = solver;
  if (problem_.has_value()) problem_->rebind_params(params_);

  // Cross-slot sparse-action bookkeeping covered a matrix from the previous
  // leg; the next decide must start from the unknown-invariant (full-clear)
  // state a fresh scheduler would.
  sparse_route_data_ = nullptr;
  sparse_proc_data_ = nullptr;
  routed_obs_sparse_valid_ = false;
  prev_active_.clear();

  if (keep_warm) {
    if (solver_scratch_.prev_valid || solver_scratch_.lp_basis_valid) {
      obs::count("sweep.warm_start_carry");
    }
    solver_scratch_.lp_warm_enabled = solver_ == PerSlotSolver::kLp;
  } else {
    solver_scratch_.prev_valid = false;
    solver_scratch_.lp_warm_enabled = false;
    solver_scratch_.lp_basis_valid = false;
    // Cold leg start: drop the content-keyed per-DC caches so a reused
    // scheduler sorts demands and rebuilds pieces exactly where a fresh one
    // would. The caches never change decisions (they are keyed on the raw
    // rows), but carrying them across legs would make the per_slot.*
    // efficiency counters depend on which arena a leg landed on — and the
    // leg→arena mapping under the dynamic ticket scheduler is not
    // deterministic.
    for (auto& key : solver_scratch_.cached_qv) key.clear();
    for (auto& key : solver_scratch_.cached_avail) key.clear();
    solver_scratch_.cache_compact = false;
    solver_scratch_.cache_types.clear();
  }
}

std::string GreFarScheduler::name() const {
  return "GreFar(V=" + format_fixed(params_.V, 2) +
         ", beta=" + format_fixed(params_.beta, 1) + ")";
}

SlotAction GreFarScheduler::decide(const SlotObservation& obs) {
  SlotAction action;
  decide_into(obs, action);
  return action;
}

void GreFarScheduler::decide_into(const SlotObservation& obs, SlotAction& action) {
  decide_into(obs, action, nullptr);
}

void GreFarScheduler::decide_into(const SlotObservation& obs, SlotAction& action,
                                  TraceScope* scope) {
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  GREFAR_CHECK(obs.prices.size() == N);
  GREFAR_CHECK(obs.central_queue.size() == J);
  GREFAR_CHECK(obs.dc_queue.rows() == N && obs.dc_queue.cols() == J);

  // Sparse per-slot regime (DESIGN.md §12): with the active-type hint, any
  // job type not listed has Q_j == 0 and q_{i,j} == 0 everywhere, so it can
  // neither route (no queued jobs, and q < Q is impossible at Q == 0) nor
  // process (nothing to serve). Every O(N*J) sweep below then runs over the
  // A active columns only. Traced decides stay dense: the drift-weight
  // census and tie-split annotations are defined over all J types. The
  // queue clamp is required: without it the literal mode permits "null
  // work" (h > 0 on an empty queue), so inactive columns can carry
  // non-zero process entries and the sparse clearing invariant would break.
  const bool hint =
      obs.active_types_valid && scope == nullptr && params_.clamp_to_queue;
  // The compact problem additionally needs a solver that never reads
  // full-space accessors (greedy and PGD work off view() + polytope; FW's
  // LMO and the LP builder do not).
  const bool compact_problem =
      hint && (solver_ == PerSlotSolver::kGreedy ||
               solver_ == PerSlotSolver::kProjectedGradient);

  const bool shapes_ok = action.route.rows() == N && action.route.cols() == J;
  if (!shapes_ok) {
    action.route = MatrixD(N, J);  // fresh matrices are zero-initialized
    action.process = MatrixD(N, J);
  }
  double* route_data = action.route.data().data();
  double* proc_data = action.process.data().data();
  if (shapes_ok) {
    if (hint && sparse_route_data_ == route_data && sparse_proc_data_ == proc_data) {
      // Only columns written last slot can be non-zero; clear exactly those.
      for (std::uint32_t j : prev_active_) {
        for (std::size_t i = 0; i < N; ++i) {
          route_data[i * J + j] = 0.0;
          proc_data[i * J + j] = 0.0;
        }
      }
    } else {
      action.route.fill(0.0);
      action.process.fill(0.0);
    }
  }
  sparse_route_data_ = hint ? route_data : nullptr;
  sparse_proc_data_ = hint ? proc_data : nullptr;

  // Per-DC total capacity sum_k n_{i,k} s_k for this slot, computed once up
  // front (the routing tie-break below used to recompute it per tie group
  // per job type).
  const std::size_t K = config_->num_server_types();
  const std::int64_t* avail = obs.availability.data().data();
  const double* dcq = obs.dc_queue.data().data();
  dc_capacity_.assign(N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    const std::int64_t* avail_row = avail + i * K;
    for (std::size_t k = 0; k < K; ++k) {
      dc_capacity_[i] += static_cast<double>(avail_row[k]) *
                         config_->server_types[k].speed;
    }
  }

  // -- Routing: minimize sum (q_{i,j} - Q_j) r_{i,j} ------------------------
  const std::size_t route_sweep = hint ? obs.active_types.size() : J;
  for (std::size_t jj = 0; jj < route_sweep; ++jj) {
    const std::size_t j = hint ? obs.active_types[jj] : jj;
    const double Q = obs.central_queue[j];
    std::vector<std::size_t>& beneficial = beneficial_;
    beneficial.clear();
    for (DataCenterId i : config_->job_types[j].eligible_dcs) {
      const bool negative_weight = dcq[i * J + j] < Q;
      if (scope != nullptr) {
        if (negative_weight) {
          ++scope->drift_weights_negative;
        } else {
          ++scope->drift_weights_nonnegative;
        }
      }
      // Amortized: beneficial_ reaches its high-water size after a few slots
      // and is clear()+refilled thereafter (DESIGN.md §7).
      if (negative_weight) beneficial.push_back(i);  // NOLINT(grefar-hot-path-alloc)
    }
    if (beneficial.empty()) continue;
    std::sort(beneficial.begin(), beneficial.end(), [&](std::size_t a, std::size_t b) {
      return dcq[a * J + j] < dcq[b * J + j];
    });
    if (params_.clamp_to_queue) {
      // Distribute the queued jobs, shortest destination queue first. DCs
      // whose queues tie (the common case is q == 0 at small V) are equally
      // optimal for the linear routing term of eq. (14); split the batch
      // across the tie group proportionally to capacity, so the policy
      // degrades gracefully to Always-style load spreading as V -> 0.
      // Members with no capacity this slot are excluded from the split: a
      // dead DC can only bank jobs it cannot serve, so its share goes to a
      // worse-queue group instead (or stays central when every beneficial
      // DC is dead).
      double available = std::floor(Q);
      std::size_t g = 0;
      while (g < beneficial.size() && available > 0.0) {
        std::size_t g_end = g + 1;
        while (g_end < beneficial.size() &&
               dcq[beneficial[g_end] * J + j] <= dcq[beneficial[g] * J + j] + 1e-9) {
          ++g_end;
        }
        tie_members_.clear();
        for (std::size_t s = g; s < g_end; ++s) {
          if (dc_capacity_[beneficial[s]] > 0.0)
            tie_members_.push_back(beneficial[s]);  // NOLINT(grefar-hot-path-alloc)
        }
        double assigned = 0.0;
        if (!tie_members_.empty()) {
          assigned = split_tie_group(j, available, action);
          available -= assigned;
        }
        if (scope != nullptr) {
          TraceScope::TieSplit split;
          split.job_type = j;
          split.group_size = g_end - g;
          split.jobs = assigned;
          split.zero_capacity_skipped = (g_end - g) - tie_members_.size();
          // Traced slots only (scope != nullptr): tracing is explicitly off
          // the allocation-free contract, the tracer owns the growth.
          scope->tie_splits.push_back(split);  // NOLINT(grefar-hot-path-alloc)
        }
        g = g_end;
      }
    } else {
      // Literal eq.-(14) optimum: saturate every beneficial destination.
      for (std::size_t i : beneficial) action.route(i, j) = params_.r_max;
    }
  }

  // -- Processing: solve the convex program of eq. (14) ---------------------
  // Routing executes before service within a slot, so the processing
  // decision is evaluated against the post-routing queue state q + r (the
  // queues service will actually see). Eq. (13)'s literal ordering (h serves
  // only the pre-routing queue) is recovered with process_after_routing =
  // false; both are valid drift-minimizing policies, the default just avoids
  // a structural one-slot service lag.
  const SlotObservation* problem_obs = &obs;
  if (params_.process_after_routing) {
    routed_obs_.slot = obs.slot;
    routed_obs_.prices = obs.prices;
    routed_obs_.availability = obs.availability;
    const bool routed_shape_ok =
        routed_obs_.dc_queue.rows() == N && routed_obs_.dc_queue.cols() == J;
    if (!routed_shape_ok) routed_obs_.dc_queue = MatrixD(N, J);
    const double* route = action.route.data().data();
    double* routed_q = routed_obs_.dc_queue.data().data();
    if (hint && routed_obs_sparse_valid_ && routed_shape_ok) {
      // Incremental update: inactive columns are q + r = 0 + 0 = 0, and the
      // previous slot left non-zeros only in its own active columns. Zero
      // those, then fill this slot's active columns.
      for (std::uint32_t j : prev_active_) {
        for (std::size_t i = 0; i < N; ++i) routed_q[i * J + j] = 0.0;
      }
      for (std::uint32_t j : obs.active_types) {
        for (std::size_t i = 0; i < N; ++i) {
          routed_q[i * J + j] = dcq[i * J + j] + route[i * J + j];
        }
      }
    } else {
      // Post-routing queues in one fused flat pass (the copy-then-add over
      // checked accessors this replaces was a visible slice of the per-slot
      // cost at 100+ DCs).
      for (std::size_t idx = 0; idx < N * J; ++idx) routed_q[idx] = dcq[idx] + route[idx];
    }
    routed_obs_sparse_valid_ = hint;
    if (!hint) {
      // The per-slot problem never reads the central queue, so the sparse
      // path skips this O(J) copy (at J = 10^6 it is pure overhead).
      routed_obs_.central_queue = obs.central_queue;
    }
    // Routing only ever adds jobs to types with Q_j > 0, which are active
    // already, so the hint stays valid for the post-routing queues.
    routed_obs_.active_types_valid = obs.active_types_valid;
    if (obs.active_types_valid) routed_obs_.active_types = obs.active_types;
    problem_obs = &routed_obs_;
  }
  if (problem_.has_value()) {
    problem_->set_sparse_enabled(compact_problem);
    problem_->reset(*problem_obs);
  } else {
    // Deferred construction: attach the executor and sparse mode first so
    // slot 0 runs (and counts) exactly one reset on the same path as every
    // later slot — a freshly built scheduler must be indistinguishable,
    // counters included, from a reused one.
    problem_.emplace(*config_, params_);
    problem_->set_intra_slot_executor(intra_exec_.get());
    problem_->set_sparse_enabled(compact_problem);
    problem_->reset(*problem_obs);
  }
  solve_per_slot_into(*problem_, solver_, u_, &solver_scratch_);
  const PerSlotView v = problem_->view();
  double* proc = action.process.data().data();
  const double h_max = params_.h_max;
  if (problem_->compact()) {
    // Compact solve: scatter the A active columns back to full coordinates
    // (everything else is already zero by the clearing invariant above).
    // Mode-checked via compact(), not v.type_ids: an idle slot's empty
    // active list has a null data() pointer but is still compact.
    const std::size_t A = v.num_types;
    for (std::size_t i = 0; i < N; ++i) {
      const double* u_row = u_.data() + i * A;
      double* proc_row = proc + i * J;
      for (std::size_t a = 0; a < A; ++a) {
        // Keep the division by d_j (not a reciprocal multiply): the engine
        // and auditor recompute h * d_j and expect the exact same values.
        proc_row[v.type_ids[a]] = std::min(u_row[a] / v.work[a], h_max);
      }
    }
  } else {
    for (std::size_t i = 0; i < N; ++i) {
      const double* u_row = u_.data() + i * J;
      double* proc_row = proc + i * J;
      for (std::size_t j = 0; j < J; ++j) {
        // Keep the division by d_j (not a reciprocal multiply): the engine and
        // auditor recompute h * d_j and expect the exact same values.
        proc_row[j] = std::min(u_row[j] / v.work[j], h_max);
      }
    }
  }
  if (hint) {
    prev_active_.assign(obs.active_types.begin(), obs.active_types.end());
  } else {
    prev_active_.clear();
  }
}

double GreFarScheduler::split_tie_group(std::size_t j, double jobs,
                                        SlotAction& action) {
  // Largest-remainder apportionment, capacity-weighted. Exactly conserving
  // (the return value equals min(jobs, m * floor(r_max))) and independent of
  // the member ordering: quotas depend only on capacities, and remainder
  // ties break by DC index.
  const double cap_r = std::floor(params_.r_max);
  const std::size_t m = tie_members_.size();
  if (cap_r <= 0.0) return 0.0;
  jobs = std::min(jobs, cap_r * static_cast<double>(m));
  if (jobs <= 0.0) return 0.0;
  if (m == 1) {
    // Singleton group: the whole (capped) batch goes to the one member; the
    // apportionment machinery below would grind through quota rounds and a
    // sort to conclude the same.
    action.route(tie_members_[0], j) = jobs;
    return jobs;
  }

  // Proportional quotas with per-member cap: members whose quota reaches
  // floor(r_max) are pinned there and the rest re-split among the remaining
  // capacity. Each round pins at least one member, so this runs at most m
  // rounds; `remaining` stays an exact integer throughout.
  tie_quota_.assign(m, 0.0);
  tie_pinned_.assign(m, 0);
  double remaining = jobs;
  bool changed = true;
  while (changed && remaining > 0.0) {
    changed = false;
    double free_cap = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      if (!tie_pinned_[s]) free_cap += dc_capacity_[tie_members_[s]];
    }
    if (free_cap <= 0.0) break;
    for (std::size_t s = 0; s < m; ++s) {
      if (tie_pinned_[s]) continue;
      tie_quota_[s] = remaining * dc_capacity_[tie_members_[s]] / free_cap;
    }
    for (std::size_t s = 0; s < m; ++s) {
      if (!tie_pinned_[s] && tie_quota_[s] >= cap_r) {
        tie_quota_[s] = cap_r;
        tie_pinned_[s] = 1;
        remaining -= cap_r;
        changed = true;
      }
    }
  }

  double base_total = 0.0;
  // Amortized: tie scratch tracks the largest tie group seen, then reuses.
  tie_base_.resize(m);  // NOLINT(grefar-hot-path-alloc)
  for (std::size_t s = 0; s < m; ++s) {
    tie_base_[s] = std::floor(tie_quota_[s]);
    base_total += tie_base_[s];
  }
  auto leftover = static_cast<std::int64_t>(std::llround(jobs - base_total));

  // Hand the leftover jobs out one each by descending fractional remainder;
  // remainder ties (and the float-noise backstop below) go to the lowest DC
  // index first.
  tie_rank_.resize(m);  // NOLINT(grefar-hot-path-alloc)
  std::iota(tie_rank_.begin(), tie_rank_.end(), std::size_t{0});
  std::sort(tie_rank_.begin(), tie_rank_.end(), [&](std::size_t a, std::size_t b) {
    const double ra = tie_quota_[a] - tie_base_[a];
    const double rb = tie_quota_[b] - tie_base_[b];
    if (ra != rb) return ra > rb;
    return tie_members_[a] < tie_members_[b];
  });
  for (std::size_t r = 0; r < m && leftover > 0; ++r) {
    const std::size_t s = tie_rank_[r];
    if (tie_base_[s] < cap_r) {
      tie_base_[s] += 1.0;
      --leftover;
    }
  }
  for (std::size_t s = 0; s < m && leftover > 0; ++s) {
    if (tie_base_[s] < cap_r) {
      tie_base_[s] += 1.0;
      --leftover;
    }
  }

  double assigned = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    action.route(tie_members_[s], j) = tie_base_[s];
    assigned += tie_base_[s];
  }
  return assigned;
}

}  // namespace grefar
