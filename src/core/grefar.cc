#include "core/grefar.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace_scope.h"
#include "util/check.h"
#include "util/strings.h"

namespace grefar {

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params)
    : GreFarScheduler(std::move(config), params,
                      params.beta == 0.0 ? PerSlotSolver::kGreedy
                                         : PerSlotSolver::kProjectedGradient) {}

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params,
                                 PerSlotSolver solver)
    : config_(std::move(config)), params_(params), solver_(solver) {
  config_.validate();
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK_MSG(!(params_.beta > 0.0 &&
                     (solver_ == PerSlotSolver::kGreedy || solver_ == PerSlotSolver::kLp)),
                   "greedy/lp per-slot solvers ignore the fairness term; "
                   "use Frank-Wolfe or PGD when beta > 0");
  if (params_.intra_slot_jobs > 1) {
    intra_exec_ = std::make_unique<IntraSlotExecutor>(params_.intra_slot_jobs);
  }
}

std::string GreFarScheduler::name() const {
  return "GreFar(V=" + format_fixed(params_.V, 2) +
         ", beta=" + format_fixed(params_.beta, 1) + ")";
}

SlotAction GreFarScheduler::decide(const SlotObservation& obs) {
  SlotAction action;
  decide_into(obs, action);
  return action;
}

void GreFarScheduler::decide_into(const SlotObservation& obs, SlotAction& action) {
  decide_into(obs, action, nullptr);
}

void GreFarScheduler::decide_into(const SlotObservation& obs, SlotAction& action,
                                  TraceScope* scope) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  GREFAR_CHECK(obs.prices.size() == N);
  GREFAR_CHECK(obs.central_queue.size() == J);
  GREFAR_CHECK(obs.dc_queue.rows() == N && obs.dc_queue.cols() == J);

  if (action.route.rows() != N || action.route.cols() != J) {
    action.route = MatrixD(N, J);
    action.process = MatrixD(N, J);
  } else {
    action.route.fill(0.0);
    action.process.fill(0.0);
  }

  // Per-DC total capacity sum_k n_{i,k} s_k for this slot, computed once up
  // front (the routing tie-break below used to recompute it per tie group
  // per job type).
  const std::size_t K = config_.num_server_types();
  const std::int64_t* avail = obs.availability.data().data();
  const double* dcq = obs.dc_queue.data().data();
  dc_capacity_.assign(N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    const std::int64_t* avail_row = avail + i * K;
    for (std::size_t k = 0; k < K; ++k) {
      dc_capacity_[i] += static_cast<double>(avail_row[k]) *
                         config_.server_types[k].speed;
    }
  }

  // -- Routing: minimize sum (q_{i,j} - Q_j) r_{i,j} ------------------------
  for (std::size_t j = 0; j < J; ++j) {
    const double Q = obs.central_queue[j];
    std::vector<std::size_t>& beneficial = beneficial_;
    beneficial.clear();
    for (DataCenterId i : config_.job_types[j].eligible_dcs) {
      const bool negative_weight = dcq[i * J + j] < Q;
      if (scope != nullptr) {
        if (negative_weight) {
          ++scope->drift_weights_negative;
        } else {
          ++scope->drift_weights_nonnegative;
        }
      }
      if (negative_weight) beneficial.push_back(i);
    }
    if (beneficial.empty()) continue;
    std::sort(beneficial.begin(), beneficial.end(), [&](std::size_t a, std::size_t b) {
      return dcq[a * J + j] < dcq[b * J + j];
    });
    if (params_.clamp_to_queue) {
      // Distribute the queued jobs, shortest destination queue first. DCs
      // whose queues tie (the common case is q == 0 at small V) are equally
      // optimal for the linear routing term of eq. (14); split the batch
      // across the tie group proportionally to capacity, so the policy
      // degrades gracefully to Always-style load spreading as V -> 0.
      // Members with no capacity this slot are excluded from the split: a
      // dead DC can only bank jobs it cannot serve, so its share goes to a
      // worse-queue group instead (or stays central when every beneficial
      // DC is dead).
      double available = std::floor(Q);
      std::size_t g = 0;
      while (g < beneficial.size() && available > 0.0) {
        std::size_t g_end = g + 1;
        while (g_end < beneficial.size() &&
               dcq[beneficial[g_end] * J + j] <= dcq[beneficial[g] * J + j] + 1e-9) {
          ++g_end;
        }
        tie_members_.clear();
        for (std::size_t s = g; s < g_end; ++s) {
          if (dc_capacity_[beneficial[s]] > 0.0) tie_members_.push_back(beneficial[s]);
        }
        double assigned = 0.0;
        if (!tie_members_.empty()) {
          assigned = split_tie_group(j, available, action);
          available -= assigned;
        }
        if (scope != nullptr) {
          TraceScope::TieSplit split;
          split.job_type = j;
          split.group_size = g_end - g;
          split.jobs = assigned;
          split.zero_capacity_skipped = (g_end - g) - tie_members_.size();
          scope->tie_splits.push_back(split);
        }
        g = g_end;
      }
    } else {
      // Literal eq.-(14) optimum: saturate every beneficial destination.
      for (std::size_t i : beneficial) action.route(i, j) = params_.r_max;
    }
  }

  // -- Processing: solve the convex program of eq. (14) ---------------------
  // Routing executes before service within a slot, so the processing
  // decision is evaluated against the post-routing queue state q + r (the
  // queues service will actually see). Eq. (13)'s literal ordering (h serves
  // only the pre-routing queue) is recovered with process_after_routing =
  // false; both are valid drift-minimizing policies, the default just avoids
  // a structural one-slot service lag.
  const SlotObservation* problem_obs = &obs;
  if (params_.process_after_routing) {
    routed_obs_.slot = obs.slot;
    routed_obs_.prices = obs.prices;
    routed_obs_.availability = obs.availability;
    routed_obs_.central_queue = obs.central_queue;
    if (routed_obs_.dc_queue.rows() != N || routed_obs_.dc_queue.cols() != J) {
      routed_obs_.dc_queue = MatrixD(N, J);
    }
    // Post-routing queues in one fused flat pass (the copy-then-add over
    // checked accessors this replaces was a visible slice of the per-slot
    // cost at 100+ DCs).
    const double* route = action.route.data().data();
    double* routed_q = routed_obs_.dc_queue.data().data();
    for (std::size_t idx = 0; idx < N * J; ++idx) routed_q[idx] = dcq[idx] + route[idx];
    problem_obs = &routed_obs_;
  }
  if (problem_.has_value()) {
    problem_->reset(*problem_obs);
  } else {
    problem_.emplace(config_, *problem_obs, params_);
    problem_->set_intra_slot_executor(intra_exec_.get());
    if (intra_exec_ != nullptr) {
      // The executor was not attached yet during the emplace above; redo the
      // first reset so even slot 0 takes the sharded path (keeps decisions
      // trivially identical between the first and every later slot).
      problem_->reset(*problem_obs);
    }
  }
  solve_per_slot_into(*problem_, solver_, u_, &solver_scratch_);
  const PerSlotView v = problem_->view();
  double* proc = action.process.data().data();
  const double h_max = params_.h_max;
  for (std::size_t i = 0; i < N; ++i) {
    const double* u_row = u_.data() + i * J;
    double* proc_row = proc + i * J;
    for (std::size_t j = 0; j < J; ++j) {
      // Keep the division by d_j (not a reciprocal multiply): the engine and
      // auditor recompute h * d_j and expect the exact same values.
      proc_row[j] = std::min(u_row[j] / v.work[j], h_max);
    }
  }
}

double GreFarScheduler::split_tie_group(std::size_t j, double jobs,
                                        SlotAction& action) {
  // Largest-remainder apportionment, capacity-weighted. Exactly conserving
  // (the return value equals min(jobs, m * floor(r_max))) and independent of
  // the member ordering: quotas depend only on capacities, and remainder
  // ties break by DC index.
  const double cap_r = std::floor(params_.r_max);
  const std::size_t m = tie_members_.size();
  if (cap_r <= 0.0) return 0.0;
  jobs = std::min(jobs, cap_r * static_cast<double>(m));
  if (jobs <= 0.0) return 0.0;
  if (m == 1) {
    // Singleton group: the whole (capped) batch goes to the one member; the
    // apportionment machinery below would grind through quota rounds and a
    // sort to conclude the same.
    action.route(tie_members_[0], j) = jobs;
    return jobs;
  }

  // Proportional quotas with per-member cap: members whose quota reaches
  // floor(r_max) are pinned there and the rest re-split among the remaining
  // capacity. Each round pins at least one member, so this runs at most m
  // rounds; `remaining` stays an exact integer throughout.
  tie_quota_.assign(m, 0.0);
  tie_pinned_.assign(m, 0);
  double remaining = jobs;
  bool changed = true;
  while (changed && remaining > 0.0) {
    changed = false;
    double free_cap = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      if (!tie_pinned_[s]) free_cap += dc_capacity_[tie_members_[s]];
    }
    if (free_cap <= 0.0) break;
    for (std::size_t s = 0; s < m; ++s) {
      if (tie_pinned_[s]) continue;
      tie_quota_[s] = remaining * dc_capacity_[tie_members_[s]] / free_cap;
    }
    for (std::size_t s = 0; s < m; ++s) {
      if (!tie_pinned_[s] && tie_quota_[s] >= cap_r) {
        tie_quota_[s] = cap_r;
        tie_pinned_[s] = 1;
        remaining -= cap_r;
        changed = true;
      }
    }
  }

  double base_total = 0.0;
  tie_base_.resize(m);
  for (std::size_t s = 0; s < m; ++s) {
    tie_base_[s] = std::floor(tie_quota_[s]);
    base_total += tie_base_[s];
  }
  auto leftover = static_cast<std::int64_t>(std::llround(jobs - base_total));

  // Hand the leftover jobs out one each by descending fractional remainder;
  // remainder ties (and the float-noise backstop below) go to the lowest DC
  // index first.
  tie_rank_.resize(m);
  std::iota(tie_rank_.begin(), tie_rank_.end(), std::size_t{0});
  std::sort(tie_rank_.begin(), tie_rank_.end(), [&](std::size_t a, std::size_t b) {
    const double ra = tie_quota_[a] - tie_base_[a];
    const double rb = tie_quota_[b] - tie_base_[b];
    if (ra != rb) return ra > rb;
    return tie_members_[a] < tie_members_[b];
  });
  for (std::size_t r = 0; r < m && leftover > 0; ++r) {
    const std::size_t s = tie_rank_[r];
    if (tie_base_[s] < cap_r) {
      tie_base_[s] += 1.0;
      --leftover;
    }
  }
  for (std::size_t s = 0; s < m && leftover > 0; ++s) {
    if (tie_base_[s] < cap_r) {
      tie_base_[s] += 1.0;
      --leftover;
    }
  }

  double assigned = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    action.route(tie_members_[s], j) = tie_base_[s];
    assigned += tie_base_[s];
  }
  return assigned;
}

}  // namespace grefar
