#include "core/grefar.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace grefar {

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params)
    : GreFarScheduler(std::move(config), params,
                      params.beta == 0.0 ? PerSlotSolver::kGreedy
                                         : PerSlotSolver::kProjectedGradient) {}

GreFarScheduler::GreFarScheduler(ClusterConfig config, GreFarParams params,
                                 PerSlotSolver solver)
    : config_(std::move(config)), params_(params), solver_(solver) {
  config_.validate();
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK_MSG(!(params_.beta > 0.0 &&
                     (solver_ == PerSlotSolver::kGreedy || solver_ == PerSlotSolver::kLp)),
                   "greedy/lp per-slot solvers ignore the fairness term; "
                   "use Frank-Wolfe or PGD when beta > 0");
}

std::string GreFarScheduler::name() const {
  return "GreFar(V=" + format_fixed(params_.V, 2) +
         ", beta=" + format_fixed(params_.beta, 1) + ")";
}

SlotAction GreFarScheduler::decide(const SlotObservation& obs) {
  SlotAction action;
  decide_into(obs, action);
  return action;
}

void GreFarScheduler::decide_into(const SlotObservation& obs, SlotAction& action) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  GREFAR_CHECK(obs.prices.size() == N);
  GREFAR_CHECK(obs.central_queue.size() == J);
  GREFAR_CHECK(obs.dc_queue.rows() == N && obs.dc_queue.cols() == J);

  if (action.route.rows() != N || action.route.cols() != J) {
    action.route = MatrixD(N, J);
    action.process = MatrixD(N, J);
  } else {
    action.route.fill(0.0);
    action.process.fill(0.0);
  }

  // Per-DC total capacity sum_k n_{i,k} s_k for this slot, computed once up
  // front (the routing tie-break below used to recompute it per tie group
  // per job type).
  dc_capacity_.assign(N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t k = 0; k < config_.num_server_types(); ++k) {
      dc_capacity_[i] += static_cast<double>(obs.availability(i, k)) *
                         config_.server_types[k].speed;
    }
  }

  // -- Routing: minimize sum (q_{i,j} - Q_j) r_{i,j} ------------------------
  for (std::size_t j = 0; j < J; ++j) {
    const double Q = obs.central_queue[j];
    std::vector<std::size_t>& beneficial = beneficial_;
    beneficial.clear();
    for (DataCenterId i : config_.job_types[j].eligible_dcs) {
      if (obs.dc_queue(i, j) < Q) beneficial.push_back(i);
    }
    if (beneficial.empty()) continue;
    std::sort(beneficial.begin(), beneficial.end(), [&](std::size_t a, std::size_t b) {
      return obs.dc_queue(a, j) < obs.dc_queue(b, j);
    });
    if (params_.clamp_to_queue) {
      // Distribute the queued jobs, shortest destination queue first. DCs
      // whose queues tie (the common case is q == 0 at small V) are equally
      // optimal for the linear routing term of eq. (14); split the batch
      // across the tie group proportionally to capacity, so the policy
      // degrades gracefully to Always-style load spreading as V -> 0.
      double available = std::floor(Q);
      std::size_t g = 0;
      while (g < beneficial.size() && available > 0.0) {
        std::size_t g_end = g + 1;
        while (g_end < beneficial.size() &&
               obs.dc_queue(beneficial[g_end], j) <=
                   obs.dc_queue(beneficial[g], j) + 1e-9) {
          ++g_end;
        }
        // Capacity weights of the tie group.
        double total_cap = 0.0;
        for (std::size_t s = g; s < g_end; ++s) total_cap += dc_capacity_[beneficial[s]];
        double group_jobs = available;
        for (std::size_t s = g; s < g_end && available > 0.0; ++s) {
          double share =
              total_cap > 0.0
                  ? std::ceil(group_jobs * dc_capacity_[beneficial[s]] / total_cap)
                  : group_jobs;
          double r = std::floor(std::min({params_.r_max, share, available}));
          action.route(beneficial[s], j) = r;
          available -= r;
        }
        g = g_end;
      }
    } else {
      // Literal eq.-(14) optimum: saturate every beneficial destination.
      for (std::size_t i : beneficial) action.route(i, j) = params_.r_max;
    }
  }

  // -- Processing: solve the convex program of eq. (14) ---------------------
  // Routing executes before service within a slot, so the processing
  // decision is evaluated against the post-routing queue state q + r (the
  // queues service will actually see). Eq. (13)'s literal ordering (h serves
  // only the pre-routing queue) is recovered with process_after_routing =
  // false; both are valid drift-minimizing policies, the default just avoids
  // a structural one-slot service lag.
  const SlotObservation* problem_obs = &obs;
  if (params_.process_after_routing) {
    routed_obs_ = obs;
    for (std::size_t j = 0; j < J; ++j) {
      for (std::size_t i = 0; i < N; ++i) {
        routed_obs_.dc_queue(i, j) += action.route(i, j);
      }
    }
    problem_obs = &routed_obs_;
  }
  if (problem_.has_value()) {
    problem_->reset(*problem_obs);
  } else {
    problem_.emplace(config_, *problem_obs, params_);
  }
  solve_per_slot_into(*problem_, solver_, u_, &solver_scratch_);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      double h = u_[problem_->index(i, j)] / config_.job_types[j].work;
      action.process(i, j) = std::min(h, params_.h_max);
    }
  }
}

}  // namespace grefar
