// Solvers for the per-slot GreFar problem (see drift_penalty.h).
//
// * solve_per_slot_greedy — exact for beta = 0. The problem separates per
//   data center into matching the highest queue-value-per-work job demand
//   against the cheapest energy-per-work server segments; both lists sorted,
//   allocate while the marginal value exceeds the marginal cost. This is
//   also the linear minimization oracle Frank-Wolfe calls implicitly.
// * solve_per_slot_frank_wolfe / solve_per_slot_pgd — handle beta > 0
//   (quadratic fairness coupling across data centers).
// * build_per_slot_lp — the equivalent LP for beta = 0, used to cross-check
//   the greedy against the simplex solver in tests and ablations.
#pragma once

#include "core/drift_penalty.h"
#include "solver/frank_wolfe.h"
#include "solver/lp.h"
#include "solver/projected_gradient.h"

namespace grefar {

/// Which engine GreFar uses to solve eq. (14) each slot.
enum class PerSlotSolver {
  kGreedy,      // exact for beta == 0; ignores the fairness term
  kFrankWolfe,  // handles beta >= 0
  kProjectedGradient,  // handles beta >= 0
  kLp,          // simplex on the beta == 0 LP (cross-check / ablation)
};

std::string to_string(PerSlotSolver solver);

/// Exact greedy for beta = 0 (the fairness term, if any, is ignored).
/// Returns the flattened u vector (work units per (i,j)).
std::vector<double> solve_per_slot_greedy(const PerSlotProblem& problem);

/// Frank-Wolfe on the full convex objective. Warm-started from the greedy.
std::vector<double> solve_per_slot_frank_wolfe(const PerSlotProblem& problem,
                                               const FrankWolfeOptions& options = {});

/// Projected gradient on the full convex objective. Warm-started likewise.
std::vector<double> solve_per_slot_pgd(const PerSlotProblem& problem,
                                       const PgdOptions& options = {});

/// Builds the beta = 0 LP over variables [u_{i,j} | w_{i,k}] where w_{i,k}
/// is work served by server type k in DC i:
///   min  sum_{i,k} V*phi_i*(p_k/s_k) w_{i,k} - sum_{i,j} (q_{i,j}/d_j) u_{i,j}
///   s.t. sum_j u_{i,j} <= sum_k w_{i,k};  w_{i,k} <= n_{i,k} s_k;  u <= ub.
LinearProgram build_per_slot_lp(const PerSlotProblem& problem);

/// Solves via the LP above and extracts the u block.
std::vector<double> solve_per_slot_lp(const PerSlotProblem& problem);

/// Dispatches on `solver`.
std::vector<double> solve_per_slot(const PerSlotProblem& problem, PerSlotSolver solver);

}  // namespace grefar
