// Solvers for the per-slot GreFar problem (see drift_penalty.h).
//
// * solve_per_slot_greedy — exact for beta = 0. The problem separates per
//   data center into matching the highest queue-value-per-work job demand
//   against the cheapest energy-per-work server segments; both lists sorted,
//   allocate while the marginal value exceeds the marginal cost. This is
//   also the linear minimization oracle Frank-Wolfe calls implicitly.
// * solve_per_slot_frank_wolfe / solve_per_slot_pgd — handle beta > 0
//   (quadratic fairness coupling across data centers).
// * build_per_slot_lp — the equivalent LP for beta = 0, used to cross-check
//   the greedy against the simplex solver in tests and ablations.
#pragma once

#include "core/drift_penalty.h"
#include "solver/frank_wolfe.h"
#include "solver/lp.h"
#include "solver/projected_gradient.h"
#include "util/annotations.h"

namespace grefar {

/// Which engine GreFar uses to solve eq. (14) each slot.
enum class PerSlotSolver {
  kGreedy,      // exact for beta == 0; ignores the fairness term
  kFrankWolfe,  // handles beta >= 0
  kProjectedGradient,  // handles beta >= 0
  kLp,          // simplex on the beta == 0 LP (cross-check / ablation)
};

std::string to_string(PerSlotSolver solver);

/// Reusable scratch for the per-slot solvers. A long-lived scheduler keeps
/// one instance and passes it to every solve: both sides of the greedy's
/// two-list merge are cached per data center and only rebuilt when their
/// inputs actually move (see DESIGN.md §11):
///
///   * Pieces store `base_cost = tariff_rate * energy_per_work` with the
///     (positive) V * phi price factor divided out, so a DC's piece list is
///     rebuilt only when its *availability row* changes — price moves
///     rescale every piece equally and cannot reorder them.
///   * Demands (job types with positive queue value, sorted descending) are
///     keyed on the DC's (queue-value, upper-bound) rows; a prices-only
///     slot leaves both untouched and reuses the sorted order outright.
///
/// An instance is tied to one cluster config (server types + tariffs). It is
/// single-threaded from the caller's side; with an intra-slot executor the
/// greedy fill shards across DCs internally, which is why the fill working
/// copies are per *shard* (each cache entry stays immutable during a fill).
struct PerSlotSolverScratch {
  struct Piece {
    double capacity;   // work units
    double base_cost;  // tariff_rate * energy_per_work (x V*phi at use site)
  };
  struct Demand {
    std::size_t j;
    double value;      // q_{i,j} / d_j
    double remaining;  // ub on work units
  };
  std::vector<std::vector<Piece>> pieces;               // [dc], sorted by cost
  std::vector<std::vector<std::int64_t>> cached_avail;  // [dc] row pieces were built for
  std::vector<std::vector<Demand>> demand_cache;  // [dc] sorted desc by value
  std::vector<std::vector<double>> cached_qv;     // [dc] queue-value row key
  std::vector<std::vector<double>> cached_ub;     // [dc] upper-bound row key
  /// Column-identity key for the demand caches: in compact mode column a of
  /// the (qv, ub) rows stands for job type cache_types[a], so byte-equal
  /// rows under a *different* active-type list must still miss. A mode or
  /// type-list change clears every per-DC key.
  bool cache_compact = false;
  std::vector<std::uint32_t> cache_types;
  std::vector<std::vector<Demand>> fill_demands;  // [shard] fill working copy
  /// Per-shard staging slots for the cache-hit counters: pool workers have
  /// their own (usually inactive) thread-local registries, so the sharded
  /// fill records here and the calling thread flushes the totals once per
  /// solve — counter values stay identical at any intra_slot_jobs.
  std::vector<std::uint64_t> count_stage;
  std::vector<double> warm;                             // FW/PGD warm start
  /// Previous slot's FW/PGD solution; with params.warm_start_across_slots
  /// the next solve starts here (clamped onto the current bound box and, in
  /// compact mode, remapped across active-type lists) instead of re-running
  /// the greedy. prev_valid flags that a solution was saved at all — an
  /// empty prev with prev_valid set is a real zero-variable compact
  /// solution (idle slot), not "no history". prev_compact / prev_types
  /// record the coordinate system the solution was saved under (dense
  /// full-space when prev_compact is false).
  std::vector<double> prev;
  bool prev_valid = false;
  bool prev_compact = false;
  std::vector<std::uint32_t> prev_types;
  std::vector<std::uint32_t> warm_map;  // remap scratch (active -> prev col)
  /// Opt-in simplex warm starts for the kLp path (cross-slot / cross-leg
  /// basis reuse, GreFarScheduler::begin_run keep_warm mode). Off by
  /// default: a warm phase-2 re-entry converges to the same optimum but not
  /// bitwise the same vertex, so the cold path stays the reference and every
  /// bitwise-equality contract runs with this flag clear.
  bool lp_warm_enabled = false;
  SimplexBasis lp_basis;
  bool lp_basis_valid = false;
};

/// Exact greedy for beta = 0 (the fairness term, if any, is ignored).
/// Returns the flattened u vector (work units per (i,j)).
std::vector<double> solve_per_slot_greedy(const PerSlotProblem& problem);

/// Allocation-free greedy: writes into `u`, reuses `scratch` (pass nullptr
/// to use transient local scratch).
GREFAR_HOT_PATH GREFAR_DETERMINISTIC
void solve_per_slot_greedy_into(const PerSlotProblem& problem, std::vector<double>& u,
                                PerSlotSolverScratch* scratch);

/// Frank-Wolfe on the full convex objective. Warm-started from the greedy.
std::vector<double> solve_per_slot_frank_wolfe(const PerSlotProblem& problem,
                                               const FrankWolfeOptions& options = {});

/// Projected gradient on the full convex objective. Warm-started likewise.
std::vector<double> solve_per_slot_pgd(const PerSlotProblem& problem,
                                       const PgdOptions& options = {});

/// Builds the beta = 0 LP over variables [u_{i,j} | w_{i,k}] where w_{i,k}
/// is work served by server type k in DC i:
///   min  sum_{i,k} V*phi_i*(p_k/s_k) w_{i,k} - sum_{i,j} (q_{i,j}/d_j) u_{i,j}
///   s.t. sum_j u_{i,j} <= sum_k w_{i,k};  w_{i,k} <= n_{i,k} s_k;  u <= ub.
LinearProgram build_per_slot_lp(const PerSlotProblem& problem);

/// Solves via the LP above and extracts the u block.
std::vector<double> solve_per_slot_lp(const PerSlotProblem& problem);

/// Dispatches on `solver`.
std::vector<double> solve_per_slot(const PerSlotProblem& problem, PerSlotSolver solver);

/// Dispatching solve into a caller-owned result buffer with reusable
/// scratch — the hot path GreFarScheduler uses every slot.
GREFAR_HOT_PATH GREFAR_DETERMINISTIC
void solve_per_slot_into(const PerSlotProblem& problem, PerSlotSolver solver,
                         std::vector<double>& u, PerSlotSolverScratch* scratch);

}  // namespace grefar
