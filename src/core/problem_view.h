// PerSlotView: flat structure-of-arrays snapshot of the per-slot problem.
//
// The AoS-ish accessors on PerSlotProblem (`queue_value(i, j)`,
// `config().job_types[j].eligible(i)`, `polytope().upper_bounds()[idx]`)
// are fine at paper scale, but at 100+ DCs x 64+ job types the per-(i,j)
// call overhead — and especially JobType::eligible()'s linear scan over
// D_j — turns the per-slot rebuild into an O(N^2 J) wall. This view exposes
// every array the hot kernels iterate as a contiguous pointer so solver
// loops are branch-light, stride-1 and autovectorizable.
//
// Layout. All (i, j) arrays are row-major N x J flattened as i * J + j —
// the same `index()` the problem uses everywhere. Per-job-type arrays have
// length J, per-server-type arrays length K, per-DC arrays length N.
//
// Lifetime. A view is a *borrow*: pointers alias PerSlotProblem internals
// (and the SlotObservation it currently targets) and are invalidated by the
// next reset(). Take the view after reset, use it within the slot, drop it.
// Static arrays (eligibility, work, accounts, server constants) additionally
// never change between resets of the same problem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace grefar {

struct PerSlotView {
  std::size_t num_dcs = 0;       // N
  std::size_t num_types = 0;     // J (or A in compact mode, see type_ids)
  std::size_t num_servers = 0;   // K
  std::size_t num_accounts = 0;  // M

  /// Compact (active-type) column map — DESIGN.md §12. Null for a dense
  /// problem. In compact mode the problem is defined over num_types = A
  /// active columns and type_ids[a] is the job type column a stands for;
  /// every per-type array below is the gathered length-A version and (i, a)
  /// arrays are row-major N x A. Do NOT use nullness as the mode test: an
  /// idle compact slot has A == 0 and a null pointer — branch on
  /// PerSlotProblem::compact() instead and only index type_ids under a < A.
  const std::uint32_t* type_ids = nullptr;

  // Static per-cluster arrays (built once per problem, never invalidated).
  const std::uint8_t* eligible = nullptr;   // [N*J] 1 iff i in D_j
  const double* work = nullptr;             // [J] d_j
  const double* inv_work = nullptr;         // [J] 1 / d_j
  const std::uint32_t* account_of = nullptr;  // [J] rho_j
  const double* speed = nullptr;            // [K] s_k
  const double* busy_power = nullptr;       // [K] p_k
  const double* energy_per_work = nullptr;  // [K] p_k / s_k

  // Per-slot arrays (rebuilt by reset(); valid until the next reset).
  const double* prices = nullptr;           // [N] phi_i(t)
  const std::int64_t* availability = nullptr;  // [N*K] n_{i,k}(t), row-major
  const double* queue_value = nullptr;      // [N*J] q_{i,j}/d_j (0 if ineligible)
  const double* upper_bounds = nullptr;     // [N*J] work ub per (i,j)
  const double* dc_capacity = nullptr;      // [N] sum_k n_{i,k} s_k
};

}  // namespace grefar
