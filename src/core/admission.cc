#include "core/admission.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {

ThresholdAdmission::ThresholdAdmission(double theta) : theta_(theta) {
  GREFAR_CHECK_MSG(std::isfinite(theta_) && theta_ >= 0.0,
                   "admission threshold must be finite and >= 0");
}

std::int64_t ThresholdAdmission::admit(std::int64_t /*slot*/, const JobType& type,
                                       std::int64_t count, double value,
                                       std::int64_t /*deadline*/) {
  return value / type.work >= theta_ ? count : 0;
}

double ThresholdAdmission::threshold(std::int64_t /*slot*/) const { return theta_; }

std::string ThresholdAdmission::name() const { return "threshold"; }

RandomizedThresholdAdmission::RandomizedThresholdAdmission(double theta_lo,
                                                           double theta_hi,
                                                           std::uint64_t seed)
    : theta_lo_(theta_lo), theta_hi_(theta_hi), seed_(seed) {
  GREFAR_CHECK_MSG(std::isfinite(theta_lo_) && theta_lo_ > 0.0,
                   "randomized admission needs theta_lo > 0");
  GREFAR_CHECK_MSG(std::isfinite(theta_hi_) && theta_hi_ >= theta_lo_,
                   "randomized admission needs theta_hi >= theta_lo");
}

double RandomizedThresholdAdmission::threshold(std::int64_t slot) const {
  // Pure function of (seed, slot): fork() derives the slot stream exactly
  // like ZipfArrivals, so any evaluation order replays.
  const double u = Rng(seed_).fork(static_cast<std::uint64_t>(slot)).uniform();
  return theta_lo_ * std::pow(theta_hi_ / theta_lo_, u);
}

std::int64_t RandomizedThresholdAdmission::admit(std::int64_t slot,
                                                 const JobType& type,
                                                 std::int64_t count, double value,
                                                 std::int64_t /*deadline*/) {
  return value / type.work >= threshold(slot) ? count : 0;
}

std::string RandomizedThresholdAdmission::name() const {
  return "randomized-threshold";
}

std::shared_ptr<AdmissionPolicy> make_admission_policy(AdmissionPolicyKind kind,
                                                       double theta,
                                                       std::uint64_t seed) {
  switch (kind) {
    case AdmissionPolicyKind::kAdmitAll:
      return std::make_shared<AdmitAllPolicy>();
    case AdmissionPolicyKind::kThreshold:
      return std::make_shared<ThresholdAdmission>(theta);
    case AdmissionPolicyKind::kRandomized:
      return std::make_shared<RandomizedThresholdAdmission>(theta / 4.0,
                                                            theta * 4.0, seed);
  }
  GREFAR_CHECK_MSG(false, "unknown admission policy kind");
  return nullptr;
}

}  // namespace grefar
