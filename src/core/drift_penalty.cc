#include "core/drift_penalty.h"

#include <algorithm>
#include <cmath>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {

PerSlotProblem::PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                               const GreFarParams& params)
    : PerSlotProblem(config, params) {
  reset(obs);
}

PerSlotProblem::PerSlotProblem(const ClusterConfig& config, const GreFarParams& params)
    : config_(&config),
      obs_(nullptr),
      params_(params),
      num_dcs_(config.num_data_centers()),
      num_types_(config.num_job_types()),
      num_accounts_(config.num_accounts()),
      curves_(num_dcs_),
      smoothing_band_(num_dcs_, 0.0),
      energy_band_(num_dcs_, 0.0),
      fairness_(config.gammas()),
      polytope_(std::vector<double>(num_dcs_ * num_types_, 0.0)),
      queue_value_(num_dcs_ * num_types_, 0.0),
      num_types_eff_(num_types_) {
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK(params_.r_max >= 0.0);
  GREFAR_CHECK(params_.h_max >= 0.0);

  // Static SoA arrays: eligibility as a bitmap (JobType::eligible() is a
  // linear scan over D_j — calling it per (i, j) per reset made the rebuild
  // O(N^2 J)), plus flat per-type columns so the hot loops never chase
  // job_types[j] through three indirections.
  eligible_.assign(num_dcs_ * num_types_, 0);
  work_.resize(num_types_);
  inv_work_.resize(num_types_);
  account_of_.resize(num_types_);
  max_rate_.resize(num_types_);
  rate_capped_.resize(num_types_);
  for (std::size_t j = 0; j < num_types_; ++j) {
    const JobType& jt = config.job_types[j];
    // Guard the fairness scatter below: an out-of-range account index would
    // corrupt the account accumulators silently. ClusterConfig::validate()
    // checks this too, but hand-built configs (tests, tools) reach here
    // without passing through validate().
    GREFAR_CHECK_MSG(jt.account < num_accounts_,
                     "job type " << j << " ('" << jt.name << "') references account "
                                 << jt.account << " but the cluster has only "
                                 << num_accounts_ << " accounts");
    work_[j] = jt.work;
    inv_work_[j] = 1.0 / jt.work;
    account_of_[j] = static_cast<std::uint32_t>(jt.account);
    max_rate_[j] = jt.max_rate;
    rate_capped_[j] = std::isfinite(jt.max_rate) ? 1 : 0;
    any_rate_cap_ = any_rate_cap_ || rate_capped_[j] != 0;
    for (DataCenterId i : jt.eligible_dcs) eligible_[i * num_types_ + j] = 1;
  }

  // Accounts no job type maps to can never receive work: the dense account
  // accumulators cover only the referenced set (account_of_ is static, so
  // this is computed once). See DESIGN.md §12 for why dropping them keeps
  // the fairness sums bitwise unchanged.
  referenced_accounts_ = account_of_;
  std::sort(referenced_accounts_.begin(), referenced_accounts_.end());
  referenced_accounts_.erase(
      std::unique(referenced_accounts_.begin(), referenced_accounts_.end()),
      referenced_accounts_.end());
  account_slot_static_.resize(num_types_);
  for (std::size_t j = 0; j < num_types_; ++j) {
    account_slot_static_[j] = static_cast<std::uint32_t>(
        std::lower_bound(referenced_accounts_.begin(), referenced_accounts_.end(),
                         account_of_[j]) -
        referenced_accounts_.begin());
  }

  const std::size_t K = config.num_server_types();
  speed_.resize(K);
  busy_power_.resize(K);
  energy_per_work_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    speed_[k] = config.server_types[k].speed;
    busy_power_[k] = config.server_types[k].busy_power;
    energy_per_work_[k] = config.server_types[k].busy_power / config.server_types[k].speed;
  }

  for (std::size_t i = 0; i < num_dcs_; ++i) {
    std::vector<std::size_t> group(num_types_);
    for (std::size_t j = 0; j < num_types_; ++j) group[j] = i * num_types_ + j;
    polytope_.add_group(std::move(group), 0.0);
  }

  dc_capacity_.resize(num_dcs_);
  marginal_scratch_.resize(num_dcs_);
  dc_value_.resize(num_dcs_);
}

void PerSlotProblem::reset(const SlotObservation& obs) {
  const ClusterConfig& config = *config_;
  const std::size_t K = config.num_server_types();
  GREFAR_CHECK(obs.availability.rows() == num_dcs_ && obs.availability.cols() == K);
  GREFAR_CHECK(obs.dc_queue.rows() == num_dcs_ && obs.dc_queue.cols() == num_types_);
  obs_ = &obs;

  // Compact mode engages only when every dead type provably has ub == 0:
  // that requires both the hint (so we know which types are dead) and the
  // queue clamp (so empty queues actually zero the bound).
  compact_ = sparse_enabled_ && obs.active_types_valid && params_.clamp_to_queue;
  // NOLINTBEGIN(grefar-hot-path-alloc): every resize below re-shapes a
  // persistent buffer that reaches its high-water size after a few slots and
  // is reused in place thereafter (the header's allocation-free contract is
  // about the steady state, DESIGN.md §7/§12).
  if (compact_) {
    active_types_.assign(obs.active_types.begin(), obs.active_types.end());
    const std::size_t A = active_types_.size();
    num_types_eff_ = A;
    work_eff_.resize(A);
    inv_work_eff_.resize(A);
    account_of_eff_.resize(A);
    max_rate_eff_.resize(A);
    rate_capped_eff_.resize(A);
    for (std::size_t a = 0; a < A; ++a) {
      const std::uint32_t id = active_types_[a];
      GREFAR_CHECK_MSG(id < num_types_, "active type id " << id << " out of range");
      GREFAR_CHECK_MSG(a == 0 || id > active_types_[a - 1],
                       "active type hint must be strictly ascending");
      work_eff_[a] = work_[id];
      inv_work_eff_[a] = inv_work_[id];
      account_of_eff_[a] = account_of_[id];
      max_rate_eff_[a] = max_rate_[id];
      rate_capped_eff_[a] = rate_capped_[id];
    }
    eligible_eff_.resize(num_dcs_ * A);
    active_accounts_ = account_of_eff_;
    std::sort(active_accounts_.begin(), active_accounts_.end());
    active_accounts_.erase(
        std::unique(active_accounts_.begin(), active_accounts_.end()),
        active_accounts_.end());
    account_slot_eff_.resize(A);
    for (std::size_t a = 0; a < A; ++a) {
      account_slot_eff_[a] = static_cast<std::uint32_t>(
          std::lower_bound(active_accounts_.begin(), active_accounts_.end(),
                           account_of_eff_[a]) -
          active_accounts_.begin());
    }
  } else {
    num_types_eff_ = num_types_;
  }
  num_account_slots_ = compact_ ? active_accounts_.size() : referenced_accounts_.size();
  account_scratch_.resize(num_account_slots_);
  account_partial_.resize(num_dcs_ * num_account_slots_);
  account_term_.resize(num_account_slots_);
  type_term_.resize(num_types_eff_);

  // Re-shape the polytope when the effective dimension moved (compact <->
  // dense, or a different active count). Group structure is always N
  // contiguous runs, so only the size matters; bounds and caps are fully
  // rewritten by the pass below either way.
  const std::size_t J_eff = num_types_eff_;
  if (polytope_.dim() != num_dcs_ * J_eff) {
    polytope_.rebuild_contiguous(num_dcs_, J_eff);
  }
  queue_value_.resize(num_dcs_ * J_eff);
  // NOLINTEND(grefar-hot-path-alloc)

  const std::int64_t* avail = obs.availability.data().data();
  const double* dc_queue = obs.dc_queue.data().data();
  double* ub = polytope_.mutable_upper_bounds();
  const std::size_t J = num_types_;
  const bool clamp = params_.clamp_to_queue;
  const double h_max = params_.h_max;

  // One fused pass per DC: curve rebuild, bands, group cap, queue values and
  // work upper bounds, all off flat row pointers. Each DC writes only its
  // own slots, so the pass shards cleanly; the only cross-DC reduction
  // (total_resource_) is merged serially below, in DC order, making the
  // result identical at any intra_slot_jobs. The compact variant touches
  // O(A) columns per DC (reading the dense queue row through the gather
  // indices); its qv/ub arithmetic is the exact expression of the dense
  // branch, so corresponding entries carry identical bits.
  auto per_dc = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      curves_[i].rebuild(config.server_types, avail + i * K, K);
      const double cap = curves_[i].capacity();
      dc_capacity_[i] = cap;
      smoothing_band_[i] = 1e-3 * cap;
      energy_band_[i] = 1e-3 * curves_[i].energy_for_work(cap);
      polytope_.set_group_cap(i, cap);

      const double* q = dc_queue + i * J;
      double* qv = queue_value_.data() + i * J_eff;
      double* ub_row = ub + i * J_eff;
      if (compact_) {
        const std::uint8_t* el = eligible_.data() + i * J;
        std::uint8_t* el_eff = eligible_eff_.data() + i * J_eff;
        for (std::size_t a = 0; a < J_eff; ++a) {
          const std::uint32_t j = active_types_[a];
          const std::uint8_t e = el[j];
          el_eff[a] = e;
          qv[a] = e != 0 ? q[j] / work_eff_[a] : 0.0;
          double h_cap = clamp ? std::min(h_max, q[j]) : h_max;
          double work_ub = std::max(h_cap, 0.0) * work_eff_[a];
          if (any_rate_cap_ && rate_capped_eff_[a] != 0) {
            work_ub = std::min(work_ub, max_rate_eff_[a] * std::ceil(q[j]));
          }
          ub_row[a] = e != 0 ? work_ub : 0.0;
        }
      } else {
        const std::uint8_t* el = eligible_.data() + i * J;
        for (std::size_t j = 0; j < J; ++j) {
          qv[j] = el[j] != 0 ? q[j] / work_[j] : 0.0;
          double h_cap = clamp ? std::min(h_max, q[j]) : h_max;
          double work_ub = std::max(h_cap, 0.0) * work_[j];
          // Parallelism constraint (guarded: max_rate * ceil(q) with an
          // infinite rate and an empty queue would be inf * 0 = NaN).
          if (any_rate_cap_ && rate_capped_[j] != 0) {
            work_ub = std::min(work_ub, max_rate_[j] * std::ceil(q[j]));
          }
          ub_row[j] = el[j] != 0 ? work_ub : 0.0;
        }
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, per_dc);
  } else {
    per_dc(0, ShardRange{0, num_dcs_});
  }

  total_resource_ = 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) total_resource_ += dc_capacity_[i];

  // Dead-column mask for the fairness gradient (see the header): a column
  // with ub == 0 in every DC gets a zero fairness term, which keeps dense
  // dead-coordinate gradients non-negative and hence compact == dense
  // bitwise under PGD.
  if (params_.beta > 0.0) {
    active_col_.assign(J_eff, 0);
    const double* bounds = polytope_.upper_bounds().data();
    for (std::size_t i = 0; i < num_dcs_; ++i) {
      const double* row = bounds + i * J_eff;
      for (std::size_t j = 0; j < J_eff; ++j) {
        if (row[j] > 0.0) active_col_[j] = 1;
      }
    }
  }

  if (obs::counting()) {
    const std::uint64_t act = num_account_slots_;
    obs::count("fairness.active_accounts", act);
    obs::count("fairness.sparse_skips",
               static_cast<std::uint64_t>(num_accounts_) - act);
  }
}

double PerSlotProblem::queue_value(DataCenterId i, JobTypeId j) const {
  GREFAR_CHECK_MSG(!compact_,
                   "full-space queue_value() is a dense-mode accessor; compact "
                   "callers read view().queue_value");
  GREFAR_CHECK(i < num_dcs_ && j < num_types_);
  return queue_value_[i * num_types_ + j];
}

PerSlotView PerSlotProblem::view() const {
  PerSlotView v;
  v.num_dcs = num_dcs_;
  v.num_types = num_types_eff_;
  v.num_servers = speed_.size();
  v.num_accounts = num_accounts_;
  if (compact_) {
    v.eligible = eligible_eff_.data();
    v.work = work_eff_.data();
    v.inv_work = inv_work_eff_.data();
    v.account_of = account_of_eff_.data();
    v.type_ids = active_types_.data();
  } else {
    v.eligible = eligible_.data();
    v.work = work_.data();
    v.inv_work = inv_work_.data();
    v.account_of = account_of_.data();
    v.type_ids = nullptr;
  }
  v.speed = speed_.data();
  v.busy_power = busy_power_.data();
  v.energy_per_work = energy_per_work_.data();
  v.prices = obs_->prices.data();
  v.availability = obs_->availability.data().data();
  v.queue_value = queue_value_.data();
  v.upper_bounds = polytope_.upper_bounds().data();
  v.dc_capacity = dc_capacity_.data();
  return v;
}

void PerSlotProblem::accumulate_rows(const std::vector<double>& x, bool need_value,
                                     bool need_marginal, bool need_accounts) const {
  const std::size_t J = num_types_eff_;
  const std::size_t S = num_account_slots_;
  const std::uint32_t* acct_slot =
      compact_ ? account_slot_eff_.data() : account_slot_static_.data();
  const double V = params_.V;
  auto per_dc = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const double* xr = x.data() + i * J;
      const double* qv = queue_value_.data() + i * J;
      double dc_work = 0.0;
      double queue_dot = 0.0;
      if (need_accounts) {
        double* ap = account_partial_.data() + i * S;
        std::fill(ap, ap + S, 0.0);
        for (std::size_t j = 0; j < J; ++j) {
          const double u = xr[j];
          dc_work += u;
          queue_dot += qv[j] * u;
          ap[acct_slot[j]] += u;
        }
      } else {
        for (std::size_t j = 0; j < J; ++j) {
          const double u = xr[j];
          dc_work += u;
          queue_dot += qv[j] * u;
        }
      }
      const double energy = curves_[i].smoothed_energy(dc_work, smoothing_band_[i]);
      const double v_phi = V * obs_->prices[i];
      const TieredTariff& tariff = config_->tariff(i);
      if (need_value) {
        dc_value_[i] = v_phi * tariff.smoothed_cost(energy, energy_band_[i]) - queue_dot;
      }
      if (need_marginal) {
        // Chain rule through the tariff: d cost/dW = tariff'(E(W)) * E'(W).
        marginal_scratch_[i] = v_phi * tariff.smoothed_marginal(energy, energy_band_[i]) *
                               curves_[i].smoothed_marginal(dc_work, smoothing_band_[i]);
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, per_dc);
  } else {
    per_dc(0, ShardRange{0, num_dcs_});
  }
}

void PerSlotProblem::merge_account_work() const {
  const std::size_t S = num_account_slots_;
  std::fill(account_scratch_.begin(), account_scratch_.end(), 0.0);
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    const double* ap = account_partial_.data() + i * S;
    for (std::size_t s = 0; s < S; ++s) account_scratch_[s] += ap[s];
  }
}

double PerSlotProblem::value(const std::vector<double>& x) const {
  GREFAR_CHECK(x.size() == num_vars());
  const bool fair = params_.beta > 0.0 && total_resource_ > 0.0;
  accumulate_rows(x, /*need_value=*/true, /*need_marginal=*/false,
                  /*need_accounts=*/fair);
  double total = 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) total += dc_value_[i];
  if (fair) {
    merge_account_work();
    // -V*beta*f(u): f is the (negative) fairness score, evaluated sparsely
    // over the account slots — bitwise equal to the full-M evaluation (see
    // sim/fairness.h).
    const std::uint32_t* ids =
        compact_ ? active_accounts_.data() : referenced_accounts_.data();
    total -= params_.V * params_.beta *
             fairness_.score_active(ids, account_scratch_.data(),
                                    num_account_slots_, total_resource_);
  }
  return total;
}

void PerSlotProblem::gradient(const std::vector<double>& x,
                              std::vector<double>& out) const {
  GREFAR_CHECK(x.size() == num_vars());
  const bool fair = params_.beta > 0.0 && total_resource_ > 0.0;
  accumulate_rows(x, /*need_value=*/false, /*need_marginal=*/true,
                  /*need_accounts=*/fair);
  // Amortized: the caller's gradient buffer is sized once per shape change.
  out.resize(num_vars());  // NOLINT(grefar-hot-path-alloc)
  const std::size_t J = num_types_eff_;
  if (fair) {
    merge_account_work();
    const double inv = fairness_.inv_total(total_resource_);
    const double vb = params_.V * params_.beta;
    const std::uint32_t* ids =
        compact_ ? active_accounts_.data() : referenced_accounts_.data();
    const double* gam = fairness_.gamma().data();
    for (std::size_t s = 0; s < num_account_slots_; ++s) {
      // d/du of -V*beta*f = -V*beta * d f/d r.
      account_term_[s] =
          vb * fairness_kernel::gradient(account_scratch_[s], gam[ids[s]], inv);
    }
    // Scatter the account terms to the type columns once, so the fill below
    // is a pure stride-1 triad. Dead columns (no positive bound anywhere)
    // get 0 — see active_col_ in the header.
    const std::uint32_t* acct_slot =
        compact_ ? account_slot_eff_.data() : account_slot_static_.data();
    for (std::size_t j = 0; j < J; ++j) {
      type_term_[j] = active_col_[j] != 0 ? account_term_[acct_slot[j]] : 0.0;
    }
  }
  auto fill = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const double m_i = marginal_scratch_[i];
      const double* qv = queue_value_.data() + i * J;
      double* out_row = out.data() + i * J;
      if (fair) {
        for (std::size_t j = 0; j < J; ++j) out_row[j] = m_i - qv[j] - type_term_[j];
      } else {
        for (std::size_t j = 0; j < J; ++j) out_row[j] = m_i - qv[j];
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, fill);
  } else {
    fill(0, ShardRange{0, num_dcs_});
  }
}

}  // namespace grefar
