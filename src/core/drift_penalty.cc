#include "core/drift_penalty.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace grefar {

namespace {

/// Work upper bound for one (i, j) pair: h_max (optionally clamped to the
/// queue) in work units, capped by the per-job parallelism constraint.
double work_upper_bound(const ClusterConfig& config, const SlotObservation& obs,
                        const GreFarParams& params, std::size_t i, std::size_t j) {
  if (!config.job_types[j].eligible(i)) return 0.0;
  double d = config.job_types[j].work;
  double h_cap = params.h_max;
  if (params.clamp_to_queue) h_cap = std::min(h_cap, obs.dc_queue(i, j));
  double work_ub = std::max(h_cap, 0.0) * d;
  // Parallelism constraint: each of the (whole) queued jobs can absorb
  // at most max_rate work per slot.
  if (std::isfinite(config.job_types[j].max_rate)) {
    work_ub = std::min(work_ub, config.job_types[j].max_rate *
                                    std::ceil(obs.dc_queue(i, j)));
  }
  return work_ub;
}

CappedBoxPolytope build_polytope(const ClusterConfig& config,
                                 const SlotObservation& obs,
                                 const GreFarParams& params,
                                 const std::vector<EnergyCostCurve>& curves) {
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  std::vector<double> ub(N * J, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      ub[i * J + j] = work_upper_bound(config, obs, params, i, j);
    }
  }
  CappedBoxPolytope polytope(std::move(ub));
  for (std::size_t i = 0; i < N; ++i) {
    std::vector<std::size_t> group(J);
    for (std::size_t j = 0; j < J; ++j) group[j] = i * J + j;
    polytope.add_group(std::move(group), curves[i].capacity());
  }
  return polytope;
}

std::vector<EnergyCostCurve> build_curves(const ClusterConfig& config,
                                          const SlotObservation& obs) {
  std::vector<EnergyCostCurve> curves;
  curves.reserve(config.num_data_centers());
  for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
    std::vector<std::int64_t> avail(config.num_server_types());
    for (std::size_t k = 0; k < avail.size(); ++k) avail[k] = obs.availability(i, k);
    curves.emplace_back(config.server_types, avail);
  }
  return curves;
}

}  // namespace

PerSlotProblem::PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                               const GreFarParams& params)
    : config_(&config),
      obs_(&obs),
      params_(params),
      num_dcs_(config.num_data_centers()),
      num_types_(config.num_job_types()),
      curves_(build_curves(config, obs)),
      fairness_(config.gammas()),
      polytope_(build_polytope(config, obs, params, curves_)),
      queue_value_(num_dcs_ * num_types_, 0.0) {
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK(params_.r_max >= 0.0);
  GREFAR_CHECK(params_.h_max >= 0.0);
  smoothing_band_.reserve(num_dcs_);
  energy_band_.reserve(num_dcs_);
  for (const auto& curve : curves_) {
    total_resource_ += curve.capacity();
    // Blend the energy-curve (and tariff) kinks over 0.1% of the DC's
    // capacity so the objective is C^1 — Frank-Wolfe/PGD need smoothness to
    // converge, and the induced value error (<= band * slope-jump / 4 per
    // kink) is far below anything the experiments can resolve.
    smoothing_band_.push_back(1e-3 * curve.capacity());
    energy_band_.push_back(1e-3 * curve.energy_for_work(curve.capacity()));
  }
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    for (std::size_t j = 0; j < num_types_; ++j) {
      if (!config.job_types[j].eligible(i)) continue;
      queue_value_[index(i, j)] = obs.dc_queue(i, j) / config.job_types[j].work;
    }
  }
  avail_scratch_.resize(config.num_server_types());
  account_scratch_.resize(config.num_accounts());
  marginal_scratch_.resize(num_dcs_);
}

void PerSlotProblem::reset(const SlotObservation& obs) {
  const ClusterConfig& config = *config_;
  GREFAR_CHECK(obs.availability.rows() == num_dcs_ &&
               obs.availability.cols() == config.num_server_types());
  GREFAR_CHECK(obs.dc_queue.rows() == num_dcs_ && obs.dc_queue.cols() == num_types_);
  obs_ = &obs;
  total_resource_ = 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    for (std::size_t k = 0; k < avail_scratch_.size(); ++k) {
      avail_scratch_[k] = obs.availability(i, k);
    }
    curves_[i].rebuild(config.server_types, avail_scratch_);
    double cap = curves_[i].capacity();
    total_resource_ += cap;
    smoothing_band_[i] = 1e-3 * cap;
    energy_band_[i] = 1e-3 * curves_[i].energy_for_work(cap);
    polytope_.set_group_cap(i, cap);
    for (std::size_t j = 0; j < num_types_; ++j) {
      polytope_.set_upper_bound(index(i, j), work_upper_bound(config, obs, params_, i, j));
      queue_value_[index(i, j)] =
          config.job_types[j].eligible(i)
              ? obs.dc_queue(i, j) / config.job_types[j].work
              : 0.0;
    }
  }
}

double PerSlotProblem::queue_value(DataCenterId i, JobTypeId j) const {
  GREFAR_CHECK(i < num_dcs_ && j < num_types_);
  return queue_value_[index(i, j)];
}

double PerSlotProblem::value(const std::vector<double>& x) const {
  GREFAR_CHECK(x.size() == num_vars());
  double total = 0.0;
  std::vector<double>& account_work = account_scratch_;
  account_work.assign(config_->num_accounts(), 0.0);
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    double dc_work = 0.0;
    for (std::size_t j = 0; j < num_types_; ++j) {
      double u = x[index(i, j)];
      dc_work += u;
      total -= queue_value_[index(i, j)] * u;
      account_work[config_->job_types[j].account] += u;
    }
    double energy = curves_[i].smoothed_energy(dc_work, smoothing_band_[i]);
    total += params_.V * obs_->prices[i] *
             config_->tariff(i).smoothed_cost(energy, energy_band_[i]);
  }
  if (params_.beta > 0.0 && total_resource_ > 0.0) {
    // -V*beta*f(u): f is the (negative) fairness score.
    total -= params_.V * params_.beta * fairness_.score(account_work, total_resource_);
  }
  return total;
}

void PerSlotProblem::gradient(const std::vector<double>& x,
                              std::vector<double>& out) const {
  GREFAR_CHECK(x.size() == num_vars());
  out.assign(num_vars(), 0.0);
  std::vector<double>& account_work = account_scratch_;
  account_work.assign(config_->num_accounts(), 0.0);
  std::vector<double>& dc_marginal = marginal_scratch_;
  dc_marginal.assign(num_dcs_, 0.0);
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    double dc_work = 0.0;
    for (std::size_t j = 0; j < num_types_; ++j) {
      double u = x[index(i, j)];
      dc_work += u;
      account_work[config_->job_types[j].account] += u;
    }
    double energy = curves_[i].smoothed_energy(dc_work, smoothing_band_[i]);
    // Chain rule through the tariff: d cost/dW = tariff'(E(W)) * E'(W).
    dc_marginal[i] = params_.V * obs_->prices[i] *
                     config_->tariff(i).smoothed_marginal(energy, energy_band_[i]) *
                     curves_[i].smoothed_marginal(dc_work, smoothing_band_[i]);
  }
  const bool fair = params_.beta > 0.0 && total_resource_ > 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    for (std::size_t j = 0; j < num_types_; ++j) {
      std::size_t idx = index(i, j);
      double g = dc_marginal[i] - queue_value_[idx];
      if (fair) {
        AccountId m = config_->job_types[j].account;
        // d/du of -V*beta*f = -V*beta * score_gradient.
        g -= params_.V * params_.beta *
             fairness_.score_gradient(account_work[m], m, total_resource_);
      }
      out[idx] = g;
    }
  }
}

}  // namespace grefar
