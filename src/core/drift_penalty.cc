#include "core/drift_penalty.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace grefar {

PerSlotProblem::PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                               const GreFarParams& params)
    : config_(&config),
      obs_(&obs),
      params_(params),
      num_dcs_(config.num_data_centers()),
      num_types_(config.num_job_types()),
      num_accounts_(config.num_accounts()),
      curves_(num_dcs_),
      smoothing_band_(num_dcs_, 0.0),
      energy_band_(num_dcs_, 0.0),
      fairness_(config.gammas()),
      polytope_(std::vector<double>(num_dcs_ * num_types_, 0.0)),
      queue_value_(num_dcs_ * num_types_, 0.0) {
  GREFAR_CHECK(params_.V >= 0.0);
  GREFAR_CHECK(params_.beta >= 0.0);
  GREFAR_CHECK(params_.r_max >= 0.0);
  GREFAR_CHECK(params_.h_max >= 0.0);

  // Static SoA arrays: eligibility as a bitmap (JobType::eligible() is a
  // linear scan over D_j — calling it per (i, j) per reset made the rebuild
  // O(N^2 J)), plus flat per-type columns so the hot loops never chase
  // job_types[j] through three indirections.
  eligible_.assign(num_dcs_ * num_types_, 0);
  work_.resize(num_types_);
  inv_work_.resize(num_types_);
  account_of_.resize(num_types_);
  max_rate_.resize(num_types_);
  rate_capped_.resize(num_types_);
  for (std::size_t j = 0; j < num_types_; ++j) {
    const JobType& jt = config.job_types[j];
    work_[j] = jt.work;
    inv_work_[j] = 1.0 / jt.work;
    account_of_[j] = static_cast<std::uint32_t>(jt.account);
    max_rate_[j] = jt.max_rate;
    rate_capped_[j] = std::isfinite(jt.max_rate) ? 1 : 0;
    any_rate_cap_ = any_rate_cap_ || rate_capped_[j] != 0;
    for (DataCenterId i : jt.eligible_dcs) eligible_[i * num_types_ + j] = 1;
  }
  const std::size_t K = config.num_server_types();
  speed_.resize(K);
  busy_power_.resize(K);
  energy_per_work_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    speed_[k] = config.server_types[k].speed;
    busy_power_[k] = config.server_types[k].busy_power;
    energy_per_work_[k] = config.server_types[k].busy_power / config.server_types[k].speed;
  }

  for (std::size_t i = 0; i < num_dcs_; ++i) {
    std::vector<std::size_t> group(num_types_);
    for (std::size_t j = 0; j < num_types_; ++j) group[j] = index(i, j);
    polytope_.add_group(std::move(group), 0.0);
  }

  dc_capacity_.resize(num_dcs_);
  account_scratch_.resize(num_accounts_);
  account_partial_.resize(num_dcs_ * num_accounts_);
  marginal_scratch_.resize(num_dcs_);
  dc_value_.resize(num_dcs_);
  account_term_.resize(num_accounts_);
  type_term_.resize(num_types_);

  reset(obs);
}

void PerSlotProblem::reset(const SlotObservation& obs) {
  const ClusterConfig& config = *config_;
  const std::size_t K = config.num_server_types();
  GREFAR_CHECK(obs.availability.rows() == num_dcs_ && obs.availability.cols() == K);
  GREFAR_CHECK(obs.dc_queue.rows() == num_dcs_ && obs.dc_queue.cols() == num_types_);
  obs_ = &obs;

  const std::int64_t* avail = obs.availability.data().data();
  const double* dc_queue = obs.dc_queue.data().data();
  double* ub = polytope_.mutable_upper_bounds();
  const std::size_t J = num_types_;
  const bool clamp = params_.clamp_to_queue;
  const double h_max = params_.h_max;

  // One fused pass per DC: curve rebuild, bands, group cap, queue values and
  // work upper bounds, all off flat row pointers. Each DC writes only its
  // own slots, so the pass shards cleanly; the only cross-DC reduction
  // (total_resource_) is merged serially below, in DC order, making the
  // result identical at any intra_slot_jobs.
  auto per_dc = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      curves_[i].rebuild(config.server_types, avail + i * K, K);
      const double cap = curves_[i].capacity();
      dc_capacity_[i] = cap;
      smoothing_band_[i] = 1e-3 * cap;
      energy_band_[i] = 1e-3 * curves_[i].energy_for_work(cap);
      polytope_.set_group_cap(i, cap);

      const double* q = dc_queue + i * J;
      const std::uint8_t* el = eligible_.data() + i * J;
      double* qv = queue_value_.data() + i * J;
      double* ub_row = ub + i * J;
      for (std::size_t j = 0; j < J; ++j) {
        qv[j] = el[j] != 0 ? q[j] / work_[j] : 0.0;
        double h_cap = clamp ? std::min(h_max, q[j]) : h_max;
        double work_ub = std::max(h_cap, 0.0) * work_[j];
        // Parallelism constraint (guarded: max_rate * ceil(q) with an
        // infinite rate and an empty queue would be inf * 0 = NaN).
        if (any_rate_cap_ && rate_capped_[j] != 0) {
          work_ub = std::min(work_ub, max_rate_[j] * std::ceil(q[j]));
        }
        ub_row[j] = el[j] != 0 ? work_ub : 0.0;
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, per_dc);
  } else {
    per_dc(0, ShardRange{0, num_dcs_});
  }

  total_resource_ = 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) total_resource_ += dc_capacity_[i];
}

double PerSlotProblem::queue_value(DataCenterId i, JobTypeId j) const {
  GREFAR_CHECK(i < num_dcs_ && j < num_types_);
  return queue_value_[index(i, j)];
}

PerSlotView PerSlotProblem::view() const {
  PerSlotView v;
  v.num_dcs = num_dcs_;
  v.num_types = num_types_;
  v.num_servers = speed_.size();
  v.num_accounts = num_accounts_;
  v.eligible = eligible_.data();
  v.work = work_.data();
  v.inv_work = inv_work_.data();
  v.account_of = account_of_.data();
  v.speed = speed_.data();
  v.busy_power = busy_power_.data();
  v.energy_per_work = energy_per_work_.data();
  v.prices = obs_->prices.data();
  v.availability = obs_->availability.data().data();
  v.queue_value = queue_value_.data();
  v.upper_bounds = polytope_.upper_bounds().data();
  v.dc_capacity = dc_capacity_.data();
  return v;
}

void PerSlotProblem::accumulate_rows(const std::vector<double>& x, bool need_value,
                                     bool need_marginal, bool need_accounts) const {
  const std::size_t J = num_types_;
  const std::size_t M = num_accounts_;
  const double V = params_.V;
  auto per_dc = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const double* xr = x.data() + i * J;
      const double* qv = queue_value_.data() + i * J;
      double dc_work = 0.0;
      double queue_dot = 0.0;
      if (need_accounts) {
        double* ap = account_partial_.data() + i * M;
        std::fill(ap, ap + M, 0.0);
        for (std::size_t j = 0; j < J; ++j) {
          const double u = xr[j];
          dc_work += u;
          queue_dot += qv[j] * u;
          ap[account_of_[j]] += u;
        }
      } else {
        for (std::size_t j = 0; j < J; ++j) {
          const double u = xr[j];
          dc_work += u;
          queue_dot += qv[j] * u;
        }
      }
      const double energy = curves_[i].smoothed_energy(dc_work, smoothing_band_[i]);
      const double v_phi = V * obs_->prices[i];
      const TieredTariff& tariff = config_->tariff(i);
      if (need_value) {
        dc_value_[i] = v_phi * tariff.smoothed_cost(energy, energy_band_[i]) - queue_dot;
      }
      if (need_marginal) {
        // Chain rule through the tariff: d cost/dW = tariff'(E(W)) * E'(W).
        marginal_scratch_[i] = v_phi * tariff.smoothed_marginal(energy, energy_band_[i]) *
                               curves_[i].smoothed_marginal(dc_work, smoothing_band_[i]);
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, per_dc);
  } else {
    per_dc(0, ShardRange{0, num_dcs_});
  }
}

void PerSlotProblem::merge_account_work() const {
  const std::size_t M = num_accounts_;
  std::fill(account_scratch_.begin(), account_scratch_.end(), 0.0);
  for (std::size_t i = 0; i < num_dcs_; ++i) {
    const double* ap = account_partial_.data() + i * M;
    for (std::size_t m = 0; m < M; ++m) account_scratch_[m] += ap[m];
  }
}

double PerSlotProblem::value(const std::vector<double>& x) const {
  GREFAR_CHECK(x.size() == num_vars());
  const bool fair = params_.beta > 0.0 && total_resource_ > 0.0;
  accumulate_rows(x, /*need_value=*/true, /*need_marginal=*/false,
                  /*need_accounts=*/fair);
  double total = 0.0;
  for (std::size_t i = 0; i < num_dcs_; ++i) total += dc_value_[i];
  if (fair) {
    merge_account_work();
    // -V*beta*f(u): f is the (negative) fairness score.
    total -= params_.V * params_.beta * fairness_.score(account_scratch_, total_resource_);
  }
  return total;
}

void PerSlotProblem::gradient(const std::vector<double>& x,
                              std::vector<double>& out) const {
  GREFAR_CHECK(x.size() == num_vars());
  const bool fair = params_.beta > 0.0 && total_resource_ > 0.0;
  accumulate_rows(x, /*need_value=*/false, /*need_marginal=*/true,
                  /*need_accounts=*/fair);
  out.resize(num_vars());
  const std::size_t J = num_types_;
  if (fair) {
    merge_account_work();
    for (std::size_t m = 0; m < num_accounts_; ++m) {
      // d/du of -V*beta*f = -V*beta * score_gradient.
      account_term_[m] = params_.V * params_.beta *
                         fairness_.score_gradient(account_scratch_[m], m, total_resource_);
    }
    // Scatter the M account terms to the J type columns once, so the N*J
    // fill below is a pure stride-1 triad.
    for (std::size_t j = 0; j < J; ++j) type_term_[j] = account_term_[account_of_[j]];
  }
  auto fill = [&](std::size_t, ShardRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const double m_i = marginal_scratch_[i];
      const double* qv = queue_value_.data() + i * J;
      double* out_row = out.data() + i * J;
      if (fair) {
        for (std::size_t j = 0; j < J; ++j) out_row[j] = m_i - qv[j] - type_term_[j];
      } else {
        for (std::size_t j = 0; j < J; ++j) out_row[j] = m_i - qv[j];
      }
    }
  };
  if (IntraSlotExecutor* exec = intra_slot_executor()) {
    exec->run(num_dcs_, fill);
  } else {
    fill(0, ShardRange{0, num_dcs_});
  }
}

}  // namespace grefar
