#include "core/per_slot_solvers.h"

#include <algorithm>
#include <cmath>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {

std::string to_string(PerSlotSolver solver) {
  switch (solver) {
    case PerSlotSolver::kGreedy: return "greedy";
    case PerSlotSolver::kFrankWolfe: return "frank-wolfe";
    case PerSlotSolver::kProjectedGradient: return "pgd";
    case PerSlotSolver::kLp: return "lp";
  }
  return "unknown";
}

namespace {

/// Rebuilds the sorted energy-cost piece list for DC `i` if (and only if)
/// its availability row changed since the pieces were last built. Pieces
/// store the price-free base cost, so price movement never invalidates.
void refresh_pieces(const PerSlotProblem& problem, std::size_t i,
                    PerSlotSolverScratch& scratch) {
  const auto& config = problem.config();
  const auto& obs = problem.observation();
  const std::size_t K = config.num_server_types();
  auto& cached = scratch.cached_avail[i];
  bool fresh = cached.size() == K;
  if (fresh) {
    for (std::size_t k = 0; k < K; ++k) {
      if (cached[k] != obs.availability(i, k)) {
        fresh = false;
        break;
      }
    }
  }
  if (fresh) return;
  cached.resize(K);
  for (std::size_t k = 0; k < K; ++k) cached[k] = obs.availability(i, k);

  // Filling cheapest energy-per-work servers first minimizes E(W), hence
  // also tariff(E(W)) (tariff increasing); subdividing each curve segment at
  // the tariff's tier boundaries yields pieces whose unit cost —
  // V*phi * rate(E) * energy_per_work — is non-decreasing in fill order, so
  // the two-list greedy stays exact. V*phi > 0 scales all of a DC's pieces
  // equally, which is why the cache can store price-free base costs.
  const TieredTariff& tariff = config.tariff(i);
  auto& pieces = scratch.pieces[i];
  pieces.clear();
  double cum_energy = 0.0;
  for (const auto& seg : problem.curve(i).segments()) {
    double seg_work_left = seg.capacity;
    while (seg_work_left > 1e-12) {
      double rate = tariff.marginal(cum_energy);
      // Work until the next tier boundary (or the segment end).
      double work_to_boundary = seg_work_left;
      for (const auto& tier : tariff.tiers()) {
        if (cum_energy < tier.upto) {
          double energy_left = tier.upto - cum_energy;
          if (std::isfinite(energy_left)) {
            work_to_boundary =
                std::min(work_to_boundary, energy_left / seg.energy_per_work);
          }
          break;
        }
      }
      // Guard against zero-progress when sitting exactly on a boundary.
      work_to_boundary = std::max(work_to_boundary, 1e-12);
      work_to_boundary = std::min(work_to_boundary, seg_work_left);
      pieces.push_back({work_to_boundary, rate * seg.energy_per_work});
      cum_energy += work_to_boundary * seg.energy_per_work;
      seg_work_left -= work_to_boundary;
    }
  }
}

/// Chooses the x0 for an iterative (FW/PGD) solve: the previous slot's
/// solution when cross-slot warm starting is on and one is available
/// (the solvers project it onto the current capacity box themselves),
/// otherwise the greedy point. Steady state allocates nothing — both the
/// scratch copy and the projection reuse existing capacity.
void prepare_iterative_warm_start(const PerSlotProblem& problem,
                                  std::vector<double>& warm,
                                  PerSlotSolverScratch* scratch) {
  if (problem.params().warm_start_across_slots && scratch != nullptr &&
      scratch->prev.size() == problem.num_vars()) {
    warm = scratch->prev;
    obs::count("per_slot.cross_slot_warm_starts");
    return;
  }
  obs::count("per_slot.greedy_starts");
  solve_per_slot_greedy_into(problem, warm, scratch);
}

}  // namespace

std::vector<double> solve_per_slot_greedy(const PerSlotProblem& problem) {
  std::vector<double> u;
  solve_per_slot_greedy_into(problem, u, nullptr);
  return u;
}

void solve_per_slot_greedy_into(const PerSlotProblem& problem, std::vector<double>& u,
                                PerSlotSolverScratch* scratch) {
  const auto& config = problem.config();
  const auto& obs = problem.observation();
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  const double V = problem.params().V;

  PerSlotSolverScratch local;
  PerSlotSolverScratch& ws = scratch ? *scratch : local;
  ws.pieces.resize(N);
  ws.cached_avail.resize(N);

  u.assign(problem.num_vars(), 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    // Job demands with positive queue value, most valuable first.
    auto& demands = ws.demands;
    demands.clear();
    for (std::size_t j = 0; j < J; ++j) {
      double ub = problem.polytope().upper_bounds()[problem.index(i, j)];
      double v = problem.queue_value(i, j);
      if (ub > 0.0 && v > 0.0) demands.push_back({j, v, ub});
    }
    std::sort(demands.begin(), demands.end(),
              [](const PerSlotSolverScratch::Demand& a,
                 const PerSlotSolverScratch::Demand& b) { return a.value > b.value; });

    // Server pieces, cheapest marginal-cost-per-work first (cached across
    // slots; see refresh_pieces).
    refresh_pieces(problem, i, ws);
    const double price_scale = V * obs.prices[i];

    std::size_t d_idx = 0;
    for (const auto& piece : ws.pieces[i]) {
      double piece_remaining = piece.capacity;
      double unit_cost = price_scale * piece.base_cost;
      while (piece_remaining > 1e-12 && d_idx < demands.size()) {
        PerSlotSolverScratch::Demand& d = demands[d_idx];
        if (d.value <= unit_cost) {
          // Demands are sorted descending and pieces are non-decreasing in
          // cost, so no remaining pair is profitable.
          d_idx = demands.size();
          break;
        }
        double take = std::min(piece_remaining, d.remaining);
        u[problem.index(i, d.j)] += take;
        piece_remaining -= take;
        d.remaining -= take;
        if (d.remaining <= 1e-12) ++d_idx;
      }
      if (d_idx >= demands.size()) break;
    }
  }
}

std::vector<double> solve_per_slot_frank_wolfe(const PerSlotProblem& problem,
                                               const FrankWolfeOptions& options) {
  std::vector<double> warm = solve_per_slot_greedy(problem);
  auto result = minimize_frank_wolfe(problem, problem.polytope(), std::move(warm),
                                     options);
  return std::move(result.x);
}

std::vector<double> solve_per_slot_pgd(const PerSlotProblem& problem,
                                       const PgdOptions& options) {
  std::vector<double> warm = solve_per_slot_greedy(problem);
  auto result = minimize_projected_gradient(problem, problem.polytope(),
                                            std::move(warm), options);
  return std::move(result.x);
}

LinearProgram build_per_slot_lp(const PerSlotProblem& problem) {
  const auto& config = problem.config();
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the per-slot LP models linear billing only; use the greedy "
                   "or a convex solver with tiered tariffs");
  const auto& obs = problem.observation();
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  const std::size_t K = config.num_server_types();
  const double V = problem.params().V;

  // Variables: u_{i,j} at i*J+j, then w_{i,k} at N*J + i*K + k.
  LinearProgram lp(N * J + N * K);
  auto u_idx = [&](std::size_t i, std::size_t j) { return i * J + j; };
  auto w_idx = [&](std::size_t i, std::size_t k) { return N * J + i * K + k; };

  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      lp.set_objective(u_idx(i, j), -problem.queue_value(i, j));
      lp.add_upper_bound(u_idx(i, j),
                         problem.polytope().upper_bounds()[problem.index(i, j)]);
    }
    std::vector<std::pair<std::size_t, double>> balance;
    for (std::size_t j = 0; j < J; ++j) balance.emplace_back(u_idx(i, j), 1.0);
    for (std::size_t k = 0; k < K; ++k) {
      const auto& st = config.server_types[k];
      lp.set_objective(w_idx(i, k),
                       V * obs.prices[i] * st.busy_power / st.speed);
      lp.add_upper_bound(w_idx(i, k),
                         static_cast<double>(obs.availability(i, k)) * st.speed);
      balance.emplace_back(w_idx(i, k), -1.0);
    }
    lp.add_constraint_sparse(balance, ConstraintSense::kLessEqual, 0.0);
  }
  return lp;
}

std::vector<double> solve_per_slot_lp(const PerSlotProblem& problem) {
  LinearProgram lp = build_per_slot_lp(problem);
  LpSolution sol = solve_lp(lp);
  GREFAR_CHECK_MSG(sol.optimal(), "per-slot LP not optimal: " << to_string(sol.status));
  std::vector<double> u(problem.num_vars());
  std::copy_n(sol.x.begin(), problem.num_vars(), u.begin());
  return u;
}

std::vector<double> solve_per_slot(const PerSlotProblem& problem, PerSlotSolver solver) {
  std::vector<double> u;
  solve_per_slot_into(problem, solver, u, nullptr);
  return u;
}

void solve_per_slot_into(const PerSlotProblem& problem, PerSlotSolver solver,
                         std::vector<double>& u, PerSlotSolverScratch* scratch) {
  switch (solver) {
    case PerSlotSolver::kGreedy:
      solve_per_slot_greedy_into(problem, u, scratch);
      return;
    case PerSlotSolver::kFrankWolfe: {
      std::vector<double>& warm = scratch ? scratch->warm : u;
      prepare_iterative_warm_start(problem, warm, scratch);
      auto result = minimize_frank_wolfe(problem, problem.polytope(), warm);
      u = std::move(result.x);
      if (scratch != nullptr) scratch->prev = u;
      return;
    }
    case PerSlotSolver::kProjectedGradient: {
      std::vector<double>& warm = scratch ? scratch->warm : u;
      prepare_iterative_warm_start(problem, warm, scratch);
      auto result = minimize_projected_gradient(problem, problem.polytope(), warm);
      u = std::move(result.x);
      if (scratch != nullptr) scratch->prev = u;
      return;
    }
    case PerSlotSolver::kLp:
      u = solve_per_slot_lp(problem);
      return;
  }
  GREFAR_CHECK_MSG(false, "unreachable per-slot solver");
}

}  // namespace grefar
