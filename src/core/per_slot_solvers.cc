#include "core/per_slot_solvers.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {

std::string to_string(PerSlotSolver solver) {
  switch (solver) {
    case PerSlotSolver::kGreedy: return "greedy";
    case PerSlotSolver::kFrankWolfe: return "frank-wolfe";
    case PerSlotSolver::kProjectedGradient: return "pgd";
    case PerSlotSolver::kLp: return "lp";
  }
  return "unknown";
}

namespace {

/// Rebuilds the sorted energy-cost piece list for DC `i` if (and only if)
/// its availability row changed since the pieces were last built. Pieces
/// store the price-free base cost, so price movement never invalidates.
/// Returns true when the list was actually rebuilt.
bool refresh_pieces(const PerSlotProblem& problem, const PerSlotView& v,
                    std::size_t i, PerSlotSolverScratch& scratch) {
  const auto& config = problem.config();
  const std::size_t K = v.num_servers;
  const std::int64_t* avail_row = v.availability + i * K;
  auto& cached = scratch.cached_avail[i];
  if (cached.size() == K &&
      std::memcmp(cached.data(), avail_row, K * sizeof(std::int64_t)) == 0) {
    return false;
  }
  cached.assign(avail_row, avail_row + K);

  // Filling cheapest energy-per-work servers first minimizes E(W), hence
  // also tariff(E(W)) (tariff increasing); subdividing each curve segment at
  // the tariff's tier boundaries yields pieces whose unit cost —
  // V*phi * rate(E) * energy_per_work — is non-decreasing in fill order, so
  // the two-list greedy stays exact. V*phi > 0 scales all of a DC's pieces
  // equally, which is why the cache can store price-free base costs.
  const TieredTariff& tariff = config.tariff(i);
  auto& pieces = scratch.pieces[i];
  pieces.clear();
  double cum_energy = 0.0;
  for (const auto& seg : problem.curve(i).segments()) {
    double seg_work_left = seg.capacity;
    while (seg_work_left > 1e-12) {
      double rate = tariff.marginal(cum_energy);
      // Work until the next tier boundary (or the segment end).
      double work_to_boundary = seg_work_left;
      for (const auto& tier : tariff.tiers()) {
        if (cum_energy < tier.upto) {
          double energy_left = tier.upto - cum_energy;
          if (std::isfinite(energy_left)) {
            work_to_boundary =
                std::min(work_to_boundary, energy_left / seg.energy_per_work);
          }
          break;
        }
      }
      // Guard against zero-progress when sitting exactly on a boundary.
      work_to_boundary = std::max(work_to_boundary, 1e-12);
      work_to_boundary = std::min(work_to_boundary, seg_work_left);
      pieces.push_back({work_to_boundary, rate * seg.energy_per_work});
      cum_energy += work_to_boundary * seg.energy_per_work;
      seg_work_left -= work_to_boundary;
    }
  }
  return true;
}

/// Chooses the x0 for an iterative (FW/PGD) solve: the previous slot's
/// solution when cross-slot warm starting is on and one is available,
/// otherwise the greedy point. Steady state allocates nothing — the copy,
/// the remap scratch and the projection all reuse existing capacity.
///
/// The previous solution is clamped onto the current bound box entry-wise
/// (coordinates whose bound collapsed to 0 — a type whose queue drained —
/// start at exactly 0). The clamp is what keeps the compact and dense x0
/// bitwise aligned: a compact warm start simply has no slot for a
/// now-inactive type, and the dense one clamps the stale value to the same
/// 0.0. Across differing coordinate systems (dense <-> compact, or two
/// different active-type lists) the solution is remapped by job type id.
void prepare_iterative_warm_start(const PerSlotProblem& problem,
                                  std::vector<double>& warm,
                                  PerSlotSolverScratch* scratch) {
  // prev_valid, not prev.empty(): an idle compact slot legitimately saves a
  // zero-variable solution, and the slot after it must still warm-start
  // (from all zeros) exactly like the dense run does.
  if (problem.params().warm_start_across_slots && scratch != nullptr &&
      scratch->prev_valid) {
    const std::size_t N = problem.config().num_data_centers();
    const std::size_t J_full = problem.config().num_job_types();
    const bool prev_compact = scratch->prev_compact;
    const std::size_t J_prev = prev_compact ? scratch->prev_types.size() : J_full;
    if (scratch->prev.size() == N * J_prev) {
      const bool now_compact = problem.compact();
      const std::size_t J_now = problem.num_types_effective();
      const double* ub = problem.polytope().upper_bounds().data();
      const double* prev = scratch->prev.data();
      warm.assign(problem.num_vars(), 0.0);
      if (!prev_compact && !now_compact) {
        for (std::size_t k = 0; k < warm.size(); ++k) {
          warm[k] = std::clamp(prev[k], 0.0, ub[k]);
        }
      } else if (!prev_compact) {
        // Dense -> compact: gather the active columns.
        const std::uint32_t* ids = problem.active_type_ids().data();
        for (std::size_t i = 0; i < N; ++i) {
          const double* prev_row = prev + i * J_full;
          const double* ub_row = ub + i * J_now;
          double* warm_row = warm.data() + i * J_now;
          for (std::size_t a = 0; a < J_now; ++a) {
            warm_row[a] = std::clamp(prev_row[ids[a]], 0.0, ub_row[a]);
          }
        }
      } else if (!now_compact) {
        // Compact -> dense: scatter back to full columns (the rest stay 0,
        // matching the 0 those coordinates held in the compact solution).
        const std::uint32_t* prev_ids = scratch->prev_types.data();
        for (std::size_t i = 0; i < N; ++i) {
          const double* prev_row = prev + i * J_prev;
          const double* ub_row = ub + i * J_full;
          double* warm_row = warm.data() + i * J_full;
          for (std::size_t ap = 0; ap < J_prev; ++ap) {
            const std::uint32_t j = prev_ids[ap];
            warm_row[j] = std::clamp(prev_row[ap], 0.0, ub_row[j]);
          }
        }
      } else {
        // Compact -> compact: align the two ascending type lists once, then
        // remap rows through the merged index (UINT32_MAX = newly active).
        const std::uint32_t* ids = problem.active_type_ids().data();
        const std::uint32_t* prev_ids = scratch->prev_types.data();
        constexpr std::uint32_t kNone = 0xffffffffu;
        scratch->warm_map.assign(J_now, kNone);
        for (std::size_t a = 0, ap = 0; a < J_now && ap < J_prev;) {
          if (prev_ids[ap] < ids[a]) {
            ++ap;
          } else if (prev_ids[ap] > ids[a]) {
            ++a;
          } else {
            scratch->warm_map[a] = static_cast<std::uint32_t>(ap);
            ++a;
            ++ap;
          }
        }
        for (std::size_t i = 0; i < N; ++i) {
          const double* prev_row = prev + i * J_prev;
          const double* ub_row = ub + i * J_now;
          double* warm_row = warm.data() + i * J_now;
          for (std::size_t a = 0; a < J_now; ++a) {
            const std::uint32_t ap = scratch->warm_map[a];
            if (ap != kNone) warm_row[a] = std::clamp(prev_row[ap], 0.0, ub_row[a]);
          }
        }
      }
      obs::count("per_slot.cross_slot_warm_starts");
      return;
    }
  }
  obs::count("per_slot.greedy_starts");
  solve_per_slot_greedy_into(problem, warm, scratch);
}

/// Records an iterative solution for the next slot's warm start, tagged
/// with the coordinate system it lives in.
void save_iterative_solution(const PerSlotProblem& problem,
                             const std::vector<double>& u,
                             PerSlotSolverScratch& scratch) {
  scratch.prev = u;
  scratch.prev_valid = true;
  scratch.prev_compact = problem.compact();
  if (problem.compact()) {
    scratch.prev_types = problem.active_type_ids();
  } else {
    scratch.prev_types.clear();
  }
}

}  // namespace

std::vector<double> solve_per_slot_greedy(const PerSlotProblem& problem) {
  std::vector<double> u;
  solve_per_slot_greedy_into(problem, u, nullptr);
  return u;
}

void solve_per_slot_greedy_into(const PerSlotProblem& problem, std::vector<double>& u,
                                PerSlotSolverScratch* scratch) {
  const PerSlotView v = problem.view();
  const std::size_t N = v.num_dcs;
  const std::size_t J = v.num_types;
  const double V = problem.params().V;

  // A compact idle slot has zero active types: nothing can be routed, and
  // the (qv, ub) demand-cache keys degenerate to empty rows that compare
  // equal to a *cleared* key (size 0 == J), which would serve the previous
  // busy slot's demand list against a zero-variable u. Return the empty
  // action before touching any scratch so the caches keep describing the
  // last nonzero-column slot.
  if (J == 0) {
    u.assign(problem.num_vars(), 0.0);
    return;
  }

  // NOLINTBEGIN(grefar-hot-path-alloc): per-DC scratch rows are sized on the
  // first solve (N is fixed per cluster) and reused in place afterwards.
  PerSlotSolverScratch local;
  PerSlotSolverScratch& ws = scratch ? *scratch : local;
  ws.pieces.resize(N);
  ws.cached_avail.resize(N);
  ws.demand_cache.resize(N);
  ws.cached_qv.resize(N);
  ws.cached_ub.resize(N);
  // NOLINTEND(grefar-hot-path-alloc)

  // Demand caches are keyed on raw (qv, ub) rows; in compact mode column a
  // means job type v.type_ids[a], so a changed active-type list must clear
  // the keys even when the bytes happen to match (same A, same values,
  // different types). Dense rows always carry the same column identity.
  // problem.compact(), not v.type_ids != nullptr: an empty active-type list
  // (idle slot) is still a compact problem, but its data() pointer is null.
  const bool compact = problem.compact();
  const std::vector<std::uint32_t>& active_ids = problem.active_type_ids();
  const bool same_columns =
      compact == ws.cache_compact && (!compact || ws.cache_types == active_ids);
  if (!same_columns) {
    for (auto& key : ws.cached_qv) key.clear();
    ws.cache_compact = compact;
    if (compact) {
      ws.cache_types = active_ids;
    } else {
      ws.cache_types.clear();
    }
  }
  IntraSlotExecutor* exec = problem.intra_slot_executor();
  const std::size_t shards =
      exec != nullptr ? std::min(exec->jobs(), std::max<std::size_t>(N, 1)) : 1;
  if (ws.fill_demands.size() < shards)
    ws.fill_demands.resize(shards);  // NOLINT(grefar-hot-path-alloc)
  ws.count_stage.assign(shards * 4, 0);

  u.assign(problem.num_vars(), 0.0);
  auto fill_dc = [&](std::size_t shard, ShardRange range) {
    std::uint64_t demand_sorts = 0;
    std::uint64_t demand_reuses = 0;
    std::uint64_t piece_rebuilds = 0;
    std::uint64_t piece_reuses = 0;
    auto& demands = ws.fill_demands[shard];
    for (std::size_t i = range.begin; i < range.end; ++i) {
      // Job demands with positive queue value, most valuable first. The
      // sorted list is cached per DC, keyed on the (queue-value, bound)
      // rows: a slot where only prices moved leaves both rows untouched and
      // reuses the order outright (prices rescale every piece of a DC
      // equally, so neither list can reorder — see DESIGN.md §11).
      const double* qv_row = v.queue_value + i * J;
      const double* ub_row = v.upper_bounds + i * J;
      auto& key_qv = ws.cached_qv[i];
      auto& key_ub = ws.cached_ub[i];
      auto& cache = ws.demand_cache[i];
      const bool fresh =
          key_qv.size() == J &&
          std::memcmp(key_qv.data(), qv_row, J * sizeof(double)) == 0 &&
          std::memcmp(key_ub.data(), ub_row, J * sizeof(double)) == 0;
      if (!fresh) {
        key_qv.assign(qv_row, qv_row + J);
        key_ub.assign(ub_row, ub_row + J);
        cache.clear();
        for (std::size_t j = 0; j < J; ++j) {
          if (ub_row[j] > 0.0 && qv_row[j] > 0.0) cache.push_back({j, qv_row[j], ub_row[j]});
        }
        std::sort(cache.begin(), cache.end(),
                  [](const PerSlotSolverScratch::Demand& a,
                     const PerSlotSolverScratch::Demand& b) { return a.value > b.value; });
        ++demand_sorts;
      } else {
        ++demand_reuses;
      }
      // The cache entry stays immutable (it must survive the fill for the
      // next slot's key check); the merge consumes a per-shard working copy.
      demands.assign(cache.begin(), cache.end());

      // Server pieces, cheapest marginal-cost-per-work first (cached across
      // slots; see refresh_pieces).
      if (refresh_pieces(problem, v, i, ws)) ++piece_rebuilds; else ++piece_reuses;
      const double price_scale = V * v.prices[i];

      double* u_row = u.data() + i * J;
      std::size_t d_idx = 0;
      for (const auto& piece : ws.pieces[i]) {
        double piece_remaining = piece.capacity;
        double unit_cost = price_scale * piece.base_cost;
        while (piece_remaining > 1e-12 && d_idx < demands.size()) {
          PerSlotSolverScratch::Demand& d = demands[d_idx];
          if (d.value <= unit_cost) {
            // Demands are sorted descending and pieces are non-decreasing in
            // cost, so no remaining pair is profitable.
            d_idx = demands.size();
            break;
          }
          double take = std::min(piece_remaining, d.remaining);
          u_row[d.j] += take;
          piece_remaining -= take;
          d.remaining -= take;
          if (d.remaining <= 1e-12) ++d_idx;
        }
        if (d_idx >= demands.size()) break;
      }
    }
    ws.count_stage[shard * 4 + 0] = demand_sorts;
    ws.count_stage[shard * 4 + 1] = demand_reuses;
    ws.count_stage[shard * 4 + 2] = piece_rebuilds;
    ws.count_stage[shard * 4 + 3] = piece_reuses;
  };
  if (exec != nullptr) {
    exec->run(N, fill_dc);
  } else {
    fill_dc(0, ShardRange{0, N});
  }

  // Flush the staged counters from the calling thread (pool workers carry
  // their own, usually inactive, registries). Totals are sums of per-DC
  // events, so they are identical at any intra_slot_jobs.
  if (obs::counting()) {
    std::uint64_t totals[4] = {0, 0, 0, 0};
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t c = 0; c < 4; ++c) totals[c] += ws.count_stage[s * 4 + c];
    }
    if (totals[0] != 0) obs::count("per_slot.demand_sorts", totals[0]);
    if (totals[1] != 0) obs::count("per_slot.demand_sort_reuses", totals[1]);
    if (totals[2] != 0) obs::count("per_slot.piece_rebuilds", totals[2]);
    if (totals[3] != 0) obs::count("per_slot.piece_reuses", totals[3]);
  }
}

std::vector<double> solve_per_slot_frank_wolfe(const PerSlotProblem& problem,
                                               const FrankWolfeOptions& options) {
  std::vector<double> warm = solve_per_slot_greedy(problem);
  auto result = minimize_frank_wolfe(problem, problem.polytope(), std::move(warm),
                                     options);
  return std::move(result.x);
}

std::vector<double> solve_per_slot_pgd(const PerSlotProblem& problem,
                                       const PgdOptions& options) {
  std::vector<double> warm = solve_per_slot_greedy(problem);
  auto result = minimize_projected_gradient(problem, problem.polytope(),
                                            std::move(warm), options);
  return std::move(result.x);
}

LinearProgram build_per_slot_lp(const PerSlotProblem& problem) {
  const auto& config = problem.config();
  GREFAR_CHECK_MSG(!problem.compact(),
                   "the per-slot LP builder reads full-space accessors; "
                   "compact problems are solved by greedy/PGD only");
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the per-slot LP models linear billing only; use the greedy "
                   "or a convex solver with tiered tariffs");
  const auto& obs = problem.observation();
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  const std::size_t K = config.num_server_types();
  const double V = problem.params().V;

  // Variables: u_{i,j} at i*J+j, then w_{i,k} at N*J + i*K + k.
  LinearProgram lp(N * J + N * K);
  auto u_idx = [&](std::size_t i, std::size_t j) { return i * J + j; };
  auto w_idx = [&](std::size_t i, std::size_t k) { return N * J + i * K + k; };

  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      lp.set_objective(u_idx(i, j), -problem.queue_value(i, j));
      lp.add_upper_bound(u_idx(i, j),
                         problem.polytope().upper_bounds()[problem.index(i, j)]);
    }
    std::vector<std::pair<std::size_t, double>> balance;
    for (std::size_t j = 0; j < J; ++j) balance.emplace_back(u_idx(i, j), 1.0);
    for (std::size_t k = 0; k < K; ++k) {
      const auto& st = config.server_types[k];
      lp.set_objective(w_idx(i, k),
                       V * obs.prices[i] * st.busy_power / st.speed);
      lp.add_upper_bound(w_idx(i, k),
                         static_cast<double>(obs.availability(i, k)) * st.speed);
      balance.emplace_back(w_idx(i, k), -1.0);
    }
    lp.add_constraint_sparse(balance, ConstraintSense::kLessEqual, 0.0);
  }
  return lp;
}

std::vector<double> solve_per_slot_lp(const PerSlotProblem& problem) {
  LinearProgram lp = build_per_slot_lp(problem);
  LpSolution sol = solve_lp(lp);
  GREFAR_CHECK_MSG(sol.optimal(), "per-slot LP not optimal: " << to_string(sol.status));
  std::vector<double> u(problem.num_vars());
  std::copy_n(sol.x.begin(), problem.num_vars(), u.begin());
  return u;
}

std::vector<double> solve_per_slot(const PerSlotProblem& problem, PerSlotSolver solver) {
  std::vector<double> u;
  solve_per_slot_into(problem, solver, u, nullptr);
  return u;
}

void solve_per_slot_into(const PerSlotProblem& problem, PerSlotSolver solver,
                         std::vector<double>& u, PerSlotSolverScratch* scratch) {
  switch (solver) {
    case PerSlotSolver::kGreedy:
      solve_per_slot_greedy_into(problem, u, scratch);
      return;
    case PerSlotSolver::kFrankWolfe: {
      std::vector<double>& warm = scratch ? scratch->warm : u;
      prepare_iterative_warm_start(problem, warm, scratch);
      auto result = minimize_frank_wolfe(problem, problem.polytope(), warm);
      u = std::move(result.x);
      if (scratch != nullptr) save_iterative_solution(problem, u, *scratch);
      return;
    }
    case PerSlotSolver::kProjectedGradient: {
      std::vector<double>& warm = scratch ? scratch->warm : u;
      prepare_iterative_warm_start(problem, warm, scratch);
      auto result = minimize_projected_gradient(problem, problem.polytope(), warm);
      u = std::move(result.x);
      if (scratch != nullptr) save_iterative_solution(problem, u, *scratch);
      return;
    }
    case PerSlotSolver::kLp: {
      if (scratch != nullptr && scratch->lp_warm_enabled) {
        // Warm mode (opt-in, GreFarScheduler::begin_run keep_warm): re-enter
        // the previous solve's basis — same optimum, not bitwise the same
        // vertex, so this never runs under a bitwise-equality contract.
        LinearProgram lp = build_per_slot_lp(problem);
        LpSolution sol;
        if (scratch->lp_basis_valid) {
          obs::count("per_slot.lp_warm_starts");
          sol = solve_lp(lp, scratch->lp_basis);
        } else {
          sol = solve_lp(lp);
        }
        GREFAR_CHECK_MSG(sol.optimal(),
                         "per-slot LP not optimal: " << to_string(sol.status));
        u.assign(sol.x.begin(), sol.x.begin() +
                                    static_cast<std::ptrdiff_t>(problem.num_vars()));
        scratch->lp_basis = std::move(sol.basis);
        scratch->lp_basis_valid = scratch->lp_basis.valid();
        return;
      }
      u = solve_per_slot_lp(problem);
      return;
    }
  }
  GREFAR_CHECK_MSG(false, "unreachable per-slot solver");
}

}  // namespace grefar
