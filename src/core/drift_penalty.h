// The GreFar per-slot optimization problem (paper eq. (14)).
//
// At slot t GreFar minimizes, over the action z(t),
//
//   V*g(t) - sum_j Q_j [sum_{i in D_j} r_{i,j}] + sum_{i,j} q_{i,j} (r_{i,j} - h_{i,j})
//
// The r- and h-parts separate:
//   * r_{i,j} has linear coefficient (q_{i,j} - Q_j): route maximally where
//     the DC queue is shorter than the central queue (handled in
//     GreFarScheduler directly);
//   * the h/b-part, in work variables u_{i,j} = h_{i,j} * d_j, is the convex
//     program built here:
//
//       min  sum_i [ V*phi_i*C_i(sum_j u_{i,j}) - sum_j (q_{i,j}/d_j) u_{i,j} ]
//            + V*beta * sum_m (r_m(u)/R - gamma_m)^2
//       s.t. 0 <= u_{i,j} <= ub_{i,j},  sum_j u_{i,j} <= cap_i,
//
// with C_i the minimum-energy curve and r_m(u) the per-account work. This
// file exposes the problem as a ConvexObjective over a CappedBoxPolytope so
// any first-order solver can run on it; variables are flattened as
// index = i * J + j.
#pragma once

#include <memory>
#include <vector>

#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/scheduler.h"
#include "solver/capped_box.h"
#include "solver/objective.h"

namespace grefar {

/// Tuning knobs shared by the per-slot problem and the GreFar scheduler.
struct GreFarParams {
  double V = 1.0;      // cost-delay parameter (>= 0)
  double beta = 0.0;   // energy-fairness parameter (>= 0)
  double r_max = 1e9;  // per-(i,j) routing bound r^max (eq. (4))
  double h_max = 1e9;  // per-(i,j) processing bound h^max (eq. (5))
  /// Cap processing by the work actually queued (and routing by the jobs
  /// actually queued). Disable to reproduce the literal dynamics (12)-(13)
  /// where "null" work is permitted.
  bool clamp_to_queue = true;
  /// Evaluate the processing decision against the post-routing queues
  /// q_{i,j} + r_{i,j} (the state service actually sees, since routing
  /// executes first within a slot). Disable for the literal eq. (13)
  /// ordering, which adds one slot of service lag.
  bool process_after_routing = true;
  /// Start the iterative per-slot solvers (Frank-Wolfe / PGD) from the
  /// previous slot's solution (projected onto the current capacity box)
  /// instead of the greedy point. Queues and prices move slowly slot to
  /// slot, so the previous optimum is usually a few iterations from the new
  /// one. Disable for A/B comparison against the historical cold start;
  /// ignored by the greedy and LP solvers, which are not iterative.
  bool warm_start_across_slots = true;
};

/// The per-slot convex program in work units u (flattened N*J vector).
///
/// Hot-path note: a long-lived scheduler constructs one PerSlotProblem on
/// its first slot and calls reset() on every later slot — curves, polytope,
/// and all internal vectors are then updated in place, so steady-state
/// problem construction is allocation-free. An instance is single-threaded;
/// concurrent runs each own their problem.
class PerSlotProblem final : public ConvexObjective {
 public:
  PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                 const GreFarParams& params);

  /// Re-targets the problem at a new observation of the *same* cluster and
  /// params, reusing all internal storage. `obs` must outlive the problem's
  /// next use (the problem keeps a pointer, not a copy).
  void reset(const SlotObservation& obs);

  std::size_t num_vars() const { return num_dcs_ * num_types_; }
  std::size_t index(DataCenterId i, JobTypeId j) const { return i * num_types_ + j; }

  /// Feasible region: box [0, ub] with one capacity group per data center.
  const CappedBoxPolytope& polytope() const { return polytope_; }

  /// Energy curves per data center for this slot's availability.
  const EnergyCostCurve& curve(DataCenterId i) const { return curves_[i]; }

  /// Total compute resource R(t) (work units across all DCs).
  double total_resource() const { return total_resource_; }

  /// Queue benefit per unit work: q_{i,j} / d_j (0 for ineligible pairs).
  double queue_value(DataCenterId i, JobTypeId j) const;

  // ConvexObjective: the h-part of eq. (14) as described above.
  double value(const std::vector<double>& x) const override;
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override;

  const GreFarParams& params() const { return params_; }
  const ClusterConfig& config() const { return *config_; }
  const SlotObservation& observation() const { return *obs_; }

 private:
  const ClusterConfig* config_;
  const SlotObservation* obs_;
  GreFarParams params_;
  std::size_t num_dcs_;
  std::size_t num_types_;
  std::vector<EnergyCostCurve> curves_;
  std::vector<double> smoothing_band_;  // per-DC kink-blend half-width (work)
  std::vector<double> energy_band_;     // per-DC tariff-blend half-width (energy)
  double total_resource_ = 0.0;
  FairnessFunction fairness_;
  CappedBoxPolytope polytope_;
  std::vector<double> queue_value_;  // q_{i,j}/d_j, flattened

  // Reused scratch: value()/gradient() run every solver iteration and must
  // not touch the heap.
  std::vector<std::int64_t> avail_scratch_;        // one DC's availability row
  mutable std::vector<double> account_scratch_;    // per-account work
  mutable std::vector<double> marginal_scratch_;   // per-DC marginal cost
};

}  // namespace grefar
