// The GreFar per-slot optimization problem (paper eq. (14)).
//
// At slot t GreFar minimizes, over the action z(t),
//
//   V*g(t) - sum_j Q_j [sum_{i in D_j} r_{i,j}] + sum_{i,j} q_{i,j} (r_{i,j} - h_{i,j})
//
// The r- and h-parts separate:
//   * r_{i,j} has linear coefficient (q_{i,j} - Q_j): route maximally where
//     the DC queue is shorter than the central queue (handled in
//     GreFarScheduler directly);
//   * the h/b-part, in work variables u_{i,j} = h_{i,j} * d_j, is the convex
//     program built here:
//
//       min  sum_i [ V*phi_i*C_i(sum_j u_{i,j}) - sum_j (q_{i,j}/d_j) u_{i,j} ]
//            + V*beta * sum_m (r_m(u)/R - gamma_m)^2
//       s.t. 0 <= u_{i,j} <= ub_{i,j},  sum_j u_{i,j} <= cap_i,
//
// with C_i the minimum-energy curve and r_m(u) the per-account work. This
// file exposes the problem as a ConvexObjective over a CappedBoxPolytope so
// any first-order solver can run on it; variables are flattened as
// index = i * J + j.
//
// Compact (active-type) mode — DESIGN.md §12. At million-type /
// million-account scale almost every column is dead in any given slot: a
// type with nothing queued anywhere has queue value 0 and (with
// clamp_to_queue) upper bound 0, so no solver can put work on it. When the
// observation carries the active-type hint and sparse mode is enabled (the
// GreFar scheduler does this for the greedy and PGD solvers), reset()
// re-shapes the problem onto the A = |active| types only: variables become
// i * A + a with a indexing the ascending active-type list, every per-type
// array is gathered to length A, and the fairness state collapses to the
// accounts those types reference. Per-slot cost is then O(N*A + A log A)
// instead of O(N*J), and — by the exact-zero kernel argument in
// sim/fairness.h plus the dead-column gradient rule below — the solve is
// *bit-identical* to the dense solve scattered back to full coordinates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/problem_view.h"
#include "parallel/shard.h"
#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/scheduler.h"
#include "solver/capped_box.h"
#include "solver/objective.h"
#include "util/annotations.h"
#include "util/check.h"

namespace grefar {

/// Tuning knobs shared by the per-slot problem and the GreFar scheduler.
struct GreFarParams {
  double V = 1.0;      // cost-delay parameter (>= 0)
  double beta = 0.0;   // energy-fairness parameter (>= 0)
  double r_max = 1e9;  // per-(i,j) routing bound r^max (eq. (4))
  double h_max = 1e9;  // per-(i,j) processing bound h^max (eq. (5))
  /// Cap processing by the work actually queued (and routing by the jobs
  /// actually queued). Disable to reproduce the literal dynamics (12)-(13)
  /// where "null" work is permitted.
  bool clamp_to_queue = true;
  /// Evaluate the processing decision against the post-routing queues
  /// q_{i,j} + r_{i,j} (the state service actually sees, since routing
  /// executes first within a slot). Disable for the literal eq. (13)
  /// ordering, which adds one slot of service lag.
  bool process_after_routing = true;
  /// Start the iterative per-slot solvers (Frank-Wolfe / PGD) from the
  /// previous slot's solution (projected onto the current capacity box)
  /// instead of the greedy point. Queues and prices move slowly slot to
  /// slot, so the previous optimum is usually a few iterations from the new
  /// one. Disable for A/B comparison against the historical cold start;
  /// ignored by the greedy and LP solvers, which are not iterative.
  bool warm_start_across_slots = true;
  /// Intra-slot data parallelism: shard the per-slot rebuild, the greedy
  /// fill and the PGD/FW gradient/value kernels across data centers on a
  /// persistent worker pool. 1 (default) keeps the serial fast path; the
  /// pooled path only engages when num_vars() >= intra_slot_min_vars, so
  /// small instances never pay synchronization for kernels that take
  /// microseconds. Decisions are bit-identical at any value (see
  /// DESIGN.md §11: kernels write per-DC slots, merged in DC order).
  std::size_t intra_slot_jobs = 1;
  /// Size threshold (in N*J decision variables) below which the sharded
  /// kernels stay inline even when intra_slot_jobs > 1.
  std::size_t intra_slot_min_vars = 4096;
};

/// The per-slot convex program in work units u (flattened N*J vector, or
/// N*A in compact mode — see the header comment).
///
/// Hot-path note: a long-lived scheduler constructs one PerSlotProblem on
/// its first slot and calls reset() on every later slot — curves, polytope,
/// and all internal vectors are then updated in place, so steady-state
/// problem construction is allocation-free (compact-mode buffers reach
/// their high-water size after a few slots and are reused thereafter). An
/// instance is single-threaded from the caller's point of view (concurrent
/// runs each own their problem); with an intra-slot executor attached, its
/// kernels internally fan per-DC work over the executor's pool and join
/// before returning.
class PerSlotProblem final : public ConvexObjective {
 public:
  PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                 const GreFarParams& params);

  /// Deferred variant: bakes the config-derived state but performs no
  /// initial reset — the caller must reset() before any other use. Lets a
  /// caller that re-resets immediately (sparse mode / executor attached
  /// after construction) pay for and count exactly one reset, the same as
  /// every later slot.
  PerSlotProblem(const ClusterConfig& config, const GreFarParams& params);

  /// Re-targets the problem at a new observation of the *same* cluster and
  /// params, reusing all internal storage. `obs` must outlive the problem's
  /// next use (the problem keeps a pointer, not a copy).
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void reset(const SlotObservation& obs);

  /// Re-targets the problem at new GreFar parameters for the *same* cluster
  /// (sweep-leg reuse). Safe because the constructor bakes only
  /// config-derived state; everything parameter-dependent is recomputed from
  /// params_ inside the next reset(). Runs the constructor's param checks.
  void rebind_params(const GreFarParams& params) {
    GREFAR_CHECK(params.V >= 0.0);
    GREFAR_CHECK(params.beta >= 0.0);
    GREFAR_CHECK(params.r_max >= 0.0);
    GREFAR_CHECK(params.h_max >= 0.0);
    params_ = params;
  }

  /// Opts in to compact active-type resets. Takes effect at the next
  /// reset(), and only when the observation carries a valid active-type
  /// hint and params.clamp_to_queue is set (without the clamp, dead types
  /// keep ub = h_max * d_j and cannot be dropped). Off by default, so every
  /// existing caller keeps the dense problem.
  void set_sparse_enabled(bool enabled) { sparse_enabled_ = enabled; }

  /// True when the *current* reset ran compact: variables are i*A+a over
  /// the active_type_ids() list instead of i*J+j.
  bool compact() const { return compact_; }

  /// Ascending active type ids the compact problem is defined over (column
  /// a is job type active_type_ids()[a]). Empty/meaningless in dense mode.
  const std::vector<std::uint32_t>& active_type_ids() const { return active_types_; }

  /// Number of type columns of the current problem: A in compact mode, J
  /// otherwise. num_vars() and all flattened arrays use this stride.
  std::size_t num_types_effective() const { return num_types_eff_; }

  std::size_t num_vars() const { return num_dcs_ * num_types_eff_; }
  /// Flat index in *effective* type space (j < num_types_effective()).
  std::size_t index(DataCenterId i, JobTypeId j) const { return i * num_types_eff_ + j; }

  /// Feasible region: box [0, ub] with one capacity group per data center.
  const CappedBoxPolytope& polytope() const { return polytope_; }

  /// Energy curves per data center for this slot's availability.
  const EnergyCostCurve& curve(DataCenterId i) const { return curves_[i]; }

  /// Total compute resource R(t) (work units across all DCs).
  double total_resource() const { return total_resource_; }

  /// Queue benefit per unit work: q_{i,j} / d_j (0 for ineligible pairs).
  /// Dense-mode accessor (j is a full-space type id); the compact hot paths
  /// read view().queue_value instead.
  double queue_value(DataCenterId i, JobTypeId j) const;

  /// Flat structure-of-arrays borrow of the current slot's problem data
  /// (see problem_view.h). Invalidated by the next reset(). In compact mode
  /// the per-type arrays are the gathered length-A versions and
  /// view().type_ids maps columns back to job types.
  PerSlotView view() const;

  /// Attaches (or detaches, with nullptr) the executor used for intra-slot
  /// DC sharding. Borrowed: the caller (GreFarScheduler) owns the executor
  /// and keeps it alive for the problem's lifetime.
  void set_intra_slot_executor(IntraSlotExecutor* executor) { executor_ = executor; }

  /// The executor when the pooled path is engaged for this instance's size,
  /// nullptr when kernels should stay serial (see GreFarParams).
  IntraSlotExecutor* intra_slot_executor() const {
    return (executor_ != nullptr && executor_->jobs() > 1 &&
            num_vars() >= params_.intra_slot_min_vars)
               ? executor_
               : nullptr;
  }

  // ConvexObjective: the h-part of eq. (14) as described above.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double value(const std::vector<double>& x) const override;
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override;

  const GreFarParams& params() const { return params_; }
  const ClusterConfig& config() const { return *config_; }
  const SlotObservation& observation() const { return *obs_; }

 private:
  /// Shared first half of value()/gradient(): per-DC row reductions of x
  /// (work, queue-value dot, account partials) plus the per-DC energy term,
  /// written to the dc_*_ / account_partial_ slots. Sharded across DCs when
  /// the executor is engaged; the callers merge the slots in DC order, so
  /// the result is bit-identical at any job count.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void accumulate_rows(const std::vector<double>& x, bool need_value,
                       bool need_marginal, bool need_accounts) const;

  /// Merges account_partial_ into account_scratch_ in DC order.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void merge_account_work() const;

  const ClusterConfig* config_;
  const SlotObservation* obs_;
  GreFarParams params_;
  std::size_t num_dcs_;
  std::size_t num_types_;      // J: full-space type count
  std::size_t num_accounts_;   // M: full-space account count
  IntraSlotExecutor* executor_ = nullptr;
  std::vector<EnergyCostCurve> curves_;
  std::vector<double> smoothing_band_;  // per-DC kink-blend half-width (work)
  std::vector<double> energy_band_;     // per-DC tariff-blend half-width (energy)
  double total_resource_ = 0.0;
  FairnessFunction fairness_;
  CappedBoxPolytope polytope_;
  std::vector<double> queue_value_;  // q/d, flattened [N * num_types_eff_]

  // Static SoA arrays (see problem_view.h), built once at construction.
  std::vector<std::uint8_t> eligible_;   // [N*J] 1 iff i in D_j
  std::vector<double> work_;             // [J] d_j
  std::vector<double> inv_work_;         // [J] 1/d_j
  std::vector<std::uint32_t> account_of_;  // [J]
  std::vector<double> max_rate_;           // [J] work one job absorbs per slot
  std::vector<std::uint8_t> rate_capped_;  // [J] 1 iff max_rate_ is finite
  std::vector<double> speed_;            // [K]
  std::vector<double> busy_power_;       // [K]
  std::vector<double> energy_per_work_;  // [K]
  bool any_rate_cap_ = false;            // any finite JobType::max_rate?

  // Account compaction (DESIGN.md §12). The fairness accumulators never
  // span all M accounts: dense resets use the *referenced* set (accounts
  // some job type maps to — computed once, account_of_ is static) and
  // compact resets the per-slot *active* set (accounts of active types).
  // Accounts outside the chosen set provably accumulate exactly 0.0 work,
  // and fairness_kernel::term(0, g, inv) is an exact float zero, so both
  // compacted sums are bitwise equal to the full-M sum.
  std::vector<std::uint32_t> referenced_accounts_;   // static, ascending
  std::vector<std::uint32_t> account_slot_static_;   // [J] -> referenced slot

  // Compact-mode per-slot state (sized/filled by a compact reset).
  bool sparse_enabled_ = false;
  bool compact_ = false;
  std::size_t num_types_eff_;             // A when compact, J otherwise
  std::vector<std::uint32_t> active_types_;     // [A] ascending type ids
  std::vector<double> work_eff_;                // [A] gathered d_j
  std::vector<double> inv_work_eff_;            // [A]
  std::vector<std::uint32_t> account_of_eff_;   // [A] global account ids
  std::vector<double> max_rate_eff_;            // [A]
  std::vector<std::uint8_t> rate_capped_eff_;   // [A]
  std::vector<std::uint8_t> eligible_eff_;      // [N*A]
  std::vector<std::uint32_t> active_accounts_;  // ascending account ids
  std::vector<std::uint32_t> account_slot_eff_; // [A] -> active-account slot

  // Per-slot SoA arrays refreshed by reset().
  std::vector<double> dc_capacity_;      // [N] curve capacity per DC
  std::size_t num_account_slots_ = 0;    // rows of the account accumulators
  /// Dead-column mask for the fairness gradient (built when beta > 0):
  /// active_col_[j] == 0 iff ub_{i,j} == 0 for every DC i. Such a column's
  /// fairness term is zeroed in the gradient — the column cannot move, its
  /// account received no work through it, and (crucially) zeroing keeps the
  /// dense gradient's dead entries >= 0 so they never perturb the projection
  /// bisection bracket. That is what makes compact PGD (where dead columns
  /// simply don't exist) bit-identical to dense PGD.
  mutable std::vector<std::uint8_t> active_col_;  // [num_types_eff_]

  // Reused scratch: value()/gradient() run every solver iteration and must
  // not touch the heap. The per-DC slot arrays are what makes the sharded
  // kernels deterministic: shard s writes only slots of its DC range, and
  // the (serial) merge walks them in DC order regardless of shard count.
  // Account rows are num_account_slots_ wide (referenced or active set),
  // never M — the O(N*M) account_partial_ buffer this replaces was the
  // million-account scaling wall.
  mutable std::vector<double> account_scratch_;    // [slots] merged account work
  mutable std::vector<double> account_partial_;    // [N*slots] per-DC account work
  mutable std::vector<double> marginal_scratch_;   // [N] per-DC marginal cost
  mutable std::vector<double> dc_value_;           // [N] per-DC objective part
  mutable std::vector<double> account_term_;       // [slots] fairness grad term
  mutable std::vector<double> type_term_;          // [num_types_eff_]
};

}  // namespace grefar
