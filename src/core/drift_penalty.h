// The GreFar per-slot optimization problem (paper eq. (14)).
//
// At slot t GreFar minimizes, over the action z(t),
//
//   V*g(t) - sum_j Q_j [sum_{i in D_j} r_{i,j}] + sum_{i,j} q_{i,j} (r_{i,j} - h_{i,j})
//
// The r- and h-parts separate:
//   * r_{i,j} has linear coefficient (q_{i,j} - Q_j): route maximally where
//     the DC queue is shorter than the central queue (handled in
//     GreFarScheduler directly);
//   * the h/b-part, in work variables u_{i,j} = h_{i,j} * d_j, is the convex
//     program built here:
//
//       min  sum_i [ V*phi_i*C_i(sum_j u_{i,j}) - sum_j (q_{i,j}/d_j) u_{i,j} ]
//            + V*beta * sum_m (r_m(u)/R - gamma_m)^2
//       s.t. 0 <= u_{i,j} <= ub_{i,j},  sum_j u_{i,j} <= cap_i,
//
// with C_i the minimum-energy curve and r_m(u) the per-account work. This
// file exposes the problem as a ConvexObjective over a CappedBoxPolytope so
// any first-order solver can run on it; variables are flattened as
// index = i * J + j.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/problem_view.h"
#include "parallel/shard.h"
#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/scheduler.h"
#include "solver/capped_box.h"
#include "solver/objective.h"

namespace grefar {

/// Tuning knobs shared by the per-slot problem and the GreFar scheduler.
struct GreFarParams {
  double V = 1.0;      // cost-delay parameter (>= 0)
  double beta = 0.0;   // energy-fairness parameter (>= 0)
  double r_max = 1e9;  // per-(i,j) routing bound r^max (eq. (4))
  double h_max = 1e9;  // per-(i,j) processing bound h^max (eq. (5))
  /// Cap processing by the work actually queued (and routing by the jobs
  /// actually queued). Disable to reproduce the literal dynamics (12)-(13)
  /// where "null" work is permitted.
  bool clamp_to_queue = true;
  /// Evaluate the processing decision against the post-routing queues
  /// q_{i,j} + r_{i,j} (the state service actually sees, since routing
  /// executes first within a slot). Disable for the literal eq. (13)
  /// ordering, which adds one slot of service lag.
  bool process_after_routing = true;
  /// Start the iterative per-slot solvers (Frank-Wolfe / PGD) from the
  /// previous slot's solution (projected onto the current capacity box)
  /// instead of the greedy point. Queues and prices move slowly slot to
  /// slot, so the previous optimum is usually a few iterations from the new
  /// one. Disable for A/B comparison against the historical cold start;
  /// ignored by the greedy and LP solvers, which are not iterative.
  bool warm_start_across_slots = true;
  /// Intra-slot data parallelism: shard the per-slot rebuild, the greedy
  /// fill and the PGD/FW gradient/value kernels across data centers on a
  /// persistent worker pool. 1 (default) keeps the serial fast path; the
  /// pooled path only engages when num_vars() >= intra_slot_min_vars, so
  /// small instances never pay synchronization for kernels that take
  /// microseconds. Decisions are bit-identical at any value (see
  /// DESIGN.md §11: kernels write per-DC slots, merged in DC order).
  std::size_t intra_slot_jobs = 1;
  /// Size threshold (in N*J decision variables) below which the sharded
  /// kernels stay inline even when intra_slot_jobs > 1.
  std::size_t intra_slot_min_vars = 4096;
};

/// The per-slot convex program in work units u (flattened N*J vector).
///
/// Hot-path note: a long-lived scheduler constructs one PerSlotProblem on
/// its first slot and calls reset() on every later slot — curves, polytope,
/// and all internal vectors are then updated in place, so steady-state
/// problem construction is allocation-free. An instance is single-threaded
/// from the caller's point of view (concurrent runs each own their
/// problem); with an intra-slot executor attached, its kernels internally
/// fan per-DC work over the executor's pool and join before returning.
class PerSlotProblem final : public ConvexObjective {
 public:
  PerSlotProblem(const ClusterConfig& config, const SlotObservation& obs,
                 const GreFarParams& params);

  /// Re-targets the problem at a new observation of the *same* cluster and
  /// params, reusing all internal storage. `obs` must outlive the problem's
  /// next use (the problem keeps a pointer, not a copy).
  void reset(const SlotObservation& obs);

  std::size_t num_vars() const { return num_dcs_ * num_types_; }
  std::size_t index(DataCenterId i, JobTypeId j) const { return i * num_types_ + j; }

  /// Feasible region: box [0, ub] with one capacity group per data center.
  const CappedBoxPolytope& polytope() const { return polytope_; }

  /// Energy curves per data center for this slot's availability.
  const EnergyCostCurve& curve(DataCenterId i) const { return curves_[i]; }

  /// Total compute resource R(t) (work units across all DCs).
  double total_resource() const { return total_resource_; }

  /// Queue benefit per unit work: q_{i,j} / d_j (0 for ineligible pairs).
  double queue_value(DataCenterId i, JobTypeId j) const;

  /// Flat structure-of-arrays borrow of the current slot's problem data
  /// (see problem_view.h). Invalidated by the next reset().
  PerSlotView view() const;

  /// Attaches (or detaches, with nullptr) the executor used for intra-slot
  /// DC sharding. Borrowed: the caller (GreFarScheduler) owns the executor
  /// and keeps it alive for the problem's lifetime.
  void set_intra_slot_executor(IntraSlotExecutor* executor) { executor_ = executor; }

  /// The executor when the pooled path is engaged for this instance's size,
  /// nullptr when kernels should stay serial (see GreFarParams).
  IntraSlotExecutor* intra_slot_executor() const {
    return (executor_ != nullptr && executor_->jobs() > 1 &&
            num_vars() >= params_.intra_slot_min_vars)
               ? executor_
               : nullptr;
  }

  // ConvexObjective: the h-part of eq. (14) as described above.
  double value(const std::vector<double>& x) const override;
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override;

  const GreFarParams& params() const { return params_; }
  const ClusterConfig& config() const { return *config_; }
  const SlotObservation& observation() const { return *obs_; }

 private:
  /// Shared first half of value()/gradient(): per-DC row reductions of x
  /// (work, queue-value dot, account partials) plus the per-DC energy term,
  /// written to the dc_*_ / account_partial_ slots. Sharded across DCs when
  /// the executor is engaged; the callers merge the slots in DC order, so
  /// the result is bit-identical at any job count.
  void accumulate_rows(const std::vector<double>& x, bool need_value,
                       bool need_marginal, bool need_accounts) const;

  /// Merges account_partial_ into account_scratch_ in DC order.
  void merge_account_work() const;

  const ClusterConfig* config_;
  const SlotObservation* obs_;
  GreFarParams params_;
  std::size_t num_dcs_;
  std::size_t num_types_;
  std::size_t num_accounts_;
  IntraSlotExecutor* executor_ = nullptr;
  std::vector<EnergyCostCurve> curves_;
  std::vector<double> smoothing_band_;  // per-DC kink-blend half-width (work)
  std::vector<double> energy_band_;     // per-DC tariff-blend half-width (energy)
  double total_resource_ = 0.0;
  FairnessFunction fairness_;
  CappedBoxPolytope polytope_;
  std::vector<double> queue_value_;  // q_{i,j}/d_j, flattened

  // Static SoA arrays (see problem_view.h), built once at construction.
  std::vector<std::uint8_t> eligible_;   // [N*J] 1 iff i in D_j
  std::vector<double> work_;             // [J] d_j
  std::vector<double> inv_work_;         // [J] 1/d_j
  std::vector<std::uint32_t> account_of_;  // [J]
  std::vector<double> max_rate_;           // [J] work one job absorbs per slot
  std::vector<std::uint8_t> rate_capped_;  // [J] 1 iff max_rate_ is finite
  std::vector<double> speed_;            // [K]
  std::vector<double> busy_power_;       // [K]
  std::vector<double> energy_per_work_;  // [K]
  bool any_rate_cap_ = false;            // any finite JobType::max_rate?

  // Per-slot SoA arrays refreshed by reset().
  std::vector<double> dc_capacity_;      // [N] curve capacity per DC

  // Reused scratch: value()/gradient() run every solver iteration and must
  // not touch the heap. The per-DC slot arrays are what makes the sharded
  // kernels deterministic: shard s writes only slots of its DC range, and
  // the (serial) merge walks them in DC order regardless of shard count.
  mutable std::vector<double> account_scratch_;    // [M] merged account work
  mutable std::vector<double> account_partial_;    // [N*M] per-DC account work
  mutable std::vector<double> marginal_scratch_;   // [N] per-DC marginal cost
  mutable std::vector<double> dc_value_;           // [N] per-DC objective part
  mutable std::vector<double> account_term_;       // [M] fairness grad term
  mutable std::vector<double> type_term_;          // [J] account_term_[rho_j]
};

}  // namespace grefar
