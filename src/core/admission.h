// The two admission policies of the revenue-management descendants:
//
//   * ThresholdAdmission — the deterministic value-density rule of arXiv
//     1404.4865: admit a batch iff its value per unit work v / d_j clears a
//     fixed threshold theta. Simple, and optimal when the value-density
//     distribution is known; brittle when it is not.
//   * RandomizedThresholdAdmission — the randomized improvement of arXiv
//     1509.03699: theta is drawn log-uniformly from [theta_lo, theta_hi]
//     once per slot, the classic online-threshold construction that hedges
//     across the unknown value-density range (the same e/(e-1)-flavored
//     guarantee as the one-way-trading threshold family). The draw is a
//     pure function of (seed, slot) via Rng::fork, exactly like
//     ZipfArrivals, so runs replay bit-identically at any --jobs.
//
// Both are all-or-nothing per batch: jobs inside a batch are identical, so a
// density test either clears for all of them or none.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workload/admission.h"

namespace grefar {

/// Deterministic value-density threshold: admit iff value / work >= theta.
class ThresholdAdmission final : public AdmissionPolicy {
 public:
  explicit ThresholdAdmission(double theta);

  std::int64_t admit(std::int64_t slot, const JobType& type, std::int64_t count,
                     double value, std::int64_t deadline) override;
  double threshold(std::int64_t slot) const override;
  std::string name() const override;

 private:
  double theta_;
};

/// Randomized threshold: theta(t) = theta_lo * (theta_hi / theta_lo)^u with
/// u uniform per (seed, slot). Deterministic per (seed, slot).
class RandomizedThresholdAdmission final : public AdmissionPolicy {
 public:
  RandomizedThresholdAdmission(double theta_lo, double theta_hi,
                               std::uint64_t seed);

  std::int64_t admit(std::int64_t slot, const JobType& type, std::int64_t count,
                     double value, std::int64_t deadline) override;
  double threshold(std::int64_t slot) const override;
  std::string name() const override;

 private:
  double theta_lo_;
  double theta_hi_;
  std::uint64_t seed_;
};

/// The admission-policy lineup bench/admission_ablation sweeps over.
enum class AdmissionPolicyKind { kAdmitAll, kThreshold, kRandomized };

/// Fresh policy instance (one per engine, mirrors Scheduler). `theta` is the
/// deterministic threshold; the randomized variant hedges log-uniformly over
/// [theta / 4, theta * 4] keyed on (seed, slot).
std::shared_ptr<AdmissionPolicy> make_admission_policy(AdmissionPolicyKind kind,
                                                       double theta,
                                                       std::uint64_t seed);

}  // namespace grefar
