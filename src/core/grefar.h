// GreFarScheduler — Algorithm 1 of the paper.
//
// Each slot, observe the data-center state x(t) and queue state Theta(t) and
// choose the action minimizing the drift-plus-penalty expression (14):
//
//   * Routing r_{i,j}: linear with coefficient (q_{i,j} - Q_j). Jobs are
//     routed (up to r_max per destination) to eligible data centers whose
//     local queue is shorter than the central queue, shortest first.
//   * Processing h_{i,j} / servers b_{i,k}: the convex program of
//     drift_penalty.h, solved by the configured per-slot solver. With
//     beta = 0 the greedy is exact: work is processed exactly when the
//     queue pressure q_{i,j}/d_j exceeds V * phi_i * p_k/s_k — i.e. when
//     electricity is cheap relative to how long jobs have waited. Larger V
//     therefore trades delay for energy cost, which is Theorem 1's knob.
//
// GreFar needs no statistics of arrivals, prices or availability: the queue
// lengths alone summarize the past.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/drift_penalty.h"
#include "core/per_slot_solvers.h"
#include "sim/scheduler.h"
#include "util/annotations.h"

namespace grefar {

class GreFarScheduler final : public Scheduler {
 public:
  /// `solver` defaults to the exact greedy when beta == 0 and Frank-Wolfe
  /// otherwise; pass explicitly to ablate.
  GreFarScheduler(ClusterConfig config, GreFarParams params);
  GreFarScheduler(ClusterConfig config, GreFarParams params, PerSlotSolver solver);
  /// Shared-config overloads: a million-account ClusterConfig weighs ~10^2
  /// MB, so the scheduler sharing the engine's immutable instance instead of
  /// copying it is part of the DESIGN.md §12 memory budget.
  GreFarScheduler(std::shared_ptr<const ClusterConfig> config, GreFarParams params);
  GreFarScheduler(std::shared_ptr<const ClusterConfig> config, GreFarParams params,
                  PerSlotSolver solver);

  /// Rebinds a long-lived scheduler to a new sweep leg without
  /// reconstructing it (DESIGN.md §16). Validates (params, solver) like the
  /// constructor, rebinds the cached per-slot problem's parameters, and
  /// invalidates all cross-slot sparse-action bookkeeping, so the next
  /// decide produces bitwise the same actions as a fresh scheduler's.
  /// Piece/demand caches in the solver scratch are *kept*: they are keyed on
  /// byte-equal inputs, so a hit reproduces the rebuild exactly.
  ///
  /// `keep_warm` = cross-leg warm starts (perf mode, not bitwise vs cold):
  /// the previous leg's FW/PGD iterate stays seeded (prev_valid survives)
  /// and the LP path re-enters the previous leg's simplex basis. Only sound
  /// when the adjacent leg shares the scenario and cluster config — the
  /// SweepEngine gates it on exactly that.
  void begin_run(const GreFarParams& params, PerSlotSolver solver,
                 bool keep_warm = false);

  SlotAction decide(const SlotObservation& obs) override;
  /// The hot path: after the first slot every per-slot structure (the
  /// convex problem, solver scratch, routing work lists, action matrices)
  /// is reused in place, so steady-state decisions are allocation-free.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void decide_into(const SlotObservation& obs, SlotAction& out) override;
  /// Traced variant: annotates `scope` (when non-null) with the slot's
  /// routing tie-group splits and the drift-weight sign census.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void decide_into(const SlotObservation& obs, SlotAction& out,
                   TraceScope* scope) override;
  std::string name() const override;

  const GreFarParams& params() const { return params_; }
  PerSlotSolver solver() const { return solver_; }

 private:
  /// Splits `jobs` whole jobs across tie_members_ (capacity-weighted
  /// largest-remainder apportionment, each member capped at floor(r_max)),
  /// writing action.route(member, j). Returns the total actually assigned.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double split_tie_group(std::size_t j, double jobs, SlotAction& action);

  std::shared_ptr<const ClusterConfig> config_;  // immutable, shareable
  GreFarParams params_;
  PerSlotSolver solver_;

  // Worker pool for intra-slot DC sharding (params_.intra_slot_jobs > 1);
  // null when the scheduler runs fully serial. Owned here so the pool
  // persists across slots — the sharded kernels run thousands of times per
  // second and cannot afford per-slot thread spawns.
  std::unique_ptr<IntraSlotExecutor> intra_exec_;

  // Per-slot scratch, constructed lazily on the first decide and reused
  // thereafter. A scheduler instance is single-threaded (one simulation).
  std::optional<PerSlotProblem> problem_;
  PerSlotSolverScratch solver_scratch_;
  SlotObservation routed_obs_;           // obs with routing applied to dc_queue
  std::vector<double> u_;                // per-slot solver result (work units)

  // Sparse per-slot bookkeeping (DESIGN.md §12). When the observation
  // carries the active-type hint, the O(N*J) per-slot fills (action
  // clearing, routing sweep, routed-queue rebuild) shrink to O(N*A): only
  // columns in prev_active_ can hold non-zeros from the previous slot, so
  // clearing those restores the all-zero invariant. The cached data
  // pointers detect a swapped/reallocated action matrix (then the invariant
  // is unknown and a full clear runs), and any dense slot in between —
  // a traced decide, a hint-less caller — resets the state likewise.
  std::vector<std::uint32_t> prev_active_;      // columns written last slot
  const double* sparse_route_data_ = nullptr;   // matrices the invariant
  const double* sparse_proc_data_ = nullptr;    //   currently covers
  bool routed_obs_sparse_valid_ = false;        // routed_obs_ zero-invariant
  std::vector<double> dc_capacity_;      // sum_k n_{i,k} s_k, per DC per slot
  std::vector<std::size_t> beneficial_;  // routing candidates for one job type
  std::vector<std::size_t> tie_members_; // one tie group's capacity>0 members
  std::vector<double> tie_quota_;        // proportional quota per member
  std::vector<double> tie_base_;         // integer part of the quota
  std::vector<unsigned char> tie_pinned_;  // member pinned at r_max
  std::vector<std::size_t> tie_rank_;    // remainder ranking scratch
};

}  // namespace grefar
