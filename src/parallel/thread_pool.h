// ThreadPool: a fixed-size worker pool for embarrassingly parallel sweeps.
//
// Deliberately work-stealing-free: tasks are pulled from a single FIFO queue
// under one mutex, which is ample for the coarse-grained jobs this repo fans
// out (whole simulation runs taking milliseconds to seconds each) and keeps
// the execution model easy to reason about. Determinism is achieved one
// level up — submitters write results into pre-assigned slots and aggregate
// in submission order — so the pool itself never has to order anything.
//
// Lifecycle guarantees:
//   * every submitted task runs exactly once (none lost, none duplicated);
//   * the destructor drains the queue — it blocks until all tasks, including
//     ones still queued, have finished, then joins the workers;
//   * wait_idle() blocks until the queue is empty and no task is running,
//     without shutting the pool down.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grefar {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains all remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker in FIFO pop order.
  void submit(std::function<void()> task);

  /// Chunked dynamic scheduling (DESIGN.md §16): partitions [0, count) into
  /// fixed ranges of `chunk` consecutive indices — range k is
  /// [k*chunk, min((k+1)*chunk, count)), a pure function of (count, chunk) —
  /// and spawns min(num_threads(), num_ranges) loop tasks that claim ranges
  /// through a shared atomic ticket counter. Each claimed range is executed
  /// front to back, so indices within a range always run in ascending order
  /// on one thread; which *thread* runs a range is scheduling-dependent,
  /// which is why `body` receives its loop-task id (0 .. tasks-1) for
  /// worker-local arenas rather than a range id.
  ///
  /// Blocks until every range ran (other concurrently submitted work may
  /// still be in flight — this is not wait_idle). `body` must not throw;
  /// callers capture per-index failures themselves (see SimRunner). Returns
  /// the number of loop tasks spawned.
  std::size_t submit_batch(
      std::size_t count, std::size_t chunk,
      const std::function<void(std::size_t task, std::size_t begin,
                               std::size_t end)>& body);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Total tasks that have finished running (for tests / introspection).
  std::size_t completed_tasks() const;

  /// Usable CPUs: the sched_getaffinity CPU count where available (so cgroup
  /// / taskset limits in containerized CI are honored instead of
  /// oversubscribing the host), falling back to
  /// std::thread::hardware_concurrency(); always >= 1.
  static std::size_t default_concurrency();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;   // signals workers
  std::condition_variable all_done_;     // signals wait_idle / destructor
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;    // tasks currently executing
  std::size_t completed_ = 0;  // tasks finished since construction
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace grefar
