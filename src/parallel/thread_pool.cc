#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#if defined(__linux__)
#include <sched.h>
#endif

#include "util/check.h"

namespace grefar {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Workers only exit once the queue is empty (see worker_loop), so every
  // task submitted before destruction still runs.
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GREFAR_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GREFAR_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

std::size_t ThreadPool::submit_batch(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t task, std::size_t begin,
                             std::size_t end)>& body) {
  GREFAR_CHECK(body != nullptr);
  if (count == 0) return 0;
  chunk = std::max<std::size_t>(chunk, 1);
  const std::size_t num_ranges = (count + chunk - 1) / chunk;
  const std::size_t num_tasks = std::min(num_threads(), num_ranges);

  // Shared batch state lives on the heap so loop tasks stay valid even if the
  // caller's frame unwinds (it can't here — we block below — but the pool
  // queue owns copies of the closures either way).
  struct BatchState {
    std::atomic<std::size_t> ticket{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = num_tasks;

  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([state, count, chunk, num_ranges, t, &body] {
      for (;;) {
        const std::size_t range =
            state->ticket.fetch_add(1, std::memory_order_relaxed);
        if (range >= num_ranges) break;
        const std::size_t begin = range * chunk;
        const std::size_t end = std::min(begin + chunk, count);
        body(t, begin, end);
      }
      {
        std::unique_lock<std::mutex> lock(state->mutex);
        --state->remaining;
      }
      state->done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  return num_tasks;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::completed_tasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t ThreadPool::default_concurrency() {
#if defined(__linux__)
  // Honor cgroup cpusets / taskset masks: in containerized CI the affinity
  // mask is often far smaller than the host's hardware_concurrency, and
  // spawning a worker per host core just thrashes.
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int cpus = CPU_COUNT(&mask);
    if (cpus > 0) return static_cast<std::size_t>(cpus);
  }
#endif
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --running_;
      ++completed_;
      if (queue_.empty() && running_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace grefar
