#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Workers only exit once the queue is empty (see worker_loop), so every
  // task submitted before destruction still runs.
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GREFAR_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GREFAR_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::completed_tasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t ThreadPool::default_concurrency() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --running_;
      ++completed_;
      if (queue_.empty() && running_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace grefar
