#include "parallel/sim_runner.h"

#include <algorithm>

#include "parallel/thread_pool.h"

namespace grefar {

SimRunner::SimRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::default_concurrency() : jobs) {}

void SimRunner::run(std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  std::vector<std::exception_ptr> errors(tasks.size());
  if (jobs_ <= 1 || tasks.size() == 1) {
    // Serial path: inline, in order, no pool — the historical behaviour.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    ThreadPool pool(std::min(jobs_, tasks.size()));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pool.submit([&tasks, &errors, i] {
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<std::unique_ptr<SimulationEngine>> SimRunner::run_engines(
    std::vector<std::function<std::unique_ptr<SimulationEngine>()>> makers) const {
  return map<std::unique_ptr<SimulationEngine>>(
      makers.size(), [&makers](std::size_t i) { return makers[i](); });
}

}  // namespace grefar
