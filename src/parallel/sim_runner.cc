#include "parallel/sim_runner.h"

#include <algorithm>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/task_registries.h"
#include "parallel/thread_pool.h"

namespace grefar {

SimRunner::SimRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::default_concurrency() : jobs) {}

void SimRunner::run(std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  std::vector<std::exception_ptr> errors(tasks.size());
  if (jobs_ <= 1 || tasks.size() == 1) {
    // Serial path: inline, in order, no pool — the historical behaviour.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    // Observability: worker threads never see the caller's registries
    // (they are thread-local). When the caller has one active, each task
    // gets a private registry, merged back in task order below — counters
    // are sums and gauges maxes, so the totals are bit-identical to the
    // serial path no matter how the pool interleaves the legs. The
    // snapshot/private-pair/ordered-merge pattern lives in obs (raw registry
    // merges outside src/obs violate the counter-discipline contract).
    obs::TaskRegistries regs(tasks.size());
    ThreadPool pool(std::min(jobs_, tasks.size()));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pool.submit([&tasks, &errors, &regs, i] {
        obs::CountersScope counters(regs.counters(i));
        obs::ProfileScope profile(regs.profile(i));
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    regs.merge_ordered();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<std::unique_ptr<SimulationEngine>> SimRunner::run_engines(
    std::vector<std::function<std::unique_ptr<SimulationEngine>()>> makers) const {
  return map<std::unique_ptr<SimulationEngine>>(
      makers.size(), [&makers](std::size_t i) { return makers[i](); });
}

}  // namespace grefar
