#include "parallel/sim_runner.h"

#include <algorithm>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/task_registries.h"
#include "parallel/thread_pool.h"

namespace grefar {

SimRunner::SimRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::default_concurrency() : jobs) {}

void SimRunner::run(std::vector<std::function<void()>>& tasks) const {
  for_each_index(tasks.size(),
                 [&tasks](std::size_t i) { tasks[i](); });
}

void SimRunner::for_each_index_tasked(
    std::size_t count,
    const std::function<void(std::size_t task, std::size_t index)>& fn,
    std::size_t chunk) const {
  if (count == 0) return;
  chunk = std::max<std::size_t>(chunk, 1);
  const std::size_t num_ranges = (count + chunk - 1) / chunk;
  const std::size_t workers = std::min(jobs_, num_ranges);
  std::vector<std::exception_ptr> errors(count);
  if (jobs_ <= 1 || workers <= 1) {
    // Serial path: inline, in order, on the calling thread, no pool — the
    // historical behaviour (and the caller's obs registries stay active).
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(0, i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    // Observability: worker threads never see the caller's registries
    // (they are thread-local). When the caller has one active, each *loop
    // task* gets a private registry, merged back in task order below —
    // counters are uint64 sums and gauges maxes, so the totals are
    // bit-identical to the serial path (and to any other jobs/chunk split)
    // no matter how the ticket counter hands ranges to tasks. The
    // snapshot/private-pair/ordered-merge pattern lives in obs (raw registry
    // merges outside src/obs violate the counter-discipline contract).
    obs::TaskRegistries regs(workers);
    ThreadPool pool(workers);
    pool.submit_batch(count, chunk,
                      [&fn, &errors, &regs](std::size_t task, std::size_t begin,
                                            std::size_t end) {
                        obs::CountersScope counters(regs.counters(task));
                        obs::ProfileScope profile(regs.profile(task));
                        for (std::size_t i = begin; i < end; ++i) {
                          try {
                            fn(task, i);
                          } catch (...) {
                            errors[i] = std::current_exception();
                          }
                        }
                      });
    regs.merge_ordered();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void SimRunner::for_each_index(std::size_t count,
                               const std::function<void(std::size_t index)>& fn,
                               std::size_t chunk) const {
  for_each_index_tasked(
      count, [&fn](std::size_t /*task*/, std::size_t i) { fn(i); }, chunk);
}

std::vector<std::unique_ptr<SimulationEngine>> SimRunner::run_engines(
    std::vector<std::function<std::unique_ptr<SimulationEngine>()>> makers) const {
  return map<std::unique_ptr<SimulationEngine>>(
      makers.size(), [&makers](std::size_t i) { return makers[i](); });
}

}  // namespace grefar
