// IntraSlotExecutor: fixed-shard fan-out for *within-slot* data parallelism.
//
// SimRunner parallelizes across whole simulation runs and builds a fresh
// ThreadPool per call — milliseconds of task make that amortize trivially.
// The per-slot hot path cannot afford either: a GreFar decision at large
// N x K calls its sharded kernels (greedy fill, PGD/FW gradient passes)
// thousands of times per second, so this executor keeps one persistent pool
// and hands out index *ranges* instead of closures per element.
//
// Determinism contract (same discipline as SimRunner and the lookahead
// frames): the executor never reduces anything itself. Kernels write to
// per-data-center slots (disjoint ranges of a shared output, or per-DC
// partial accumulators), and the caller merges the partials serially in DC
// index order. Because the merge order is a property of the *data layout*,
// not of the shard boundaries or worker count, results are bit-identical at
// any `jobs` value — including jobs = 1, which runs the same kernel inline
// with no pool at all.
//
// A kernel that throws poisons only its shard; run() rethrows the first
// failure in shard order after every shard finished.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

#include "parallel/thread_pool.h"
#include "util/annotations.h"

namespace grefar {

/// Half-open index range [begin, end) a shard owns.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [0, n) into `shards` near-equal contiguous ranges (the first
/// n % shards ranges get one extra element). `shards` is clamped to [1, n]
/// so no range is empty (n == 0 yields a single empty range).
GREFAR_HOT_PATH GREFAR_DETERMINISTIC
ShardRange shard_range(std::size_t n, std::size_t shards, std::size_t shard);

class IntraSlotExecutor {
 public:
  /// `jobs` <= 1 never creates a pool: run() executes inline. Larger values
  /// spawn jobs workers once, reused for every subsequent run().
  explicit IntraSlotExecutor(std::size_t jobs);
  ~IntraSlotExecutor();

  IntraSlotExecutor(const IntraSlotExecutor&) = delete;
  IntraSlotExecutor& operator=(const IntraSlotExecutor&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Runs `kernel(shard, range)` for every shard of [0, n), blocking until
  /// all complete. Inline (in shard order) when jobs <= 1 or n is small
  /// enough that splitting cannot pay; on the pool otherwise. The kernel
  /// must only write state owned by its range (disjoint output rows /
  /// per-index partial slots) — see the determinism contract above.
  GREFAR_HOT_PATH
  void run(std::size_t n,
           const std::function<void(std::size_t, ShardRange)>& kernel);

 private:
  std::size_t jobs_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first pooled run
  std::vector<std::exception_ptr> errors_;  // one slot per shard, reused
};

}  // namespace grefar
