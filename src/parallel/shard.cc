#include "parallel/shard.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

ShardRange shard_range(std::size_t n, std::size_t shards, std::size_t shard) {
  shards = std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(n, 1));
  GREFAR_CHECK(shard < shards);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  const std::size_t begin = shard * base + std::min(shard, extra);
  return {begin, begin + base + (shard < extra ? 1 : 0)};
}

IntraSlotExecutor::IntraSlotExecutor(std::size_t jobs) : jobs_(std::max<std::size_t>(jobs, 1)) {}

IntraSlotExecutor::~IntraSlotExecutor() = default;

void IntraSlotExecutor::run(std::size_t n,
                            const std::function<void(std::size_t, ShardRange)>& kernel) {
  const std::size_t shards = std::clamp<std::size_t>(jobs_, 1, std::max<std::size_t>(n, 1));
  if (shards <= 1) {
    kernel(0, ShardRange{0, n});
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(jobs_);
  errors_.assign(shards, nullptr);
  for (std::size_t s = 0; s < shards; ++s) {
    pool_->submit([this, &kernel, n, shards, s] {
      try {
        kernel(s, shard_range(n, shards, s));
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    });
  }
  pool_->wait_idle();
  for (auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace grefar
