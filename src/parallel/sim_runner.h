// SimRunner: fans independent simulation runs across a ThreadPool with
// deterministic, submission-ordered results.
//
// The repo's stochastic models (prices, availability, arrivals) carry lazily
// extended mutable caches, so model *instances* must never be shared between
// concurrent runs. The contract here makes that structural: each leg of a
// sweep is a closure that builds its own scenario (deterministic per seed,
// i.e. its own RNG streams), its own scheduler and its own engine/SimMetrics,
// and returns whatever the caller wants to aggregate. Results land in a slot
// per leg, so aggregation in leg order is bit-for-bit identical no matter how
// many workers ran the legs — `jobs = 1` executes inline with no pool at all
// and reproduces the historical serial behaviour exactly. Per-leg metric
// accumulators (RunningStats and friends) merge cleanly afterwards because
// they are parallel-combinable by design.
//
// A task that throws poisons only its own slot; run()/map() rethrow the
// first failure in leg order after every leg has finished.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "util/annotations.h"

namespace grefar {

class SimRunner {
 public:
  /// `jobs` = worker count; 0 picks ThreadPool::default_concurrency().
  explicit SimRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Runs every task (in parallel for jobs > 1, inline in order for
  /// jobs == 1). Returns once all tasks finished; rethrows the first
  /// task exception in index order.
  GREFAR_DETERMINISTIC
  void run(std::vector<std::function<void()>>& tasks) const;

  /// Chunked indexed loop over [0, count): indices are handed to workers in
  /// fixed consecutive ranges of `chunk` via ThreadPool::submit_batch — one
  /// std::function per *loop task*, not per index. `fn(task, index)` receives
  /// the loop-task id (0 .. workers-1; always 0 on the serial path) so callers
  /// can keep worker-local arenas. Within a range, indices run in ascending
  /// order on one thread. jobs == 1 (or a single worker) executes inline on
  /// the calling thread, index order 0..count-1, no pool — the historical
  /// serial contract. Rethrows the first per-index exception in index order.
  GREFAR_DETERMINISTIC
  void for_each_index_tasked(
      std::size_t count,
      const std::function<void(std::size_t task, std::size_t index)>& fn,
      std::size_t chunk = 1) const;

  /// for_each_index_tasked without the loop-task id.
  GREFAR_DETERMINISTIC
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t index)>& fn,
                      std::size_t chunk = 1) const;

  /// Parallel map with ordered results: results[i] = fn(i). Routed through
  /// the chunked ticket path, so no per-index closure is allocated.
  template <typename Result>
  std::vector<Result> map(std::size_t count,
                          std::function<Result(std::size_t)> fn) const {
    std::vector<Result> results(count);
    for_each_index(count, [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Domain shorthand: each maker builds *and runs* one engine on a worker;
  /// engines (with their SimMetrics) come back in maker order.
  std::vector<std::unique_ptr<SimulationEngine>> run_engines(
      std::vector<std::function<std::unique_ptr<SimulationEngine>()>> makers) const;

 private:
  std::size_t jobs_;
};

}  // namespace grefar
