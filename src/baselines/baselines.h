// Baseline schedulers.
//
// * AlwaysScheduler — the paper's §VI-B3 comparison: schedules jobs
//   immediately whenever resources are available, ignoring prices. Jobs are
//   routed to the eligible data center with the most spare capacity and all
//   queued work is processed up to capacity, so almost every job finishes in
//   the slot after it arrives (average delay ~= 1).
// * CheapestFirstScheduler — price-aware *spatially* but not temporally:
//   routes to the eligible DC with the lowest current energy cost per unit
//   work, then processes everything immediately. Isolates how much of
//   GreFar's saving comes from *when* versus *where*.
// * RandomScheduler — routes uniformly at random among eligible DCs
//   (seeded, deterministic); processes everything. A sanity floor.
// * LocalOnlyScheduler — pins each job type to its first eligible DC;
//   no geographic flexibility at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/cluster.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace grefar {

class AlwaysScheduler final : public Scheduler {
 public:
  explicit AlwaysScheduler(ClusterConfig config);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override { return "Always"; }

 private:
  ClusterConfig config_;
};

class CheapestFirstScheduler final : public Scheduler {
 public:
  explicit CheapestFirstScheduler(ClusterConfig config);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override { return "CheapestFirst"; }

 private:
  ClusterConfig config_;
};

class RandomScheduler final : public Scheduler {
 public:
  RandomScheduler(ClusterConfig config, std::uint64_t seed);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override { return "Random"; }

 private:
  ClusterConfig config_;
  Rng rng_;
};

/// Static price-threshold heuristic: routes like CheapestFirst, but a DC
/// only processes while its current price is at or below `threshold` —
/// the obvious hand-tuned alternative to GreFar's queue-adaptive threshold.
/// A backlog safety valve forces processing regardless of price once a DC's
/// queued work exceeds `backlog_factor` x its capacity, so the policy stays
/// stable when prices sit above the threshold for long stretches.
class PriceThresholdScheduler final : public Scheduler {
 public:
  PriceThresholdScheduler(ClusterConfig config, double threshold,
                          double backlog_factor = 4.0);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override;

 private:
  ClusterConfig config_;
  double threshold_;
  double backlog_factor_;
};

class LocalOnlyScheduler final : public Scheduler {
 public:
  explicit LocalOnlyScheduler(ClusterConfig config);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override { return "LocalOnly"; }

 private:
  ClusterConfig config_;
};

}  // namespace grefar
