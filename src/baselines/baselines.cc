#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/energy.h"
#include "util/check.h"

namespace grefar {

namespace {

/// Per-DC capacity (work units) for this slot.
std::vector<double> dc_capacities(const ClusterConfig& config,
                                  const SlotObservation& obs) {
  std::vector<double> caps(config.num_data_centers(), 0.0);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    for (std::size_t k = 0; k < config.num_server_types(); ++k) {
      caps[i] += static_cast<double>(obs.availability(i, k)) *
                 config.server_types[k].speed;
    }
  }
  return caps;
}

/// Cheapest energy cost per unit of work available in DC i right now.
double best_energy_per_work(const ClusterConfig& config, const SlotObservation& obs,
                            std::size_t i) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < config.num_server_types(); ++k) {
    if (obs.availability(i, k) <= 0) continue;
    const auto& st = config.server_types[k];
    best = std::min(best, obs.prices[i] * st.busy_power / st.speed);
  }
  return best;
}

/// "Process everything": h_{i,j} covers the whole post-routing queue, scaled
/// down proportionally where it exceeds the DC's capacity.
MatrixD process_everything(const ClusterConfig& config, const SlotObservation& obs,
                           const MatrixD& route) {
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  auto caps = dc_capacities(config, obs);
  MatrixD process(N, J);
  for (std::size_t i = 0; i < N; ++i) {
    double want_work = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      double jobs = obs.dc_queue(i, j) + route(i, j);
      want_work += jobs * config.job_types[j].work;
    }
    double scale = want_work > caps[i] && want_work > 0.0 ? caps[i] / want_work : 1.0;
    for (std::size_t j = 0; j < J; ++j) {
      process(i, j) = (obs.dc_queue(i, j) + route(i, j)) * scale;
    }
  }
  return process;
}

}  // namespace

AlwaysScheduler::AlwaysScheduler(ClusterConfig config) : config_(std::move(config)) {
  config_.validate();
}

SlotAction AlwaysScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);

  // Spare capacity = capacity minus work already queued there.
  auto spare = dc_capacities(config_, obs);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      spare[i] -= obs.dc_queue(i, j) * config_.job_types[j].work;
    }
  }
  for (std::size_t j = 0; j < J; ++j) {
    auto jobs = static_cast<std::int64_t>(std::floor(obs.central_queue[j]));
    const double d = config_.job_types[j].work;
    for (std::int64_t n = 0; n < jobs; ++n) {
      // Greedily place each job where the most spare capacity remains.
      DataCenterId best = config_.job_types[j].eligible_dcs.front();
      for (DataCenterId i : config_.job_types[j].eligible_dcs) {
        if (spare[i] > spare[best]) best = i;
      }
      action.route(best, j) += 1.0;
      spare[best] -= d;
    }
  }
  action.process = process_everything(config_, obs, action.route);
  return action;
}

CheapestFirstScheduler::CheapestFirstScheduler(ClusterConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

SlotAction CheapestFirstScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);

  auto spare = dc_capacities(config_, obs);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      spare[i] -= obs.dc_queue(i, j) * config_.job_types[j].work;
    }
  }
  for (std::size_t j = 0; j < J; ++j) {
    auto jobs = static_cast<std::int64_t>(std::floor(obs.central_queue[j]));
    const double d = config_.job_types[j].work;
    for (std::int64_t n = 0; n < jobs; ++n) {
      // Cheapest eligible DC that still has room; fall back to max spare.
      DataCenterId best = config_.job_types[j].eligible_dcs.front();
      double best_cost = std::numeric_limits<double>::infinity();
      bool found = false;
      for (DataCenterId i : config_.job_types[j].eligible_dcs) {
        if (spare[i] < d) continue;
        double cost = best_energy_per_work(config_, obs, i);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
          found = true;
        }
      }
      if (!found) {
        for (DataCenterId i : config_.job_types[j].eligible_dcs) {
          if (spare[i] > spare[best]) best = i;
        }
      }
      action.route(best, j) += 1.0;
      spare[best] -= d;
    }
  }
  action.process = process_everything(config_, obs, action.route);
  return action;
}

RandomScheduler::RandomScheduler(ClusterConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  config_.validate();
}

SlotAction RandomScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);
  for (std::size_t j = 0; j < J; ++j) {
    auto jobs = static_cast<std::int64_t>(std::floor(obs.central_queue[j]));
    const auto& eligible = config_.job_types[j].eligible_dcs;
    for (std::int64_t n = 0; n < jobs; ++n) {
      auto pick = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1));
      action.route(eligible[pick], j) += 1.0;
    }
  }
  action.process = process_everything(config_, obs, action.route);
  return action;
}

PriceThresholdScheduler::PriceThresholdScheduler(ClusterConfig config,
                                                 double threshold,
                                                 double backlog_factor)
    : config_(std::move(config)), threshold_(threshold),
      backlog_factor_(backlog_factor) {
  config_.validate();
  GREFAR_CHECK_MSG(threshold_ > 0.0, "price threshold must be positive");
  GREFAR_CHECK_MSG(backlog_factor_ >= 0.0, "backlog factor must be >= 0");
}

std::string PriceThresholdScheduler::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "PriceThreshold(%.3f)", threshold_);
  return buf;
}

SlotAction PriceThresholdScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);

  auto caps = dc_capacities(config_, obs);
  auto spare = caps;
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      spare[i] -= obs.dc_queue(i, j) * config_.job_types[j].work;
    }
  }
  // Route like CheapestFirst: the cheapest eligible DC with room.
  for (std::size_t j = 0; j < J; ++j) {
    auto jobs = static_cast<std::int64_t>(std::floor(obs.central_queue[j]));
    const double d = config_.job_types[j].work;
    for (std::int64_t n = 0; n < jobs; ++n) {
      DataCenterId best = config_.job_types[j].eligible_dcs.front();
      double best_cost = std::numeric_limits<double>::infinity();
      bool found = false;
      for (DataCenterId i : config_.job_types[j].eligible_dcs) {
        if (spare[i] < d) continue;
        double cost = best_energy_per_work(config_, obs, i);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
          found = true;
        }
      }
      if (!found) {
        for (DataCenterId i : config_.job_types[j].eligible_dcs) {
          if (spare[i] > spare[best]) best = i;
        }
      }
      action.route(best, j) += 1.0;
      spare[best] -= d;
    }
  }
  // Process only where the price is low enough (or the backlog demands it).
  for (std::size_t i = 0; i < N; ++i) {
    double queued_work = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      queued_work += (obs.dc_queue(i, j) + action.route(i, j)) *
                     config_.job_types[j].work;
    }
    bool overloaded = queued_work > backlog_factor_ * caps[i];
    if (obs.prices[i] > threshold_ && !overloaded) continue;
    double want_work = queued_work;
    double scale = want_work > caps[i] && want_work > 0.0 ? caps[i] / want_work : 1.0;
    for (std::size_t j = 0; j < J; ++j) {
      action.process(i, j) = (obs.dc_queue(i, j) + action.route(i, j)) * scale;
    }
  }
  return action;
}

LocalOnlyScheduler::LocalOnlyScheduler(ClusterConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

SlotAction LocalOnlyScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);
  for (std::size_t j = 0; j < J; ++j) {
    auto jobs = std::floor(obs.central_queue[j]);
    action.route(config_.job_types[j].eligible_dcs.front(), j) = jobs;
  }
  action.process = process_everything(config_, obs, action.route);
  return action;
}

}  // namespace grefar
