// TaskRegistries: per-task counter/profile registries with an ordered merge.
//
// The parallel runners (SimRunner, and anything else that fans closures over
// a pool) must not let worker threads touch the caller's registries: the
// active-registry pointers are thread-local, and counters promise
// bit-identical totals at any --jobs value. The discipline — snapshot the
// parent's active registries, give every task a private pair, and merge them
// back *in task index order* after the join — was historically open-coded at
// each fan-out site with raw CounterRegistry::merge() calls. That raw access
// is exactly what the grefar-counter-discipline check (DESIGN.md §13) bans
// outside src/obs, so the whole pattern lives here as one helper instead.
//
// Usage (see parallel/sim_runner.cc):
//
//   obs::TaskRegistries regs(tasks.size());
//   pool.submit([..., i] {
//     obs::CountersScope counters(regs.counters(i));
//     obs::ProfileScope profile(regs.profile(i));
//     tasks[i]();
//   });
//   pool.wait_idle();
//   regs.merge_ordered();  // caller thread, after every task finished
//
// When the calling thread has no registry of a kind active, the matching
// accessors return nullptr and the merge skips that kind — tasks then run
// with instrumentation off, exactly as before.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/counters.h"
#include "obs/profile.h"

namespace grefar::obs {

class TaskRegistries {
 public:
  /// Snapshots the calling thread's active registries and sizes one private
  /// registry pair per task (allocated only for the kinds actually active).
  explicit TaskRegistries(std::size_t num_tasks);

  TaskRegistries(const TaskRegistries&) = delete;
  TaskRegistries& operator=(const TaskRegistries&) = delete;

  /// Task `i`'s private counter registry; nullptr when the parent thread had
  /// none active (instrumentation stays off inside the task).
  CounterRegistry* counters(std::size_t i);

  /// Task `i`'s private profile registry; nullptr likewise.
  ProfileRegistry* profile(std::size_t i);

  /// Merges every task registry into the parent registries in task index
  /// order. Counters are sums and gauges maxes — order-insensitive — but the
  /// fixed order keeps the merge bit-identical to the serial run by
  /// construction rather than by argument. Call from the snapshotting thread
  /// after all tasks finished; safe to call when nothing was active.
  void merge_ordered();

 private:
  CounterRegistry* parent_counters_;
  ProfileRegistry* parent_profile_;
  std::vector<CounterRegistry> task_counters_;
  std::vector<ProfileRegistry> task_profiles_;
};

}  // namespace grefar::obs
