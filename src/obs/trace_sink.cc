#include "obs/trace_sink.h"

#include "util/check.h"

namespace grefar::obs {

TraceSink::TraceSink(Options options) : options_(std::move(options)) {
  if (!options_.path.empty()) {
    file_.open(options_.path, std::ios::out | std::ios::trunc);
    GREFAR_CHECK_MSG(file_.is_open(),
                     "cannot open trace file '" << options_.path << "' for writing");
  }
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::write(const JsonValue& record) {
  std::string line = record.dump();  // serialize outside the lock
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_ << line << '\n';
  if (options_.ring_capacity > 0) {
    if (ring_.size() == options_.ring_capacity) ring_.pop_front();
    ring_.push_back(std::move(line));
  }
  ++records_written_;
}

std::vector<std::string> TraceSink::ring() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TraceSink::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_written_;
}

void TraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_.flush();
}

}  // namespace grefar::obs
