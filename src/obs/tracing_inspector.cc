#include "obs/tracing_inspector.h"

#include <cmath>

#include "obs/trace_scope.h"
#include "util/check.h"
#include "util/matrix.h"

namespace grefar::obs {

namespace {

JsonValue array_of(const std::vector<double>& values) {
  JsonArray out;
  out.reserve(values.size());
  for (double v : values) out.emplace_back(v);
  return out;
}

JsonValue array_of(const std::vector<std::int64_t>& values) {
  JsonArray out;
  out.reserve(values.size());
  for (std::int64_t v : values) out.emplace_back(v);
  return out;
}

// Dense array up to `threshold` entries; past it, a sparse object over the
// non-zero entries (see TracingInspectorOptions::sparse_array_threshold).
template <typename T>
JsonValue sparse_or_dense(const std::vector<T>& values, std::size_t threshold) {
  if (values.size() <= threshold) return array_of(values);
  JsonArray idx;
  JsonArray val;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != T{}) {
      idx.emplace_back(static_cast<double>(i));
      val.emplace_back(static_cast<double>(values[i]));
    }
  }
  JsonObject o;
  o.emplace("n", static_cast<double>(values.size()));
  o.emplace("idx", std::move(idx));
  o.emplace("val", std::move(val));
  return JsonValue(std::move(o));
}

// Rows as dense arrays up to `threshold` columns; past it each row becomes
// the same {"n", "idx", "val"} sparse object as the long vectors above (at
// J = 10^6 a dense row dump would dwarf the trace).
JsonValue rows_of(const MatrixD& m, std::size_t threshold) {
  JsonArray rows;
  rows.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (m.cols() <= threshold) {
      JsonArray row;
      row.reserve(m.cols());
      for (std::size_t j = 0; j < m.cols(); ++j) row.emplace_back(m(i, j));
      rows.emplace_back(std::move(row));
    } else {
      JsonArray idx;
      JsonArray val;
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (m(i, j) != 0.0) {
          idx.emplace_back(static_cast<double>(j));
          val.emplace_back(m(i, j));
        }
      }
      JsonObject o;
      o.emplace("n", static_cast<double>(m.cols()));
      o.emplace("idx", std::move(idx));
      o.emplace("val", std::move(val));
      rows.emplace_back(JsonValue(std::move(o)));
    }
  }
  return rows;
}

}  // namespace

TracingInspector::TracingInspector(std::shared_ptr<TraceSink> sink,
                                   TracingInspectorOptions options)
    : sink_(std::move(sink)), options_(options) {
  GREFAR_CHECK(sink_ != nullptr);
}

void TracingInspector::inspect(const SlotRecord& record) {
  GREFAR_CHECK(record.obs != nullptr && record.action != nullptr &&
               record.routed != nullptr && record.served_work != nullptr);
  JsonObject root;
  root.emplace("slot", static_cast<double>(record.slot));
  const std::size_t sparse_at = options_.sparse_array_threshold;
  root.emplace("prices", array_of(record.obs->prices));
  root.emplace("central_queue", sparse_or_dense(record.obs->central_queue, sparse_at));
  if (record.dc_capacity != nullptr) {
    root.emplace("dc_capacity", array_of(*record.dc_capacity));
  }
  if (record.dc_energy_cost != nullptr) {
    root.emplace("dc_energy_cost", array_of(*record.dc_energy_cost));
  }
  if (record.dc_completions != nullptr) {
    root.emplace("dc_completions", array_of(*record.dc_completions));
  }
  if (record.dc_delay_sum != nullptr) {
    root.emplace("dc_delay_sum", array_of(*record.dc_delay_sum));
  }
  if (record.account_work != nullptr) {
    root.emplace("account_work", sparse_or_dense(*record.account_work, sparse_at));
  }
  root.emplace("fairness", record.fairness);
  if (record.arrivals != nullptr) {
    root.emplace("arrivals", sparse_or_dense(*record.arrivals, sparse_at));
  }
  if (record.central_after != nullptr) {
    root.emplace("central_after", sparse_or_dense(*record.central_after, sparse_at));
  }
  if (record.admission_active) {
    // Admission / value economics block (workload/admission.h): emitted only
    // for runs where a policy or valued arrivals make it meaningful, so
    // plain traces keep their pre-admission shape byte-for-byte.
    JsonObject adm;
    if (record.offered != nullptr) {
      adm.emplace("offered", sparse_or_dense(*record.offered, sparse_at));
    }
    adm.emplace("admitted_value", record.admitted_value);
    adm.emplace("rejected_value", record.rejected_value);
    adm.emplace("realized_value", record.realized_value);
    adm.emplace("decay_loss", record.decay_loss);
    adm.emplace("abandoned_jobs", record.abandoned_jobs);
    adm.emplace("abandoned_work", record.abandoned_work);
    adm.emplace("abandoned_value", record.abandoned_value);
    adm.emplace("queued_value_after", record.queued_value_after);
    adm.emplace("deadline_violations",
                static_cast<double>(record.deadline_violations));
    root.emplace("admission", JsonValue(std::move(adm)));
  }
  if (options_.include_matrices) {
    root.emplace("dc_queue", rows_of(record.obs->dc_queue, sparse_at));
    root.emplace("route_ask", rows_of(record.action->route, sparse_at));
    root.emplace("process_ask", rows_of(record.action->process, sparse_at));
    root.emplace("routed", rows_of(*record.routed, sparse_at));
    root.emplace("served_work", rows_of(*record.served_work, sparse_at));
    if (record.dc_after != nullptr) {
      root.emplace("dc_after", rows_of(*record.dc_after, sparse_at));
    }
  }
  if (record.scope != nullptr) {
    const TraceScope& scope = *record.scope;
    JsonObject annotations;
    annotations.emplace("drift_weights_negative",
                        static_cast<double>(scope.drift_weights_negative));
    annotations.emplace("drift_weights_nonnegative",
                        static_cast<double>(scope.drift_weights_nonnegative));
    JsonArray splits;
    splits.reserve(scope.tie_splits.size());
    for (const auto& split : scope.tie_splits) {
      JsonObject s;
      s.emplace("job_type", static_cast<double>(split.job_type));
      s.emplace("group_size", static_cast<double>(split.group_size));
      s.emplace("jobs", split.jobs);
      s.emplace("zero_capacity_skipped",
                static_cast<double>(split.zero_capacity_skipped));
      splits.emplace_back(std::move(s));
    }
    annotations.emplace("tie_splits", std::move(splits));
    if (scope.admission.active) {
      // What the admission policy saw and decided, including the value-
      // density threshold it applied (the engine fills these, not the
      // scheduler). NaN thresholds serialize as null.
      JsonObject a;
      a.emplace("offered_jobs", static_cast<double>(scope.admission.offered_jobs));
      a.emplace("admitted_jobs",
                static_cast<double>(scope.admission.admitted_jobs));
      a.emplace("rejected_jobs",
                static_cast<double>(scope.admission.rejected_jobs));
      a.emplace("admitted_value", scope.admission.admitted_value);
      a.emplace("rejected_value", scope.admission.rejected_value);
      if (std::isnan(scope.admission.threshold)) {
        a.emplace("threshold", JsonValue(nullptr));
      } else {
        a.emplace("threshold", scope.admission.threshold);
      }
      annotations.emplace("admission", std::move(a));
    }
    root.emplace("annotations", std::move(annotations));
  }
  sink_->write(JsonValue(std::move(root)));
  ++slots_traced_;
}

TeeInspector::TeeInspector(std::vector<std::shared_ptr<SlotInspector>> inspectors)
    : inspectors_(std::move(inspectors)) {
  for (const auto& inspector : inspectors_) GREFAR_CHECK(inspector != nullptr);
}

void TeeInspector::inspect(const SlotRecord& record) {
  for (const auto& inspector : inspectors_) inspector->inspect(record);
}

}  // namespace grefar::obs
