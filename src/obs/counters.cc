#include "obs/counters.h"

#include <limits>

namespace grefar::obs {

void CounterRegistry::count(std::string_view name, std::uint64_t n) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), n);
  } else {
    it->second += n;
  }
}

void CounterRegistry::gauge_max(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const auto& [name, n] : other.counters_) count(name, n);
  for (const auto& [name, v] : other.gauges_) gauge_max(name, v);
}

void CounterRegistry::clear() {
  counters_.clear();
  gauges_.clear();
}

std::uint64_t CounterRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double CounterRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? -std::numeric_limits<double>::infinity() : it->second;
}

JsonValue CounterRegistry::dump() const {
  JsonObject counters;
  for (const auto& [name, n] : counters_) {
    counters.emplace(name, static_cast<double>(n));
  }
  JsonObject gauges;
  for (const auto& [name, v] : gauges_) gauges.emplace(name, v);
  JsonObject root;
  root.emplace("counters", std::move(counters));
  root.emplace("gauges", std::move(gauges));
  return root;
}

CountersScope::CountersScope(CounterRegistry* registry)
    : previous_(detail::t_active_counters) {
  detail::t_active_counters = registry;
}

CountersScope::~CountersScope() { detail::t_active_counters = previous_; }

}  // namespace grefar::obs
