// TraceSink: where structured slot records go.
//
// One sink serves a whole run (or a whole sweep): records are serialized as
// compact single-line JSON and (a) appended to a JSONL file when a path is
// configured, and (b) kept in a bounded in-memory ring buffer so tests and
// in-process tools can inspect the most recent records without touching the
// filesystem. Writes are mutex-guarded — several engines may share a sink —
// and serialization happens outside the lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace grefar::obs {

class TraceSink {
 public:
  struct Options {
    /// JSONL output path; empty keeps records in memory only.
    std::string path;
    /// How many of the most recent serialized records the ring retains.
    std::size_t ring_capacity = 256;
  };

  explicit TraceSink(Options options);
  ~TraceSink();

  /// Serializes `record` (compact) and appends it as one JSONL line.
  void write(const JsonValue& record);

  /// Snapshot of the ring buffer, oldest first.
  std::vector<std::string> ring() const;

  std::uint64_t records_written() const;

  /// Flushes the file stream (called by the destructor too).
  void flush();

  const std::string& path() const { return options_.path; }

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::ofstream file_;
  std::deque<std::string> ring_;
  std::uint64_t records_written_ = 0;
};

}  // namespace grefar::obs
