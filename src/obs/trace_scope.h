// TraceScope: scheduler-internal annotations for the slot trace.
//
// The engine clears one TraceScope per slot and passes it to
// Scheduler::decide_into whenever a SlotInspector is attached (nullptr
// otherwise, so an untraced run pays nothing). Schedulers that have
// interesting internal structure — GreFar's routing tie-break is the
// canonical case — append annotations describing *why* the action looks the
// way it does; the TracingInspector serializes them alongside the record.
// Schedulers are free to ignore the scope entirely.
#pragma once

#include <cstddef>
#include <vector>

namespace grefar {

struct TraceScope {
  /// One routing tie-group split: `group_size` equally-beneficial DCs for
  /// `job_type` shared `jobs` routed jobs; `zero_capacity_skipped` members
  /// were excluded from the split because they had no capacity this slot.
  struct TieSplit {
    std::size_t job_type = 0;
    std::size_t group_size = 0;
    double jobs = 0.0;
    std::size_t zero_capacity_skipped = 0;
  };
  std::vector<TieSplit> tie_splits;

  /// Sign census of the routing drift weights q_{i,j} - Q_j over eligible
  /// (i, j) pairs: negative means routing is beneficial this slot.
  std::size_t drift_weights_negative = 0;
  std::size_t drift_weights_nonnegative = 0;

  /// Admission-stage annotations (filled by the engine, not the scheduler,
  /// when an admission policy runs with an inspector attached): what the
  /// policy saw and decided this slot, including the value-density threshold
  /// it applied (NaN for policies without one).
  struct Admission {
    bool active = false;
    std::int64_t offered_jobs = 0;
    std::int64_t admitted_jobs = 0;
    std::int64_t rejected_jobs = 0;
    double admitted_value = 0.0;
    double rejected_value = 0.0;
    double threshold = 0.0;  // meaningful only when active
  };
  Admission admission;

  /// Reused across slots by the engine; keeps capacity.
  void clear() {
    tie_splits.clear();
    drift_weights_negative = 0;
    drift_weights_nonnegative = 0;
    admission = Admission{};
  }
};

}  // namespace grefar
