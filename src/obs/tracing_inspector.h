// TracingInspector: SlotInspector -> structured JSONL slot records.
//
// Attached to a SimulationEngine, it converts every SlotRecord into one JSON
// object — prices, queue state, the scheduler's ask, what the engine actually
// routed/served, per-DC capacity and billed energy, per-account work,
// fairness, completions, post-slot queues — plus scheduler-internal
// annotations (TraceScope: tie-group splits, drift-weight signs) when the
// scheduler filled any. Records go to a shared TraceSink (JSONL file and/or
// in-memory ring).
//
// The serialization is deterministic: JsonObject keys are ordered and every
// number comes from the deterministic simulation state, so two runs of the
// same seed produce byte-identical traces (pinned by tests/obs).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace_sink.h"
#include "sim/slot_inspector.h"

namespace grefar::obs {

struct TracingInspectorOptions {
  /// Include the N x J matrices (ask, routed, served, post-slot queues).
  /// Off keeps records small for long horizons at the cost of per-(i,j)
  /// detail; the per-DC and per-account aggregates are always emitted.
  bool include_matrices = true;
  /// Per-type / per-account vectors longer than this — and matrix rows with
  /// more columns than this — are emitted in sparse form, {"n": length,
  /// "idx": [...], "val": [...]} over the non-zero entries, instead of a
  /// dense array. At a million accounts a dense per-slot array would dwarf
  /// the trace; at the default threshold every existing (small) scenario
  /// keeps its dense byte-identical records.
  std::size_t sparse_array_threshold = 4096;
};

class TracingInspector final : public SlotInspector {
 public:
  explicit TracingInspector(std::shared_ptr<TraceSink> sink,
                            TracingInspectorOptions options = {});

  void inspect(const SlotRecord& record) override;

  const std::shared_ptr<TraceSink>& sink() const { return sink_; }
  std::int64_t slots_traced() const { return slots_traced_; }

 private:
  std::shared_ptr<TraceSink> sink_;
  TracingInspectorOptions options_;
  std::int64_t slots_traced_ = 0;
};

/// Fans one SlotRecord out to several inspectors, in order. Lets a tracer
/// ride alongside an already-attached inspector (the invariant auditor) on
/// the engine's single inspector slot.
class TeeInspector final : public SlotInspector {
 public:
  explicit TeeInspector(std::vector<std::shared_ptr<SlotInspector>> inspectors);

  void inspect(const SlotRecord& record) override;

 private:
  std::vector<std::shared_ptr<SlotInspector>> inspectors_;
};

}  // namespace grefar::obs
