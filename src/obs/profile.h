// Scoped profiling: per-phase wall-time breakdowns.
//
// A ProfileRegistry accumulates (calls, total nanoseconds) per named phase.
// Activation mirrors the counter registry: a thread-local pointer installed
// by ProfileScope; when none is active a ScopedTimer costs one thread-local
// load and a branch — the steady_clock is only read while profiling is on,
// so the tracing-off hot path never touches the clock.
//
// Wall times are not deterministic (only the counter registry promises
// bit-identical totals across --jobs values); the parallel runner still
// merges per-task profiles at join so a sweep's breakdown covers every leg.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/json.h"

namespace grefar::obs {

class ProfileRegistry {
 public:
  struct Phase {
    std::uint64_t calls = 0;
    double total_ns = 0.0;
  };

  void record(std::string_view name, double ns, std::uint64_t calls = 1);
  void merge(const ProfileRegistry& other);
  bool empty() const { return phases_.empty(); }
  void clear() { phases_.clear(); }

  const std::map<std::string, Phase, std::less<>>& phases() const { return phases_; }

  /// Aligned table (phase | calls | total ms | mean us), phases sorted by
  /// total time descending — rendered via stats/summary_table.
  std::string summary_table() const;

  /// {"phase": {"calls": n, "total_ms": t}, ...}
  JsonValue dump() const;

 private:
  std::map<std::string, Phase, std::less<>> phases_;
};

namespace detail {
// Inline thread_local for the same reason as the counter registry's: a
// ScopedTimer on an off path must cost a TLS load and a branch, not a call.
inline thread_local ProfileRegistry* t_active_profile = nullptr;
}  // namespace detail

/// The calling thread's active profile registry (nullptr = profiling off).
inline ProfileRegistry* active_profile() { return detail::t_active_profile; }

/// True when a registry is active (lets call sites skip building inputs and
/// gate clock reads — the off path must never touch the clock).
inline bool profiling() { return active_profile() != nullptr; }

/// Instrumentation entry point mirroring obs::count(): a no-op (one TL load
/// + branch) when no registry is active. This — not a raw registry pointer —
/// is how instrumented code outside src/obs records phase times; the
/// grefar-counter-discipline check (DESIGN.md §13) enforces it.
inline void record(std::string_view name, double ns, std::uint64_t calls = 1) {
  if (ProfileRegistry* r = active_profile()) r->record(name, ns, calls);
}

/// RAII activation, nesting like CountersScope.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileRegistry* registry);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileRegistry* previous_;
};

/// Times one scope under `name` (a string literal; the pointer must outlive
/// the timer). When profiling is off neither clock read happens.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : registry_(active_profile()), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      auto ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      registry_->record(name_, ns);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileRegistry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Accumulating lap timer for tight loops where a ScopedTimer pair per
/// iteration is measurable overhead even when profiling is off (see the
/// counters.h hot-loop rule): the caller laps around each phase, accumulates
/// the nanoseconds into locals, and flushes once per solve via obs::record().
/// Both clock reads live here, behind the enabled() gate, so instrumented
/// solver code contains no direct clock calls — which is what lets the
/// solvers carry the GREFAR_DETERMINISTIC annotation (clock reads are banned
/// there; the sanctioned profiling machinery in src/obs is the one exception,
/// and wall times are documented non-deterministic).
class PhaseClock {
 public:
  PhaseClock() : enabled_(active_profile() != nullptr) {}

  /// Profiling was active when this clock was constructed. Callers may use
  /// this to skip accumulation arithmetic entirely.
  bool enabled() const { return enabled_; }

  /// Marks the start of a phase. No-op (no clock read) when disabled.
  void start() {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }

  /// Nanoseconds since the last start(); 0.0 when disabled.
  double lap_ns() {
    if (!enabled_) return 0.0;
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace grefar::obs
