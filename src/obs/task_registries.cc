#include "obs/task_registries.h"

namespace grefar::obs {

TaskRegistries::TaskRegistries(std::size_t num_tasks)
    : parent_counters_(active_counters()),
      parent_profile_(active_profile()),
      task_counters_(parent_counters_ != nullptr ? num_tasks : 0),
      task_profiles_(parent_profile_ != nullptr ? num_tasks : 0) {}

CounterRegistry* TaskRegistries::counters(std::size_t i) {
  return parent_counters_ != nullptr ? &task_counters_[i] : nullptr;
}

ProfileRegistry* TaskRegistries::profile(std::size_t i) {
  return parent_profile_ != nullptr ? &task_profiles_[i] : nullptr;
}

void TaskRegistries::merge_ordered() {
  for (auto& c : task_counters_) parent_counters_->merge(c);
  for (auto& p : task_profiles_) parent_profile_->merge(p);
}

}  // namespace grefar::obs
