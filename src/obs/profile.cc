#include "obs/profile.h"

#include <algorithm>
#include <vector>

#include "stats/summary_table.h"
#include "util/strings.h"

namespace grefar::obs {

void ProfileRegistry::record(std::string_view name, double ns, std::uint64_t calls) {
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    phases_.emplace(std::string(name), Phase{calls, ns});
  } else {
    it->second.calls += calls;
    it->second.total_ns += ns;
  }
}

void ProfileRegistry::merge(const ProfileRegistry& other) {
  for (const auto& [name, phase] : other.phases_) {
    record(name, phase.total_ns, phase.calls);
  }
}

std::string ProfileRegistry::summary_table() const {
  std::vector<std::pair<std::string, Phase>> rows(phases_.begin(), phases_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  SummaryTable table({"phase", "calls", "total ms", "mean us"});
  for (const auto& [name, phase] : rows) {
    double mean_us =
        phase.calls > 0 ? phase.total_ns / 1e3 / static_cast<double>(phase.calls) : 0.0;
    table.add_row({name, std::to_string(phase.calls),
                   format_fixed(phase.total_ns / 1e6, 3), format_fixed(mean_us, 3)});
  }
  return table.render();
}

JsonValue ProfileRegistry::dump() const {
  JsonObject root;
  for (const auto& [name, phase] : phases_) {
    JsonObject entry;
    entry.emplace("calls", static_cast<double>(phase.calls));
    entry.emplace("total_ms", phase.total_ns / 1e6);
    root.emplace(name, std::move(entry));
  }
  return root;
}

ProfileScope::ProfileScope(ProfileRegistry* registry)
    : previous_(detail::t_active_profile) {
  detail::t_active_profile = registry;
}

ProfileScope::~ProfileScope() { detail::t_active_profile = previous_; }

}  // namespace grefar::obs
