// Counters & gauges: the numeric half of the observability layer.
//
// A CounterRegistry is a named bag of plain (non-atomic) uint64 counters and
// double max-gauges. Instrumented code never holds a registry directly; it
// calls the free functions obs::count() / obs::gauge_max(), which consult a
// thread-local "active registry" pointer. When no registry is active (the
// default) an instrumentation site costs one thread-local load and a
// predictable branch — nothing else — so the hooks stay compiled into
// Release hot paths.
//
// Determinism contract: counters are sums and gauges are maxes, both
// order-insensitive, and the parallel runner (src/parallel/sim_runner.cc)
// gives every task its own registry and merges them into the parent at join
// in task order. Counter totals are therefore bit-identical at any --jobs
// value — the same discipline the sweep metrics follow.
//
// Hot-loop sites should accumulate locally and flush once per solve
// (obs::count("lp.pivots", n) at the end, not one call per pivot); the
// registry lookup is a string map probe, cheap per solve but not per
// iteration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/json.h"

namespace grefar::obs {

/// Named uint64 counters (summed on merge) and double gauges (maxed on
/// merge). Not thread-safe: one registry belongs to one thread at a time.
class CounterRegistry {
 public:
  /// Adds `n` to counter `name` (creating it at zero).
  void count(std::string_view name, std::uint64_t n = 1);

  /// Raises gauge `name` to at least `value` (creating it at `value`).
  void gauge_max(std::string_view name, double value);

  /// Sums counters and maxes gauges from `other` into this registry.
  void merge(const CounterRegistry& other);

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void clear();

  /// Value of a counter/gauge (0 / -inf when absent) — for tests and tools.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }

  /// {"counters": {name: n, ...}, "gauges": {name: v, ...}} — the bench
  /// harness prints this as the --counters JSON block.
  JsonValue dump() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

namespace detail {
// Inline thread_local so active_counters() compiles down to one TLS load at
// every instrumentation site instead of an out-of-line call — the whole
// "near-zero when off" promise rests on this.
inline thread_local CounterRegistry* t_active_counters = nullptr;
}  // namespace detail

/// The calling thread's active registry (nullptr = instrumentation off).
inline CounterRegistry* active_counters() { return detail::t_active_counters; }

/// RAII activation: installs `registry` (may be nullptr) as the calling
/// thread's active registry for the scope's lifetime, restoring the previous
/// one on destruction. Scopes nest.
class CountersScope {
 public:
  explicit CountersScope(CounterRegistry* registry);
  ~CountersScope();
  CountersScope(const CountersScope&) = delete;
  CountersScope& operator=(const CountersScope&) = delete;

 private:
  CounterRegistry* previous_;
};

/// Instrumentation entry points: no-ops (one TL load + branch) when no
/// registry is active on this thread.
inline void count(std::string_view name, std::uint64_t n = 1) {
  if (CounterRegistry* r = active_counters()) r->count(name, n);
}

inline void gauge_max(std::string_view name, double value) {
  if (CounterRegistry* r = active_counters()) r->gauge_max(name, value);
}

/// True when a registry is active (lets call sites skip building inputs).
inline bool counting() { return active_counters() != nullptr; }

}  // namespace grefar::obs
