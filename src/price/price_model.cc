#include "price/price_model.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace grefar {

ConstantPriceModel::ConstantPriceModel(std::vector<double> prices)
    : prices_(std::move(prices)) {
  GREFAR_CHECK(!prices_.empty());
  for (double p : prices_) GREFAR_CHECK_MSG(p > 0.0, "prices must be positive");
}

double ConstantPriceModel::price(std::size_t dc, std::int64_t t) const {
  GREFAR_CHECK(dc < prices_.size());
  GREFAR_CHECK(t >= 0);
  return prices_[dc];
}

DiurnalOuPriceModel::DiurnalOuPriceModel(std::vector<DiurnalOuParams> params,
                                         std::uint64_t seed)
    : params_(std::move(params)),
      seed_(seed),
      cache_(params_.size()),
      ou_state_(params_.size(), 0.0) {
  GREFAR_CHECK(!params_.empty());
  rng_.reserve(params_.size());
  Rng root(seed_);
  for (std::size_t dc = 0; dc < params_.size(); ++dc) {
    rng_.push_back(root.fork(dc));
  }
}

void DiurnalOuPriceModel::extend(std::size_t dc, std::int64_t t) const {
  const auto& p = params_[dc];
  auto& series = cache_[dc];
  while (static_cast<std::int64_t>(series.size()) <= t) {
    std::int64_t slot = static_cast<std::int64_t>(series.size());
    double hour = static_cast<double>(slot % 24);
    double diurnal = 0.5 * p.diurnal_amplitude *
                     std::cos(2.0 * std::numbers::pi * (hour - p.peak_hour) / 24.0);
    ou_state_[dc] = (1.0 - p.reversion) * ou_state_[dc] +
                    rng_[dc].normal(0.0, p.volatility);
    series.push_back(std::max(p.floor, p.mean + diurnal + ou_state_[dc]));
  }
}

double DiurnalOuPriceModel::price(std::size_t dc, std::int64_t t) const {
  GREFAR_CHECK(dc < params_.size());
  GREFAR_CHECK(t >= 0);
  extend(dc, t);
  return cache_[dc][static_cast<std::size_t>(t)];
}

SpikyPriceModel::SpikyPriceModel(std::shared_ptr<const PriceModel> base,
                                 double spike_prob, double spike_factor,
                                 double decay, std::uint64_t seed)
    : base_(std::move(base)),
      spike_prob_(spike_prob),
      spike_factor_(spike_factor),
      decay_(decay),
      seed_(seed) {
  GREFAR_CHECK(base_ != nullptr);
  GREFAR_CHECK(spike_prob_ >= 0.0 && spike_prob_ <= 1.0);
  GREFAR_CHECK(spike_factor_ >= 1.0);
  GREFAR_CHECK(decay_ >= 0.0 && decay_ < 1.0);
  const std::size_t n = base_->num_data_centers();
  multiplier_cache_.resize(n);
  spike_state_.assign(n, 0.0);
  Rng root(seed_);
  rng_.reserve(n);
  for (std::size_t dc = 0; dc < n; ++dc) rng_.push_back(root.fork(dc + 1000));
}

void SpikyPriceModel::extend(std::size_t dc, std::int64_t t) const {
  auto& series = multiplier_cache_[dc];
  while (static_cast<std::int64_t>(series.size()) <= t) {
    if (rng_[dc].bernoulli(spike_prob_)) {
      spike_state_[dc] = spike_factor_ - 1.0;
    } else {
      spike_state_[dc] *= decay_;
    }
    series.push_back(1.0 + spike_state_[dc]);
  }
}

double SpikyPriceModel::price(std::size_t dc, std::int64_t t) const {
  GREFAR_CHECK(dc < num_data_centers());
  GREFAR_CHECK(t >= 0);
  extend(dc, t);
  return base_->price(dc, t) * multiplier_cache_[dc][static_cast<std::size_t>(t)];
}

TablePriceModel::TablePriceModel(std::vector<std::vector<double>> series)
    : series_(std::move(series)) {
  GREFAR_CHECK(!series_.empty());
  for (const auto& s : series_) {
    GREFAR_CHECK_MSG(!s.empty(), "each data center needs at least one price");
    for (double p : s) GREFAR_CHECK_MSG(p > 0.0, "prices must be positive");
  }
}

double TablePriceModel::price(std::size_t dc, std::int64_t t) const {
  GREFAR_CHECK(dc < series_.size());
  GREFAR_CHECK(t >= 0);
  const auto& s = series_[dc];
  return s[static_cast<std::size_t>(t) % s.size()];
}

std::shared_ptr<const PriceModel> make_paper_price_model(std::uint64_t seed) {
  // Calibrated to Table I averages (0.392 / 0.433 / 0.548) with diurnal
  // swings and volatility in the ranges visible in Fig. 1. The OU noise is
  // zero-mean, so long-run averages converge to `mean`.
  std::vector<DiurnalOuParams> params(3);
  params[0] = {.mean = 0.392,
               .diurnal_amplitude = 0.20,
               .peak_hour = 16.0,
               .reversion = 0.35,
               .volatility = 0.035,
               .floor = 0.05};
  params[1] = {.mean = 0.433,
               .diurnal_amplitude = 0.14,
               .peak_hour = 14.0,
               .reversion = 0.30,
               .volatility = 0.028,
               .floor = 0.05};
  params[2] = {.mean = 0.548,
               .diurnal_amplitude = 0.26,
               .peak_hour = 17.0,
               .reversion = 0.35,
               .volatility = 0.042,
               .floor = 0.05};
  return std::make_shared<DiurnalOuPriceModel>(std::move(params), seed);
}

double average_price(const PriceModel& model, std::size_t dc, std::int64_t horizon) {
  GREFAR_CHECK(horizon > 0);
  double sum = 0.0;
  for (std::int64_t t = 0; t < horizon; ++t) sum += model.price(dc, t);
  return sum / static_cast<double>(horizon);
}

}  // namespace grefar
