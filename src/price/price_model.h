// Electricity price models.
//
// The paper drives GreFar with publicly-available hourly prices (FERC/CAISO)
// near three unnamed data-center locations; we substitute calibrated
// synthetic models (see DESIGN.md §2). phi_i(t) maps (data center, slot) to
// a price per unit of energy; GreFar only ever consumes the realized series.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace grefar {

/// Interface: the electricity price phi_i(t) for data center `dc` at slot `t`.
/// Implementations must be deterministic functions of (construction
/// parameters, dc, t) so simulations replay exactly.
class PriceModel {
 public:
  virtual ~PriceModel() = default;

  /// Price for `dc` during slot `t` (t >= 0). Always > 0.
  virtual double price(std::size_t dc, std::int64_t t) const = 0;

  /// Number of data centers this model covers.
  virtual std::size_t num_data_centers() const = 0;
};

/// Fixed price per data center, constant over time (the setting of prior
/// work [3]; used by the ablation where GreFar's advantage should vanish).
class ConstantPriceModel final : public PriceModel {
 public:
  explicit ConstantPriceModel(std::vector<double> prices);

  double price(std::size_t dc, std::int64_t t) const override;
  std::size_t num_data_centers() const override { return prices_.size(); }

 private:
  std::vector<double> prices_;
};

/// Parameters of one data center's diurnal + mean-reverting price process.
struct DiurnalOuParams {
  double mean = 0.45;             // long-run average price
  double diurnal_amplitude = 0.08;  // peak-vs-trough of the 24 h sinusoid
  double peak_hour = 16.0;        // hour-of-day of the diurnal maximum
  double reversion = 0.35;        // OU mean-reversion rate per slot
  double volatility = 0.02;       // OU noise standard deviation per slot
  double floor = 0.05;            // prices never drop below this
};

/// Diurnal sinusoid plus Ornstein-Uhlenbeck noise, floored at > 0:
///   phi(t) = max(floor, mean + A/2 * cos(2*pi*(hour - peak)/24) + ou(t))
/// where ou(t+1) = (1 - reversion) * ou(t) + N(0, volatility).
///
/// The realized series is generated lazily (and cached) per data center, so
/// price(dc, t) is O(1) amortized and identical across replays with the
/// same seed.
class DiurnalOuPriceModel final : public PriceModel {
 public:
  DiurnalOuPriceModel(std::vector<DiurnalOuParams> params, std::uint64_t seed);

  double price(std::size_t dc, std::int64_t t) const override;
  std::size_t num_data_centers() const override { return params_.size(); }

 private:
  void extend(std::size_t dc, std::int64_t t) const;

  std::vector<DiurnalOuParams> params_;
  std::uint64_t seed_;
  mutable std::vector<std::vector<double>> cache_;
  mutable std::vector<Rng> rng_;
  mutable std::vector<double> ou_state_;
};

/// Wraps another model and injects occasional multiplicative price spikes
/// (deregulated-market behaviour): with probability `spike_prob` per slot a
/// spike of factor `spike_factor` starts and decays geometrically.
class SpikyPriceModel final : public PriceModel {
 public:
  SpikyPriceModel(std::shared_ptr<const PriceModel> base, double spike_prob,
                  double spike_factor, double decay, std::uint64_t seed);

  double price(std::size_t dc, std::int64_t t) const override;
  std::size_t num_data_centers() const override { return base_->num_data_centers(); }

 private:
  void extend(std::size_t dc, std::int64_t t) const;

  std::shared_ptr<const PriceModel> base_;
  double spike_prob_;
  double spike_factor_;
  double decay_;
  std::uint64_t seed_;
  mutable std::vector<std::vector<double>> multiplier_cache_;
  mutable std::vector<Rng> rng_;
  mutable std::vector<double> spike_state_;
};

/// Price series read from memory (e.g. a CSV trace): series[dc][t]; slots
/// beyond the series wrap around (so short traces can drive long runs).
class TablePriceModel final : public PriceModel {
 public:
  explicit TablePriceModel(std::vector<std::vector<double>> series);

  double price(std::size_t dc, std::int64_t t) const override;
  std::size_t num_data_centers() const override { return series_.size(); }

 private:
  std::vector<std::vector<double>> series_;
};

/// The calibrated three-data-center model whose long-run averages match the
/// paper's Table I (0.392, 0.433, 0.548) with diurnal ranges as in Fig. 1.
std::shared_ptr<const PriceModel> make_paper_price_model(std::uint64_t seed);

/// Empirical mean of `model`'s price for `dc` over slots [0, horizon).
double average_price(const PriceModel& model, std::size_t dc, std::int64_t horizon);

}  // namespace grefar
