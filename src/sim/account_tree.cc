#include "sim/account_tree.h"

#include <cmath>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {

namespace {

/// Splits `total` into `n` non-negative parts that sum to `total` exactly:
/// the first n-1 parts are rounded products, the last is the remainder.
/// `skew` = 0 gives an even split; larger values spread the proportions out.
void split_weight(double total, std::size_t n, double skew, Rng& rng,
                  std::vector<double>& out) {
  out.resize(n);
  if (n == 1) {
    out[0] = total;
    return;
  }
  double raw_sum = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    // 1 + skew * U keeps every share strictly positive at any skew.
    out[c] = 1.0 + skew * rng.uniform();
    raw_sum += out[c];
  }
  double assigned = 0.0;
  for (std::size_t c = 0; c + 1 < n; ++c) {
    out[c] = total * (out[c] / raw_sum);
    assigned += out[c];
  }
  // Exact sum-to-parent by construction; clamp fp dust on the remainder.
  out[n - 1] = std::max(total - assigned, 0.0);
}

}  // namespace

AccountTree AccountTree::balanced(const std::vector<std::size_t>& branching,
                                  std::uint64_t seed, double skew) {
  GREFAR_CHECK_MSG(!branching.empty(), "account tree needs at least one level");
  GREFAR_CHECK_MSG(skew >= 0.0, "skew must be non-negative");
  for (std::size_t b : branching) {
    GREFAR_CHECK_MSG(b > 0, "branching factors must be positive");
  }
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> parents(branching.size());
  std::vector<std::vector<double>> weights(branching.size());

  std::vector<double> split;
  split_weight(1.0, branching[0], skew, rng, split);
  weights[0] = split;

  for (std::size_t level = 1; level < branching.size(); ++level) {
    const std::size_t fan = branching[level];
    const std::size_t parents_n = weights[level - 1].size();
    parents[level].reserve(parents_n * fan);
    weights[level].reserve(parents_n * fan);
    for (std::size_t p = 0; p < parents_n; ++p) {
      split_weight(weights[level - 1][p], fan, skew, rng, split);
      for (std::size_t c = 0; c < fan; ++c) {
        parents[level].push_back(static_cast<std::uint32_t>(p));
        weights[level].push_back(split[c]);
      }
    }
  }
  return AccountTree(std::move(parents), std::move(weights));
}

AccountTree::AccountTree(std::vector<std::vector<std::uint32_t>> parents,
                         std::vector<std::vector<double>> weights)
    : parents_(std::move(parents)), weights_(std::move(weights)) {
  validate();
  for (double w : weights_[0]) total_weight_ += w;
}

void AccountTree::validate() const {
  GREFAR_CHECK_MSG(!weights_.empty() && parents_.size() == weights_.size(),
                   "account tree level shapes mismatch");
  GREFAR_CHECK_MSG(parents_[0].empty(), "roots cannot have parents");
  GREFAR_CHECK_MSG(!weights_[0].empty(), "account tree needs at least one root");
  for (std::size_t level = 0; level < weights_.size(); ++level) {
    for (double w : weights_[level]) {
      GREFAR_CHECK_MSG(w >= 0.0, "account tree weight < 0 at level " << level);
    }
    if (level == 0) continue;
    GREFAR_CHECK_MSG(parents_[level].size() == weights_[level].size(),
                     "level " << level << " parent/weight size mismatch");
    GREFAR_CHECK_MSG(!weights_[level].empty(),
                     "level " << level << " has no nodes");
    std::vector<double> child_sum(weights_[level - 1].size(), 0.0);
    for (std::size_t i = 0; i < parents_[level].size(); ++i) {
      const std::uint32_t p = parents_[level][i];
      GREFAR_CHECK_MSG(p < child_sum.size(),
                       "level " << level << " node " << i << " bad parent " << p);
      child_sum[p] += weights_[level][i];
    }
    for (std::size_t p = 0; p < child_sum.size(); ++p) {
      const double expect = weights_[level - 1][p];
      const double tol = 1e-9 * std::max(1.0, std::abs(expect));
      GREFAR_CHECK_MSG(std::abs(child_sum[p] - expect) <= tol,
                       "level " << level << " children of node " << p << " sum to "
                                << child_sum[p] << ", parent weighs " << expect);
    }
  }
}

std::size_t AccountTree::num_nodes(std::size_t level) const {
  GREFAR_CHECK_MSG(level < weights_.size(), "bad account-tree level " << level);
  return weights_[level].size();
}

std::uint32_t AccountTree::parent(std::size_t level, std::size_t idx) const {
  GREFAR_CHECK_MSG(level >= 1 && level < parents_.size(),
                   "bad account-tree level " << level);
  GREFAR_CHECK_MSG(idx < parents_[level].size(), "bad node index " << idx);
  return parents_[level][idx];
}

double AccountTree::weight(std::size_t level, std::size_t idx) const {
  GREFAR_CHECK_MSG(level < weights_.size(), "bad account-tree level " << level);
  GREFAR_CHECK_MSG(idx < weights_[level].size(), "bad node index " << idx);
  return weights_[level][idx];
}

std::uint32_t AccountTree::ancestor_of_leaf(std::size_t leaf,
                                            std::size_t level) const {
  const std::size_t leaf_level = weights_.size() - 1;
  GREFAR_CHECK_MSG(level <= leaf_level, "bad account-tree level " << level);
  GREFAR_CHECK_MSG(leaf < weights_[leaf_level].size(), "bad leaf " << leaf);
  auto node = static_cast<std::uint32_t>(leaf);
  for (std::size_t l = leaf_level; l > level; --l) node = parents_[l][node];
  return node;
}

std::vector<double> AccountTree::gamma_at_level(std::size_t level) const {
  GREFAR_CHECK_MSG(level < weights_.size(), "bad account-tree level " << level);
  GREFAR_CHECK_MSG(total_weight_ > 0.0, "account tree has zero total weight");
  std::vector<double> gamma(weights_[level].size());
  const double inv = 1.0 / total_weight_;
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    gamma[i] = weights_[level][i] * inv;
  }
  return gamma;
}

std::vector<Account> AccountTree::accounts_at_level(std::size_t level) const {
  std::vector<double> gamma = gamma_at_level(level);
  std::vector<Account> accounts(gamma.size());
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    accounts[i].name = "L" + std::to_string(level) + ":" + std::to_string(i);
    accounts[i].gamma = gamma[i];
  }
  return accounts;
}

void AccountTree::aggregate_to_level(const std::vector<double>& leaf_values,
                                     std::size_t level,
                                     std::vector<double>& out) const {
  const std::size_t leaf_level = weights_.size() - 1;
  GREFAR_CHECK_MSG(level <= leaf_level, "bad account-tree level " << level);
  GREFAR_CHECK_MSG(leaf_values.size() == num_leaves(),
                   "leaf_values has " << leaf_values.size() << " entries, tree has "
                                      << num_leaves() << " leaves");
  // Fold one level at a time so every intermediate level's sums are the
  // exact parent-order accumulation (deterministic at any call pattern).
  std::vector<double> current = leaf_values;
  std::vector<double> next;
  for (std::size_t l = leaf_level; l > level; --l) {
    next.assign(weights_[l - 1].size(), 0.0);
    for (std::size_t i = 0; i < current.size(); ++i) {
      next[parents_[l][i]] += current[i];
    }
    current.swap(next);
  }
  out = std::move(current);
}

}  // namespace grefar
