// EnergyCostCurve: minimum-energy server allocation (paper eq. (2) plus the
// optimal choice of b_{i,k}).
//
// Given the available servers of a data center at one slot, the cheapest way
// to serve W work units is to fill server types in ascending energy-per-work
// p_k/s_k order, using each type fractionally at the margin (servers may run
// a fraction of the slot, so b_{i,k} need not be integral — paper §III-C2).
// The resulting energy-for-work function C(W) is piecewise linear, convex and
// increasing. This single implementation is shared by the simulator (cost
// accounting) and the GreFar objective (the V * phi * C(W) term), so the
// scheduler optimizes exactly what the meter charges.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/server.h"
#include "util/annotations.h"
#include "util/matrix.h"

namespace grefar {

class EnergyCostCurve {
 public:
  /// Builds the curve for one data center from availability row `n` (length
  /// K) and the server-type table.
  EnergyCostCurve(const std::vector<ServerType>& server_types,
                  const std::vector<std::int64_t>& available);

  /// An empty curve (capacity 0); rebuild() before use. Lets per-slot hot
  /// paths keep a persistent curve per DC instead of reconstructing.
  EnergyCostCurve() = default;

  /// Recomputes the curve for a new availability row, reusing the segment
  /// storage (no heap traffic once warmed up).
  void rebuild(const std::vector<ServerType>& server_types,
               const std::vector<std::int64_t>& available);

  /// Pointer-row overload for callers whose availability lives in a flat
  /// row-major matrix (the per-slot problem resets straight from the
  /// observation row, no staging copy). `available` points at `count`
  /// entries; `count` must equal the server-type count.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void rebuild(const std::vector<ServerType>& server_types,
               const std::int64_t* available, std::size_t count);

  /// Total processing capacity: sum_k n_k * s_k (work units this slot).
  double capacity() const { return capacity_; }

  /// Minimum energy to serve `work` units (clamped to capacity).
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double energy_for_work(double work) const;

  /// Marginal energy of one more unit of work at load `work`
  /// (right-derivative; returns the last segment's slope beyond capacity).
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double marginal_energy(double work) const;

  /// The busy-server vector b_k achieving energy_for_work(work).
  std::vector<double> busy_servers(double work) const;

  /// Smoothed counterparts of energy_for_work / marginal_energy: the slope
  /// is blended linearly across a band of half-width `band` (work units)
  /// around each inter-segment kink, making C(W) continuously
  /// differentiable. First-order solvers (Frank-Wolfe, PGD) need this to
  /// converge; |smoothed - exact| <= band * (slope jump) / 4 per kink.
  /// The exact curve remains the one used for cost accounting.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double smoothed_energy(double work, double band) const;
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double smoothed_marginal(double work, double band) const;

  /// One linear piece of C(W): a server type's pooled capacity and slope.
  struct Segment {
    ServerTypeId type;
    double speed;           // s_k
    double capacity;        // work this type can absorb (n_k * s_k)
    double energy_per_work; // p_k / s_k
  };

  /// Pieces in ascending energy_per_work order (types with 0 availability
  /// are omitted).
  const std::vector<Segment>& segments() const { return segments_; }

 private:

  std::size_t num_types_ = 0;
  std::vector<Segment> segments_;  // ascending energy_per_work
  double capacity_ = 0.0;
};

}  // namespace grefar
