// SimulationEngine: the discrete-time simulator that drives a Scheduler
// through the system of paper §III and accounts energy, fairness and delay.
//
// Slot lifecycle (see DESIGN.md §3 for the clamping rationale):
//   1. observe x(t) = {prices, availability} and queue state Theta(t);
//   2. scheduler decides z(t) = {r, h};
//   3. routing: up to r_{i,j} whole jobs move FIFO from central queue j to
//      DC queue (i,j) (eligible DCs only, most-beneficial DC first);
//   4. service: up to h_{i,j} * d_j work units of fluid FIFO service per DC
//      queue, total clamped to the DC's available capacity; energy is
//      charged via the minimum-energy curve on the work actually served;
//   5. fairness is scored on the per-account work actually served;
//   6. arrivals a_j(t) join the central queues (visible from slot t+1).
//
// Two optional stages bracket the lifecycle when the workload carries value
// annotations (workload/job.h):
//   0. deadline expiry: before observing, jobs whose deadline has passed are
//      abandoned (they can no longer complete in time and must never be
//      served — auditor invariant G);
//   6'. admission control: an attached AdmissionPolicy screens each arrival
//      batch before it joins the queues; rejected jobs never enter any queue.
// Both stages are skipped entirely (zero per-slot cost beyond one branch)
// when no policy is attached and no job type / arrival carries a deadline.
//
// With the engine's clamping, queue lengths follow
//   Q_j(t+1) = max[Q_j(t) - sum_i r_{i,j}(t), 0] + a_j(t)
//   q_{i,j}(t+1) = max[q_{i,j}(t) + r_{i,j}(t) - h_{i,j}(t), 0]
// which is the paper's dynamics (12)-(13) with service also covering
// just-routed jobs (never-larger queues; Theorem 1's bounds still apply).
// The ScalarQueueSimulator replays the *literal* (12)-(13) for theorem tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace_scope.h"
#include "price/price_model.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/metrics.h"
#include "sim/queue.h"
#include "sim/scheduler.h"
#include "sim/slot_inspector.h"
#include "util/annotations.h"
#include "workload/admission.h"
#include "workload/arrival_process.h"

namespace grefar {

struct EngineOptions {
  /// When true (default) slot-t service may also cover jobs routed during
  /// slot t; when false service applies only to jobs already queued at the
  /// start of the slot (the literal eq. (13) ordering).
  bool serve_routed_same_slot = true;
};

class SimulationEngine {
 public:
  SimulationEngine(ClusterConfig config, std::shared_ptr<const PriceModel> prices,
                   std::shared_ptr<const AvailabilityModel> availability,
                   std::shared_ptr<const ArrivalProcess> arrivals,
                   std::shared_ptr<Scheduler> scheduler, EngineOptions options = {});

  /// Shared-config overload: at M = 10^6 accounts a ClusterConfig weighs
  /// ~10^2 MB, so engine/scheduler/auditor sharing one immutable instance
  /// (instead of a value copy each) is what keeps peak RSS bounded
  /// (DESIGN.md §12). The by-value overload above delegates here.
  SimulationEngine(std::shared_ptr<const ClusterConfig> config,
                   std::shared_ptr<const PriceModel> prices,
                   std::shared_ptr<const AvailabilityModel> availability,
                   std::shared_ptr<const ArrivalProcess> arrivals,
                   std::shared_ptr<Scheduler> scheduler, EngineOptions options = {});

  /// Rebinds this engine to a new scenario without reconstructing it — the
  /// sweep arena's reuse path (DESIGN.md §16). Performs the constructor's
  /// null/dimension checks, swaps in the new models/scheduler/options, and
  /// returns every piece of mutable simulation state (queues, metrics, slot
  /// counter, job ids, per-account accumulators) to its freshly-constructed
  /// value; admission policy and inspector are detached (re-attach per leg).
  /// Scratch buffers keep their high-water capacity, so when the cluster
  /// shape is unchanged the reset itself is allocation-free and the
  /// subsequent run is bitwise identical to a fresh engine's. Passing the
  /// *same* ClusterConfig instance (pointer equality) skips re-validation.
  void reset(std::shared_ptr<const ClusterConfig> config,
             std::shared_ptr<const PriceModel> prices,
             std::shared_ptr<const AvailabilityModel> availability,
             std::shared_ptr<const ArrivalProcess> arrivals,
             std::shared_ptr<Scheduler> scheduler, EngineOptions options = {});

  /// Advances the simulation by `slots` steps.
  void run(std::int64_t slots);

  /// Advances by a single slot.
  GREFAR_HOT_PATH
  void step();

  std::int64_t slot() const { return slot_; }
  const SimMetrics& metrics() const { return metrics_; }
  const ClusterConfig& config() const { return *config_; }
  const Scheduler& scheduler() const { return *scheduler_; }

  /// Queue introspection (jobs).
  double central_queue_length(JobTypeId j) const;
  double dc_queue_length(DataCenterId i, JobTypeId j) const;

  /// Builds the observation for the current slot (exposed for tests).
  SlotObservation observe() const;

  /// Writes the current-slot observation into `out`, reusing its storage
  /// (the engine's own step() path; steady-state allocation-free).
  GREFAR_HOT_PATH
  void observe_into(SlotObservation& out) const;

  /// Attaches a per-slot inspector (nullptr detaches). While attached, the
  /// engine additionally tracks per-(i,j) routed jobs and served work and
  /// hands a SlotRecord to the inspector at the end of every step(); the
  /// extra bookkeeping is skipped entirely when no inspector is set.
  void set_inspector(std::shared_ptr<SlotInspector> inspector);
  SlotInspector* inspector() const { return inspector_.get(); }
  /// Shared handle to the attached inspector (for wrapping, e.g. tee-ing a
  /// tracer with an already-attached invariant auditor).
  const std::shared_ptr<SlotInspector>& shared_inspector() const {
    return inspector_;
  }

  /// Attaches an admission policy (nullptr detaches = admit everything).
  /// The policy screens every arrival batch before it joins the central
  /// queues; decisions are all-or-nothing accounting-wise — the policy
  /// returns how many of the batch's identical jobs to admit, and the
  /// remainder is rejected with its value recorded (never queued).
  /// Deterministic policies keyed on (seed, slot) preserve the engine's
  /// bit-identical replay contract (DESIGN.md §11).
  void set_admission_policy(std::shared_ptr<AdmissionPolicy> policy);
  AdmissionPolicy* admission_policy() const { return admission_.get(); }

 private:
  GREFAR_HOT_PATH
  void route(const SlotObservation& obs, const SlotAction& action);
  GREFAR_HOT_PATH
  void serve(const SlotObservation& obs, const SlotAction& action);
  void admit_arrivals();
  /// Abandons every queued job whose deadline_slot precedes the current
  /// slot (stage 0 above). O(1) per deadline-free queue via the queues'
  /// min-deadline watermark.
  GREFAR_HOT_PATH
  void expire_deadlines();

  std::shared_ptr<const ClusterConfig> config_;  // immutable, shareable
  std::shared_ptr<const PriceModel> prices_;
  std::shared_ptr<const AvailabilityModel> availability_;
  std::shared_ptr<const ArrivalProcess> arrivals_;
  std::shared_ptr<Scheduler> scheduler_;
  std::shared_ptr<AdmissionPolicy> admission_;   // nullptr = admit all
  EngineOptions options_;
  /// True when the arrival process carries per-batch value annotations;
  /// admit_arrivals then pulls valued batches instead of plain counts.
  bool valued_arrivals_ = false;
  /// True when any queued job could ever carry a deadline (a job type
  /// declares one, or arrivals are valued and may annotate one); gates the
  /// expiry stage so deadline-free runs pay nothing.
  bool deadlines_possible_ = false;

  std::int64_t slot_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::vector<FifoJobQueue> central_;            // per job type
  std::vector<std::vector<FifoJobQueue>> dc_;    // [i][j]
  FairnessFunction fairness_fn_;
  SimMetrics metrics_;

  // Per-step buffers reused across slots so the steady-state step() makes
  // no heap allocations of its own (an engine instance is single-threaded;
  // concurrent simulations each own an engine — see src/parallel/).
  SlotObservation obs_scratch_;
  SlotAction action_scratch_;
  std::vector<EnergyCostCurve> curves_;          // per DC, rebuilt per slot
  std::vector<std::int64_t> avail_row_;          // one DC's availability row
  std::vector<double> want_;                     // per-type desired work
  mutable std::vector<unsigned char> active_flag_;  // observe_into: type has queue
  /// Per-account served work, length M. All-zero invariant between slots:
  /// only the accounts listed in touched_accounts_ hold non-zeros, and
  /// serve() clears exactly those on entry — O(active) per slot instead of
  /// an O(M) refill at a million accounts (DESIGN.md §12).
  std::vector<double> account_work_;
  std::vector<std::uint32_t> touched_accounts_;  // accounts served this slot
  std::vector<double> active_work_;              // gathered r_active for scoring
  std::vector<double> routed_per_dc_;            // per-DC routed jobs
  std::vector<std::size_t> route_order_;         // routing destinations, sorted
  std::vector<Completion> completions_;          // one queue's completions
  std::vector<std::int64_t> arrival_counts_;     // per-type admitted arrivals
  std::vector<std::int64_t> offered_counts_;     // per-type pre-admission a_j(t)
  std::vector<ArrivalBatch> batch_scratch_;      // this slot's arrival batches
  std::vector<Job> expired_scratch_;             // this slot's abandoned jobs

  // Per-slot value/admission accumulators, reset at the top of step() and
  // published to metrics / the SlotRecord / the TraceScope at the end.
  std::int64_t slot_offered_jobs_ = 0;
  std::int64_t slot_admitted_jobs_ = 0;
  std::int64_t slot_rejected_jobs_ = 0;
  std::int64_t slot_deadline_violations_ = 0;
  double slot_admitted_value_ = 0.0;
  double slot_rejected_value_ = 0.0;
  double slot_realized_value_ = 0.0;
  double slot_decay_loss_ = 0.0;
  double slot_abandoned_jobs_ = 0.0;
  double slot_abandoned_work_ = 0.0;
  double slot_abandoned_value_ = 0.0;

  // Inspector support: extra per-slot bookkeeping (same reuse discipline as
  // the scratch above), maintained only while inspector_ is attached.
  std::shared_ptr<SlotInspector> inspector_;
  MatrixD routed_mat_;                           // jobs moved per (i,j)
  MatrixD served_mat_;                           // work served per (i,j)
  std::vector<double> dc_capacity_record_;       // per-DC capacity
  std::vector<double> dc_energy_record_;         // per-DC billed cost
  std::vector<double> dc_completions_record_;    // per-DC jobs finished
  std::vector<double> dc_delay_record_;          // per-DC completion delay sum
  double fairness_record_ = 0.0;
  std::vector<double> central_after_;            // Q_j(t+1)
  MatrixD dc_after_;                             // q_{i,j}(t+1)
  TraceScope trace_scope_;                       // scheduler annotations
};

}  // namespace grefar
