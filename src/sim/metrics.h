// SimMetrics: everything the paper's evaluation plots, recorded per slot.
//
// The figures all show *running averages* ("summing up all the values up to
// time t and dividing by t", paper §VI footnote 8); the accessors here
// produce exactly those views from the raw per-slot series.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/p2_quantile.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"
#include "util/annotations.h"
#include "util/json.h"

namespace grefar {

class SimMetrics {
 public:
  /// Per-account TimeSeries are kept only up to this many accounts. Above
  /// it, a million-account run over T slots would allocate M series of T
  /// doubles each; only the cumulative per-account totals are tracked
  /// (account_work_total, always maintained at any M).
  static constexpr std::size_t kMaxPerAccountSeries = 4096;

  SimMetrics(std::size_t num_dcs, std::size_t num_accounts);

  /// Back to the freshly-constructed state. When the (num_dcs, num_accounts)
  /// shape is unchanged, every series is cleared in place keeping its heap
  /// capacity (sweep-arena reuse, allocation-free in steady state); a shape
  /// change falls back to rebuilding. Either way the observable state is
  /// bitwise equal to SimMetrics(num_dcs, num_accounts).
  void reset(std::size_t num_dcs, std::size_t num_accounts);

  /// Records one job completion (total delay in slots) for the percentile
  /// trackers; the engine calls this for every finishing job.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void record_completion_delay(double delay);

  // -- raw per-slot series ---------------------------------------------------
  TimeSeries energy_cost;        // e(t), eq. (2) summed over DCs
  TimeSeries fairness;           // f(t), eq. (3)
  TimeSeries arrived_jobs;       // jobs *admitted* into the queues this slot
  TimeSeries arrived_work;       // work admitted into the queues this slot
  TimeSeries total_queue_jobs;   // sum of all queue lengths (jobs)
  TimeSeries max_queue_jobs;     // max single queue length (jobs)
  // -- admission / value economics (arXiv 1404.4865 lineage) ----------------
  // With no admission policy and no deadlines: offered == arrived (admitted),
  // rejected/abandoned are all-zero, realized value counts completions at
  // their decayed values (base value x decay factor).
  TimeSeries offered_jobs;       // raw a_j(t) total, before admission
  TimeSeries rejected_jobs;      // jobs turned away by the admission policy
  TimeSeries abandoned_jobs;     // jobs deadline-expired out of the queues
  TimeSeries abandoned_work;     // their remaining (unserved) work units
  TimeSeries admitted_value;     // sum of base values admitted
  TimeSeries rejected_value;     // sum of base values rejected
  TimeSeries abandoned_value;    // sum of base values abandoned
  TimeSeries realized_value;     // decayed value realized by completions
  TimeSeries decay_loss;         // base - realized over completions

  double total_realized_value() const { return realized_value.sum(); }
  double total_rejected_value() const { return rejected_value.sum(); }
  double total_abandoned_value() const { return abandoned_value.sum(); }
  std::vector<TimeSeries> dc_energy_cost;   // e_i(t)
  std::vector<TimeSeries> dc_work;          // work processed in DC i
  std::vector<TimeSeries> dc_routed_jobs;   // jobs routed to DC i
  std::vector<TimeSeries> dc_delay_sum;     // sum of total delays of jobs finishing in DC i
  std::vector<TimeSeries> dc_completions;   // jobs finishing in DC i
  std::vector<TimeSeries> dc_price;         // phi_i(t)
  /// Per-slot work processed for account m. Empty (not recorded) when the
  /// cluster has more than kMaxPerAccountSeries accounts — check
  /// has_per_account_series() before indexing.
  std::vector<TimeSeries> account_work;
  /// Cumulative work processed for account m, maintained at any M (a flat
  /// vector of doubles: 8 MB at M = 10^6, independent of the horizon).
  std::vector<double> account_work_total;

  bool has_per_account_series() const { return !account_work.empty(); }

  std::size_t num_data_centers() const { return dc_work.size(); }
  std::size_t num_accounts() const { return num_accounts_; }
  std::size_t slots() const { return energy_cost.size(); }

  // -- derived views (the paper's y-axes) -------------------------------------
  /// Fig. 2a/3a/4a: running average energy cost.
  TimeSeries average_energy_cost() const { return energy_cost.prefix_average(); }

  /// Fig. 3b/4b: running average fairness score.
  TimeSeries average_fairness() const { return fairness.prefix_average(); }

  /// Fig. 2b,c/3c/4c: running average delay of jobs completed in DC i
  /// (total delay incurred so far / jobs finished so far).
  TimeSeries average_dc_delay(std::size_t dc) const;

  /// Overall mean delay across all DCs (jobs-weighted).
  double mean_delay() const;

  /// Mean work per slot processed in DC i (the in-text §VI-B1 numbers).
  double mean_dc_work(std::size_t dc) const;

  /// Final running-average values (the figures' right edge).
  double final_average_energy_cost() const { return energy_cost.mean(); }
  double final_average_fairness() const { return fairness.mean(); }
  double final_average_dc_delay(std::size_t dc) const;

  /// Streaming delay percentiles across all completed jobs (P2 estimator):
  /// tail latency, which the paper's averages hide.
  double delay_p50() const { return delay_p50_.value(); }
  double delay_p95() const { return delay_p95_.value(); }
  double delay_p99() const { return delay_p99_.value(); }
  RunningStats delay_stats;  // mean/max over all completions

  /// End-of-run summary for bench/tool JSON output. The delay percentiles
  /// are NaN when no job ever completed; they serialize as null here (the
  /// JSON layer rejects NaN outright).
  JsonValue summary_json() const;

 private:
  std::size_t num_accounts_ = 0;
  P2Quantile delay_p50_{0.50};
  P2Quantile delay_p95_{0.95};
  P2Quantile delay_p99_{0.99};
};

}  // namespace grefar
