// Server and data-center hardware model (paper §III-A).
//
// A type-k server has processing speed s_k (work units per slot) and active
// power p_k. Idle power is normalized to zero (paper §III-C1): only the
// busy-minus-idle differential matters to the scheduler, because turning
// servers on/off is an external event captured by the availability model.
#pragma once

#include <string>
#include <vector>

#include "util/check.h"

namespace grefar {

using ServerTypeId = std::size_t;

/// Static description of one server type.
struct ServerType {
  std::string name;
  double speed = 1.0;       // s_k: work units processed per slot when busy
  double busy_power = 1.0;  // p_k: energy per slot when busy (idle = 0)
};

/// One data center's installed fleet: `installed[k]` servers of type k.
/// Availability models expose how many of these are usable each slot.
struct DataCenterConfig {
  std::string name;
  std::vector<std::int64_t> installed;  // per server type
};

/// Validates fleet shapes against the server-type table.
inline void validate_data_centers(const std::vector<DataCenterConfig>& dcs,
                                  const std::vector<ServerType>& server_types) {
  GREFAR_CHECK_MSG(!dcs.empty(), "need at least one data center");
  GREFAR_CHECK_MSG(!server_types.empty(), "need at least one server type");
  for (const auto& st : server_types) {
    GREFAR_CHECK_MSG(st.speed > 0.0, "server type '" << st.name << "' speed <= 0");
    GREFAR_CHECK_MSG(st.busy_power >= 0.0,
                     "server type '" << st.name << "' has negative power");
  }
  for (const auto& dc : dcs) {
    GREFAR_CHECK_MSG(dc.installed.size() == server_types.size(),
                     "data center '" << dc.name << "' fleet width mismatch");
    for (auto n : dc.installed) {
      GREFAR_CHECK_MSG(n >= 0, "data center '" << dc.name << "' negative fleet");
    }
  }
}

}  // namespace grefar
