// FifoJobQueue: fluid FIFO service with exact per-job delay accounting.
//
// The paper's queue dynamics (12)-(13) track scalar lengths; to *measure*
// delay (Figs. 2-4) we additionally keep the individual jobs. Service is
// fluid: h_{i,j}(t) jobs' worth of work (h * d_j work units) is applied to
// the queue head first (jobs can pause/resume, paper §III-B), and a job
// departs in the slot its remaining work reaches zero. The scalar length
// in jobs — total remaining work / d_j — then follows exactly the clamped
// dynamics q(t+1) = max[q + r - h, 0].
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/annotations.h"
#include "workload/job.h"

namespace grefar {

/// A job completion event: who finished and how long it took.
struct Completion {
  Job job;
  std::int64_t completion_slot = 0;

  /// Slots from arrival at the central scheduler to completion.
  std::int64_t total_delay() const { return completion_slot - job.arrival_slot; }
  /// Slots from entering the data-center queue to completion.
  std::int64_t dc_delay() const { return completion_slot - job.dc_entry_slot; }
};

class FifoJobQueue {
 public:
  /// `job_work` is d_j for the (single) job type this queue holds; used to
  /// convert between work units and job counts.
  explicit FifoJobQueue(double job_work);

  /// Enqueues an arriving/routed job (its remaining work must be positive).
  void push(Job job);

  /// Empties the queue but keeps the job-type binding and the vector's heap
  /// capacity (engine reuse across sweep legs); observable state is bitwise
  /// equal to a fresh FifoJobQueue(job_work()).
  void clear() {
    jobs_.clear();
    head_ = 0;
    remaining_work_ = 0.0;
    total_value_ = 0.0;
    min_deadline_slot_ = kNoDeadlineSlot;
  }

  /// Pops the frontmost whole job (for routing from the central queue).
  /// Contract-checked non-empty.
  GREFAR_DETERMINISTIC
  Job pop_front();

  /// Applies up to `work` units of fluid FIFO service at `slot`; returns
  /// the completions and sets `consumed` to the work actually used.
  /// `per_job_cap` bounds the work any single job receives this slot (the
  /// parallelism constraint, JobType::max_rate); when the head job hits its
  /// cap, the remaining budget flows to the next job in FIFO order.
  std::vector<Completion> serve(
      double work, std::int64_t slot, double* consumed,
      double per_job_cap = std::numeric_limits<double>::infinity());

  /// Like serve(), but *appends* completions to a caller-owned buffer so the
  /// simulator can reuse one vector across queues and slots.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void serve_into(double work, std::int64_t slot, double* consumed,
                  std::vector<Completion>& completions,
                  double per_job_cap = std::numeric_limits<double>::infinity());

  /// Removes every job whose deadline_slot is earlier than `slot` (it can no
  /// longer complete in time) and *appends* the abandoned jobs, FIFO order,
  /// to the caller-owned buffer. O(1) when no queued job can be overdue: a
  /// running min-deadline watermark skips the scan entirely — queues of
  /// deadline-free jobs pay one compare per slot.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void expire_before(std::int64_t slot, std::vector<Job>& abandoned);

  bool empty() const { return head_ == jobs_.size(); }
  std::size_t job_count() const { return jobs_.size() - head_; }

  /// Queue length in (fractional) jobs: total remaining work / d_j.
  double length_jobs() const { return remaining_work_ / job_work_; }

  /// Total remaining work units queued.
  double remaining_work() const { return remaining_work_; }

  /// Sum of the base values of all queued jobs (value-conservation ledger).
  double total_value() const { return total_value_; }

  double job_work() const { return job_work_; }

 private:
  /// Reclaims the popped prefix [0, head_) when it dominates the storage.
  void compact_if_stale();

  double job_work_;
  double remaining_work_ = 0.0;
  double total_value_ = 0.0;
  /// Lower bound on the earliest deadline_slot among queued jobs; may go
  /// stale (too small) after pops/completions — that only costs an extra
  /// scan in expire_before, which then re-tightens it.
  std::int64_t min_deadline_slot_ = kNoDeadlineSlot;
  // Live jobs are jobs_[head_ .. end), FIFO order. A vector with a popped-
  // prefix index replaces std::deque: libstdc++'s deque allocates a ~512 B
  // block map even while empty, which is fatal at millions of per-(i,j)
  // queues (DESIGN.md §12); an empty vector holds no heap storage at all.
  std::vector<Job> jobs_;
  std::size_t head_ = 0;
};

}  // namespace grefar
