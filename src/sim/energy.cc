#include "sim/energy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace grefar {

EnergyCostCurve::EnergyCostCurve(const std::vector<ServerType>& server_types,
                                 const std::vector<std::int64_t>& available) {
  rebuild(server_types, available);
}

void EnergyCostCurve::rebuild(const std::vector<ServerType>& server_types,
                              const std::vector<std::int64_t>& available) {
  rebuild(server_types, available.data(), available.size());
}

void EnergyCostCurve::rebuild(const std::vector<ServerType>& server_types,
                              const std::int64_t* available, std::size_t count) {
  GREFAR_CHECK(!server_types.empty());
  GREFAR_CHECK(count == server_types.size());
  num_types_ = server_types.size();
  segments_.clear();
  capacity_ = 0.0;
  for (std::size_t k = 0; k < server_types.size(); ++k) {
    GREFAR_CHECK(available[k] >= 0);
    if (available[k] == 0) continue;
    const auto& st = server_types[k];
    GREFAR_CHECK(st.speed > 0.0);
    double cap = static_cast<double>(available[k]) * st.speed;
    segments_.push_back({k, st.speed, cap, st.busy_power / st.speed});
    capacity_ += cap;
  }
  std::sort(segments_.begin(), segments_.end(), [](const Segment& a, const Segment& b) {
    return a.energy_per_work < b.energy_per_work;
  });
}

double EnergyCostCurve::energy_for_work(double work) const {
  GREFAR_CHECK_MSG(work >= -1e-9, "negative work " << work);
  double remaining = std::min(std::max(work, 0.0), capacity_);
  double energy = 0.0;
  for (const auto& seg : segments_) {
    if (remaining <= 0.0) break;
    double served = std::min(remaining, seg.capacity);
    energy += served * seg.energy_per_work;
    remaining -= served;
  }
  return energy;
}

double EnergyCostCurve::marginal_energy(double work) const {
  GREFAR_CHECK_MSG(work >= -1e-9, "negative work " << work);
  if (segments_.empty()) return 0.0;
  double level = std::max(work, 0.0);
  double cum = 0.0;
  for (const auto& seg : segments_) {
    cum += seg.capacity;
    if (level < cum) return seg.energy_per_work;
  }
  return segments_.back().energy_per_work;
}


double EnergyCostCurve::smoothed_marginal(double work, double band) const {
  GREFAR_CHECK(work >= -1e-9);
  GREFAR_CHECK(band >= 0.0);
  if (segments_.empty()) return 0.0;
  double w = std::max(work, 0.0);
  double boundary = 0.0;
  for (std::size_t m = 0; m + 1 < segments_.size(); ++m) {
    boundary += segments_[m].capacity;
    double delta = std::min({band, 0.5 * segments_[m].capacity,
                             0.5 * segments_[m + 1].capacity});
    if (w < boundary - delta) return segments_[m].energy_per_work;
    if (w <= boundary + delta) {
      if (delta <= 0.0) return segments_[m + 1].energy_per_work;
      double frac = (w - (boundary - delta)) / (2.0 * delta);
      return segments_[m].energy_per_work +
             frac * (segments_[m + 1].energy_per_work - segments_[m].energy_per_work);
    }
  }
  return segments_.back().energy_per_work;
}

double EnergyCostCurve::smoothed_energy(double work, double band) const {
  GREFAR_CHECK(work >= -1e-9);
  GREFAR_CHECK(band >= 0.0);
  if (segments_.empty()) return 0.0;
  const double w = std::max(work, 0.0);

  // Integrate the smoothed slope piece by piece (segment interiors and
  // blend zones), generating pieces on the fly: this runs inside every
  // solver value/gradient evaluation, so it must not touch the heap.
  double energy = 0.0;
  bool past_w = false;
  auto accumulate = [&](double w0, double w1, double s0, double s1) {
    if (w <= w0) {
      past_w = true;
      return;
    }
    double hi = std::min(w, w1);
    double len = hi - w0;
    if (len <= 0.0) return;
    double full = w1 - w0;
    double s_hi = full > 0.0 && std::isfinite(full)
                      ? s0 + (s1 - s0) * (len / full)
                      : s0;
    energy += 0.5 * (s0 + s_hi) * len;  // trapezoid
  };
  double boundary = 0.0;
  double piece_start = 0.0;
  for (std::size_t m = 0; m < segments_.size() && !past_w; ++m) {
    boundary += segments_[m].capacity;
    double slope = segments_[m].energy_per_work;
    if (m + 1 < segments_.size()) {
      double next = segments_[m + 1].energy_per_work;
      double delta = std::min({band, 0.5 * segments_[m].capacity,
                               0.5 * segments_[m + 1].capacity});
      accumulate(piece_start, boundary - delta, slope, slope);
      if (!past_w) accumulate(boundary - delta, boundary + delta, slope, next);
      piece_start = boundary + delta;
    } else {
      accumulate(piece_start, boundary, slope, slope);
      // Linear extension beyond capacity (the feasible set caps W anyway).
      if (!past_w) {
        accumulate(boundary, std::numeric_limits<double>::infinity(), slope, slope);
      }
    }
  }
  return energy;
}

std::vector<double> EnergyCostCurve::busy_servers(double work) const {
  std::vector<double> b(num_types_, 0.0);
  double remaining = std::min(std::max(work, 0.0), capacity_);
  for (const auto& seg : segments_) {
    if (remaining <= 0.0) break;
    double served = std::min(remaining, seg.capacity);
    b[seg.type] = served / seg.speed;  // server-slots occupied on type k
    remaining -= served;
  }
  return b;
}

}  // namespace grefar
