#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/counters.h"
#include "obs/profile.h"
#include "util/check.h"

namespace grefar {

namespace {
/// Null-checks the shared config before the member-init list dereferences it.
std::shared_ptr<const ClusterConfig> require_config(
    std::shared_ptr<const ClusterConfig> config) {
  GREFAR_CHECK_MSG(config != nullptr, "SimulationEngine needs a cluster config");
  return config;
}
}  // namespace

SimulationEngine::SimulationEngine(ClusterConfig config,
                                   std::shared_ptr<const PriceModel> prices,
                                   std::shared_ptr<const AvailabilityModel> availability,
                                   std::shared_ptr<const ArrivalProcess> arrivals,
                                   std::shared_ptr<Scheduler> scheduler,
                                   EngineOptions options)
    : SimulationEngine(std::make_shared<const ClusterConfig>(std::move(config)),
                       std::move(prices), std::move(availability),
                       std::move(arrivals), std::move(scheduler), options) {}

SimulationEngine::SimulationEngine(std::shared_ptr<const ClusterConfig> config,
                                   std::shared_ptr<const PriceModel> prices,
                                   std::shared_ptr<const AvailabilityModel> availability,
                                   std::shared_ptr<const ArrivalProcess> arrivals,
                                   std::shared_ptr<Scheduler> scheduler,
                                   EngineOptions options)
    : config_(require_config(std::move(config))),
      prices_(std::move(prices)),
      availability_(std::move(availability)),
      arrivals_(std::move(arrivals)),
      scheduler_(std::move(scheduler)),
      options_(options),
      fairness_fn_(config_->gammas()),
      metrics_(config_->num_data_centers(), config_->num_accounts()) {
  config_->validate();
  GREFAR_CHECK(prices_ != nullptr && availability_ != nullptr &&
               arrivals_ != nullptr && scheduler_ != nullptr);
  GREFAR_CHECK_MSG(prices_->num_data_centers() == config_->num_data_centers(),
                   "price model covers " << prices_->num_data_centers()
                                         << " DCs, cluster has "
                                         << config_->num_data_centers());
  GREFAR_CHECK_MSG(availability_->num_data_centers() == config_->num_data_centers(),
                   "availability model DC count mismatch");
  GREFAR_CHECK_MSG(availability_->num_server_types() == config_->num_server_types(),
                   "availability model server-type count mismatch");
  GREFAR_CHECK_MSG(arrivals_->num_job_types() == config_->num_job_types(),
                   "arrival process job-type count mismatch");

  central_.reserve(config_->num_job_types());
  for (const auto& jt : config_->job_types) central_.emplace_back(jt.work);
  dc_.resize(config_->num_data_centers());
  for (auto& row : dc_) {
    row.reserve(config_->num_job_types());
    for (const auto& jt : config_->job_types) row.emplace_back(jt.work);
  }
  valued_arrivals_ = arrivals_->has_valued_arrivals();
  deadlines_possible_ = valued_arrivals_;
  for (const auto& jt : config_->job_types) {
    if (jt.deadline != kNoDeadline) deadlines_possible_ = true;
  }
}

void SimulationEngine::set_admission_policy(std::shared_ptr<AdmissionPolicy> policy) {
  admission_ = std::move(policy);
}

void SimulationEngine::reset(std::shared_ptr<const ClusterConfig> config,
                             std::shared_ptr<const PriceModel> prices,
                             std::shared_ptr<const AvailabilityModel> availability,
                             std::shared_ptr<const ArrivalProcess> arrivals,
                             std::shared_ptr<Scheduler> scheduler,
                             EngineOptions options) {
  GREFAR_CHECK_MSG(config != nullptr, "SimulationEngine needs a cluster config");
  GREFAR_CHECK(prices != nullptr && availability != nullptr &&
               arrivals != nullptr && scheduler != nullptr);
  const bool same_config = config.get() == config_.get();
  if (!same_config) config->validate();
  GREFAR_CHECK_MSG(prices->num_data_centers() == config->num_data_centers(),
                   "price model covers " << prices->num_data_centers()
                                         << " DCs, cluster has "
                                         << config->num_data_centers());
  GREFAR_CHECK_MSG(availability->num_data_centers() == config->num_data_centers(),
                   "availability model DC count mismatch");
  GREFAR_CHECK_MSG(availability->num_server_types() == config->num_server_types(),
                   "availability model server-type count mismatch");
  GREFAR_CHECK_MSG(arrivals->num_job_types() == config->num_job_types(),
                   "arrival process job-type count mismatch");

  config_ = std::move(config);
  prices_ = std::move(prices);
  availability_ = std::move(availability);
  arrivals_ = std::move(arrivals);
  scheduler_ = std::move(scheduler);
  options_ = options;
  admission_.reset();
  inspector_.reset();

  if (!same_config) fairness_fn_ = FairnessFunction(config_->gammas());

  // Queues: same cluster shape ⇒ clear in place keeping capacity; otherwise
  // rebuild per the constructor.
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  bool queues_match = central_.size() == J && dc_.size() == N;
  for (std::size_t j = 0; queues_match && j < J; ++j) {
    queues_match = central_[j].job_work() == config_->job_types[j].work;
  }
  for (std::size_t i = 0; queues_match && i < N; ++i) {
    queues_match = dc_[i].size() == J;
  }
  if (queues_match) {
    for (auto& q : central_) q.clear();
    for (auto& row : dc_) {
      for (auto& q : row) q.clear();
    }
  } else {
    central_.clear();
    central_.reserve(J);
    for (const auto& jt : config_->job_types) central_.emplace_back(jt.work);
    dc_.assign(N, {});
    for (auto& row : dc_) {
      row.reserve(J);
      for (const auto& jt : config_->job_types) row.emplace_back(jt.work);
    }
  }

  metrics_.reset(N, config_->num_accounts());
  slot_ = 0;
  next_job_id_ = 1;
  fairness_record_ = 0.0;
  // account_work_'s all-zero invariant: zero exactly the touched entries
  // (serve() relies on it) unless the account count changed.
  if (account_work_.size() != config_->num_accounts()) {
    account_work_.assign(config_->num_accounts(), 0.0);
  } else {
    for (std::uint32_t m : touched_accounts_) account_work_[m] = 0.0;
  }
  touched_accounts_.clear();

  valued_arrivals_ = arrivals_->has_valued_arrivals();
  deadlines_possible_ = valued_arrivals_;
  for (const auto& jt : config_->job_types) {
    if (jt.deadline != kNoDeadline) deadlines_possible_ = true;
  }
}

double SimulationEngine::central_queue_length(JobTypeId j) const {
  GREFAR_CHECK(j < central_.size());
  return central_[j].length_jobs();
}

double SimulationEngine::dc_queue_length(DataCenterId i, JobTypeId j) const {
  GREFAR_CHECK(i < dc_.size());
  GREFAR_CHECK(j < dc_[i].size());
  return dc_[i][j].length_jobs();
}

SlotObservation SimulationEngine::observe() const {
  SlotObservation obs;
  observe_into(obs);
  return obs;
}

void SimulationEngine::observe_into(SlotObservation& out) const {
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  out.slot = slot_;
  // NOLINTBEGIN(grefar-hot-path-alloc): the observation buffers are sized on
  // the first slot (N, J fixed per cluster) and reused in place afterwards;
  // active_types is clear()+refilled within its high-water capacity.
  out.prices.resize(N);
  for (std::size_t i = 0; i < N; ++i) out.prices[i] = prices_->price(i, slot_);
  availability_->availability_into(slot_, out.availability);
  out.central_queue.resize(J);
  active_flag_.assign(J, 0);
  for (std::size_t j = 0; j < J; ++j) {
    const double q = central_[j].length_jobs();
    out.central_queue[j] = q;
    if (q > 0.0) active_flag_[j] = 1;
  }
  if (out.dc_queue.rows() != N || out.dc_queue.cols() != J) {
    out.dc_queue = MatrixD(N, J);
  }
  for (std::size_t i = 0; i < dc_.size(); ++i) {
    for (std::size_t j = 0; j < dc_[i].size(); ++j) {
      const double q = dc_[i][j].length_jobs();
      out.dc_queue(i, j) = q;
      if (q > 0.0) active_flag_[j] = 1;
    }
  }
  // Active-type hint (sim/scheduler.h): every type with any queued jobs,
  // ascending. Types not listed are guaranteed empty everywhere, which lets
  // a sparse-aware scheduler work in O(active) instead of O(J).
  out.active_types.clear();
  for (std::size_t j = 0; j < J; ++j) {
    if (active_flag_[j] != 0) out.active_types.push_back(static_cast<std::uint32_t>(j));
  }
  out.active_types_valid = true;
  // NOLINTEND(grefar-hot-path-alloc)
}

void SimulationEngine::run(std::int64_t slots) {
  GREFAR_CHECK(slots >= 0);
  for (std::int64_t s = 0; s < slots; ++s) step();
}

void SimulationEngine::set_inspector(std::shared_ptr<SlotInspector> inspector) {
  inspector_ = std::move(inspector);
}

void SimulationEngine::step() {
  slot_offered_jobs_ = 0;
  slot_admitted_jobs_ = 0;
  slot_rejected_jobs_ = 0;
  slot_deadline_violations_ = 0;
  slot_admitted_value_ = 0.0;
  slot_rejected_value_ = 0.0;
  slot_realized_value_ = 0.0;
  slot_decay_loss_ = 0.0;
  slot_abandoned_jobs_ = 0.0;
  slot_abandoned_work_ = 0.0;
  slot_abandoned_value_ = 0.0;
  if (deadlines_possible_) {
    obs::ScopedTimer timer("engine.expire");
    expire_deadlines();
  }
  {
    obs::ScopedTimer timer("engine.observe");
    observe_into(obs_scratch_);
  }
  const SlotObservation& obs = obs_scratch_;
  {
    obs::ScopedTimer timer("engine.decide");
    if (inspector_ != nullptr) {
      trace_scope_.clear();
      scheduler_->decide_into(obs, action_scratch_, &trace_scope_);
    } else {
      scheduler_->decide_into(obs, action_scratch_, nullptr);
    }
  }
  const SlotAction& action = action_scratch_;

  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  if (inspector_ != nullptr) {
    if (routed_mat_.rows() != N || routed_mat_.cols() != J) {
      routed_mat_ = MatrixD(N, J);
      served_mat_ = MatrixD(N, J);
    }
    routed_mat_.fill(0.0);
    served_mat_.fill(0.0);
  }
  GREFAR_CHECK_MSG(action.route.rows() == N && action.route.cols() == J,
                   "action.route has wrong shape");
  GREFAR_CHECK_MSG(action.process.rows() == N && action.process.cols() == J,
                   "action.process has wrong shape");

  // Ineligible pairs must stay zero: this is a scheduler contract.
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      if (!config_->job_types[j].eligible(i)) {
        GREFAR_CHECK_MSG(action.route(i, j) <= 1e-9 && action.process(i, j) <= 1e-9,
                         "scheduler assigned work to ineligible DC " << i
                                                                     << " job type " << j);
      }
    }
  }

  {
    obs::ScopedTimer timer("engine.route");
    route(obs, action);
  }
  {
    obs::ScopedTimer timer("engine.serve");
    serve(obs, action);
  }
  {
    obs::ScopedTimer timer("engine.admit");
    admit_arrivals();
  }
  obs::count("engine.slots");

  if (inspector_ != nullptr) {
    obs::ScopedTimer timer("engine.inspect");
    // Inspector bookkeeping allocates on the first inspected slot only.
    central_after_.resize(J);  // NOLINT(grefar-hot-path-alloc)
    for (std::size_t j = 0; j < J; ++j) central_after_[j] = central_[j].length_jobs();
    if (dc_after_.rows() != N || dc_after_.cols() != J) dc_after_ = MatrixD(N, J);
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < J; ++j) dc_after_(i, j) = dc_[i][j].length_jobs();
    }
    SlotRecord record;
    record.slot = slot_;
    record.obs = &obs;
    record.action = &action;
    record.routed = &routed_mat_;
    record.served_work = &served_mat_;
    record.dc_capacity = &dc_capacity_record_;
    record.dc_energy_cost = &dc_energy_record_;
    record.dc_completions = &dc_completions_record_;
    record.dc_delay_sum = &dc_delay_record_;
    record.account_work = &account_work_;
    record.scope = &trace_scope_;
    record.fairness = fairness_record_;
    record.arrivals = &arrival_counts_;
    record.central_after = &central_after_;
    record.dc_after = &dc_after_;
    record.offered = &offered_counts_;
    record.admission_active = admission_ != nullptr || valued_arrivals_;
    record.admitted_value = slot_admitted_value_;
    record.rejected_value = slot_rejected_value_;
    record.realized_value = slot_realized_value_;
    record.decay_loss = slot_decay_loss_;
    record.abandoned_jobs = slot_abandoned_jobs_;
    record.abandoned_work = slot_abandoned_work_;
    record.abandoned_value = slot_abandoned_value_;
    record.deadline_violations = slot_deadline_violations_;
    double queued_value = 0.0;
    for (const auto& q : central_) queued_value += q.total_value();
    for (const auto& row : dc_) {
      for (const auto& q : row) queued_value += q.total_value();
    }
    record.queued_value_after = queued_value;
    trace_scope_.admission.active = admission_ != nullptr;
    trace_scope_.admission.offered_jobs = slot_offered_jobs_;
    trace_scope_.admission.admitted_jobs = slot_admitted_jobs_;
    trace_scope_.admission.rejected_jobs = slot_rejected_jobs_;
    trace_scope_.admission.admitted_value = slot_admitted_value_;
    trace_scope_.admission.rejected_value = slot_rejected_value_;
    trace_scope_.admission.threshold =
        admission_ != nullptr ? admission_->threshold(slot_)
                              : std::numeric_limits<double>::quiet_NaN();
    inspector_->inspect(record);
  }
  ++slot_;
}

void SimulationEngine::route(const SlotObservation& obs, const SlotAction& action) {
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  routed_per_dc_.assign(N, 0.0);

  for (std::size_t j = 0; j < J; ++j) {
    // Serve the most beneficial destinations first: ascending DC queue
    // length, which is the order the drift term q_{i,j} - Q_j rewards.
    std::vector<std::size_t>& order = route_order_;
    order.clear();
    for (std::size_t i = 0; i < N; ++i) {
      // Amortized: route_order_ is clear()+refilled within high-water capacity.
      if (action.route(i, j) > 1e-9) order.push_back(i);  // NOLINT(grefar-hot-path-alloc)
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return obs.dc_queue(a, j) < obs.dc_queue(b, j);
    });
    for (std::size_t i : order) {
      // Integer-routing contract (sim/scheduler.h): a fractional ask is a
      // scheduler bug (unrounded relaxation), never something to floor away.
      const double ask = action.route(i, j);
      GREFAR_CHECK_MSG(std::abs(ask - std::round(ask)) <= 1e-6,
                       "fractional routing decision r(" << i << ", " << j << ") = "
                                                        << ask);
      auto want = static_cast<std::int64_t>(std::llround(ask));
      GREFAR_CHECK_MSG(want >= 0, "negative routing decision");
      for (std::int64_t n = 0; n < want && !central_[j].empty(); ++n) {
        Job job = central_[j].pop_front();
        job.dc_entry_slot = slot_;
        dc_[i][j].push(std::move(job));
        routed_per_dc_[i] += 1.0;
        if (inspector_ != nullptr) routed_mat_(i, j) += 1.0;
      }
    }
  }
  for (std::size_t i = 0; i < N; ++i) metrics_.dc_routed_jobs[i].add(routed_per_dc_[i]);
}

void SimulationEngine::serve(const SlotObservation& obs, const SlotAction& action) {
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();

  double total_energy = 0.0;
  double total_resource = 0.0;
  // account_work_ keeps its all-zero invariant across slots: clear exactly
  // the entries the previous slot touched instead of an O(M) refill.
  if (account_work_.size() != config_->num_accounts()) {
    account_work_.assign(config_->num_accounts(), 0.0);
  } else {
    for (std::uint32_t m : touched_accounts_) account_work_[m] = 0.0;
  }
  touched_accounts_.clear();
  std::vector<double>& account_work = account_work_;
  // Amortized: per-DC scratch sized on the first slot, reused afterwards.
  curves_.resize(N);                               // NOLINT(grefar-hot-path-alloc)
  avail_row_.resize(config_->num_server_types());  // NOLINT(grefar-hot-path-alloc)
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t k = 0; k < avail_row_.size(); ++k) {
      avail_row_[k] = obs.availability(i, k);
    }
    curves_[i].rebuild(config_->server_types, avail_row_);
    total_resource += curves_[i].capacity();
  }

  for (std::size_t i = 0; i < N; ++i) {
    // Desired work per type; clamp the total to capacity proportionally.
    want_.assign(J, 0.0);
    std::vector<double>& want = want_;
    double total_want = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      double h = action.process(i, j);
      GREFAR_CHECK_MSG(h >= -1e-9, "negative processing decision");
      want[j] = std::max(h, 0.0) * config_->job_types[j].work;
      total_want += want[j];
    }
    double capacity = curves_[i].capacity();
    if (total_want > capacity && total_want > 0.0) {
      double scale = capacity / total_want;
      for (auto& w : want) w *= scale;
    }

    double dc_work = 0.0;
    double dc_delay_sum = 0.0;
    double dc_completions = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      if (want[j] <= 0.0) continue;
      // In literal-(13) mode, only work queued at the start of the slot is
      // servable this slot.
      double servable = want[j];
      if (!options_.serve_routed_same_slot) {
        servable = std::min(servable, obs.dc_queue(i, j) * config_->job_types[j].work);
      }
      double consumed = 0.0;
      completions_.clear();
      dc_[i][j].serve_into(servable, slot_, &consumed, completions_,
                           config_->job_types[j].max_rate);
      if (inspector_ != nullptr) served_mat_(i, j) = consumed;
      dc_work += consumed;
      if (consumed > 0.0) {
        const auto m = static_cast<std::uint32_t>(config_->job_types[j].account);
        if (account_work[m] == 0.0)
          touched_accounts_.push_back(m);  // NOLINT(grefar-hot-path-alloc)
        account_work[m] += consumed;
      }
      const JobType& jt = config_->job_types[j];
      for (const auto& c : completions_) {
        const auto delay = c.total_delay();
        dc_delay_sum += static_cast<double>(delay);
        dc_completions += 1.0;
        metrics_.record_completion_delay(static_cast<double>(delay));
        // Value realization: the job's base value decayed by its total delay
        // (workload/job.h). For the default annotation-free workload this is
        // value 1.0 x factor 1.0 — two adds per completion.
        const double realized =
            c.job.value * decay_factor(jt.decay, c.job.decay_rate, delay);
        slot_realized_value_ += realized;
        slot_decay_loss_ += c.job.value - realized;
        // Must stay zero: expire_deadlines removes overdue jobs before any
        // service (auditor invariant G); counted defensively, never silently.
        if (c.completion_slot > c.job.deadline_slot) ++slot_deadline_violations_;
      }
    }
    double energy = obs.prices[i] *
                    config_->tariff(i).cost(curves_[i].energy_for_work(dc_work));
    total_energy += energy;
    if (inspector_ != nullptr) {
      // NOLINTBEGIN(grefar-hot-path-alloc): first inspected slot only.
      dc_capacity_record_.resize(N);
      dc_energy_record_.resize(N);
      dc_completions_record_.resize(N);
      dc_delay_record_.resize(N);
      // NOLINTEND(grefar-hot-path-alloc)
      dc_capacity_record_[i] = curves_[i].capacity();
      dc_energy_record_[i] = energy;
      dc_completions_record_[i] = dc_completions;
      dc_delay_record_[i] = dc_delay_sum;
    }

    metrics_.dc_energy_cost[i].add(energy);
    metrics_.dc_work[i].add(dc_work);
    metrics_.dc_delay_sum[i].add(dc_delay_sum);
    metrics_.dc_completions[i].add(dc_completions);
    metrics_.dc_price[i].add(obs.prices[i]);
  }

  metrics_.energy_cost.add(total_energy);
  // Ascending ids give the sparse sum the same accumulation order as the
  // dense one, so score_active is bitwise identical to score() here
  // (sim/fairness.h) — including what the invariant auditor recomputes.
  std::sort(touched_accounts_.begin(), touched_accounts_.end());
  active_work_.clear();
  for (std::uint32_t m : touched_accounts_)
    active_work_.push_back(account_work[m]);  // NOLINT(grefar-hot-path-alloc)
  double f = total_resource > 0.0
                 ? fairness_fn_.score_active(touched_accounts_.data(),
                                             active_work_.data(),
                                             touched_accounts_.size(), total_resource)
                 : 0.0;
  fairness_record_ = f;
  metrics_.fairness.add(f);
  if (metrics_.has_per_account_series()) {
    for (std::size_t m = 0; m < account_work.size(); ++m) {
      metrics_.account_work[m].add(account_work[m]);
    }
  }
  for (std::uint32_t m : touched_accounts_) {
    metrics_.account_work_total[m] += account_work[m];
  }

  // Queue-size telemetry (after routing and service, before new arrivals).
  double total_q = 0.0, max_q = 0.0;
  for (const auto& q : central_) {
    total_q += q.length_jobs();
    max_q = std::max(max_q, q.length_jobs());
  }
  for (const auto& row : dc_) {
    for (const auto& q : row) {
      total_q += q.length_jobs();
      max_q = std::max(max_q, q.length_jobs());
    }
  }
  metrics_.total_queue_jobs.add(total_q);
  metrics_.max_queue_jobs.add(max_q);
  obs::gauge_max("engine.queue_high_water_jobs", max_q);
  obs::gauge_max("engine.total_queue_high_water_jobs", total_q);
}

void SimulationEngine::admit_arrivals() {
  const std::size_t J = config_->num_job_types();
  // Fetch this slot's offered arrivals as batches. Valued processes hand
  // over annotated batches directly; plain processes hand over counts,
  // expanded here into one defaulted batch per non-empty type (identical
  // job construction order either way — DESIGN.md §11).
  if (valued_arrivals_) {
    arrivals_->valued_arrivals_into(slot_, batch_scratch_);
  } else {
    arrivals_->arrivals_into(slot_, arrival_counts_);
    GREFAR_CHECK(arrival_counts_.size() == J);
    batch_scratch_.clear();
    for (std::size_t j = 0; j < J; ++j) {
      if (arrival_counts_[j] <= 0) continue;
      ArrivalBatch b;
      b.type = j;
      b.count = arrival_counts_[j];
      // Amortized: clear()+refill within high-water capacity.
      batch_scratch_.push_back(b);  // NOLINT(grefar-hot-path-alloc)
    }
  }

  // NOLINTBEGIN(grefar-hot-path-alloc): sized J on the first slot, reused.
  offered_counts_.assign(J, 0);
  arrival_counts_.assign(J, 0);
  // NOLINTEND(grefar-hot-path-alloc)
  double admitted_work = 0.0;
  for (const ArrivalBatch& b : batch_scratch_) {
    GREFAR_CHECK_MSG(b.type < J, "arrival batch for unknown job type " << b.type);
    GREFAR_CHECK_MSG(b.count >= 0, "negative arrival count " << b.count);
    if (b.count == 0) continue;
    const JobType& jt = config_->job_types[b.type];
    // Batch annotations default to the job type's (NaN / sentinel = unset).
    const double value = std::isnan(b.value) ? jt.value : b.value;
    const double decay_rate = std::isnan(b.decay_rate) ? jt.decay_rate : b.decay_rate;
    const std::int64_t deadline =
        b.deadline == kTypeDefaultDeadline ? jt.deadline : b.deadline;
    GREFAR_CHECK_MSG(std::isfinite(value) && value >= 0.0,
                     "arrival batch value must be finite and >= 0, got " << value);
    GREFAR_CHECK_MSG(std::isfinite(decay_rate) && decay_rate >= 0.0,
                     "arrival batch decay rate must be finite and >= 0");
    GREFAR_CHECK_MSG(deadline == kNoDeadline || deadline >= 0,
                     "arrival batch deadline must be >= 0 or kNoDeadline");

    offered_counts_[b.type] += b.count;
    slot_offered_jobs_ += b.count;
    std::int64_t take = b.count;
    if (admission_ != nullptr) {
      take = admission_->admit(slot_, jt, b.count, value, deadline);
      GREFAR_CHECK_MSG(take >= 0 && take <= b.count,
                       "admission policy admitted " << take << " of a batch of "
                                                    << b.count);
    }
    const std::int64_t deadline_slot =
        deadline == kNoDeadline ? kNoDeadlineSlot : slot_ + deadline;
    for (std::int64_t n = 0; n < take; ++n) {
      Job job;
      job.id = next_job_id_++;
      job.type = b.type;
      job.arrival_slot = slot_;
      job.dc_entry_slot = slot_;  // updated when routed
      job.remaining = jt.work;
      job.value = value;
      job.decay_rate = decay_rate;
      job.deadline_slot = deadline_slot;
      central_[b.type].push(std::move(job));
    }
    arrival_counts_[b.type] += take;
    slot_admitted_jobs_ += take;
    slot_rejected_jobs_ += b.count - take;
    admitted_work += static_cast<double>(take) * jt.work;
    slot_admitted_value_ += static_cast<double>(take) * value;
    slot_rejected_value_ += static_cast<double>(b.count - take) * value;
  }
  metrics_.arrived_jobs.add(static_cast<double>(slot_admitted_jobs_));
  metrics_.arrived_work.add(admitted_work);
  metrics_.offered_jobs.add(static_cast<double>(slot_offered_jobs_));
  metrics_.rejected_jobs.add(static_cast<double>(slot_rejected_jobs_));
  metrics_.abandoned_jobs.add(slot_abandoned_jobs_);
  metrics_.abandoned_work.add(slot_abandoned_work_);
  metrics_.abandoned_value.add(slot_abandoned_value_);
  metrics_.admitted_value.add(slot_admitted_value_);
  metrics_.rejected_value.add(slot_rejected_value_);
  metrics_.realized_value.add(slot_realized_value_);
  metrics_.decay_loss.add(slot_decay_loss_);
}

void SimulationEngine::expire_deadlines() {
  expired_scratch_.clear();
  for (auto& q : central_) q.expire_before(slot_, expired_scratch_);
  for (auto& row : dc_) {
    for (auto& q : row) q.expire_before(slot_, expired_scratch_);
  }
  for (const Job& job : expired_scratch_) {
    slot_abandoned_jobs_ += 1.0;
    slot_abandoned_work_ += job.remaining;
    slot_abandoned_value_ += job.value;
  }
  if (!expired_scratch_.empty()) {
    obs::count("engine.jobs_abandoned",
               static_cast<std::uint64_t>(expired_scratch_.size()));
  }
}

}  // namespace grefar
