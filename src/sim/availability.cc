#include "sim/availability.h"

#include <cmath>

#include "util/check.h"

namespace grefar {

namespace {

Matrix<std::int64_t> to_matrix(const std::vector<DataCenterConfig>& dcs) {
  GREFAR_CHECK(!dcs.empty());
  Matrix<std::int64_t> m(dcs.size(), dcs.front().installed.size());
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    GREFAR_CHECK_MSG(dcs[i].installed.size() == m.cols(), "ragged fleet table");
    for (std::size_t k = 0; k < m.cols(); ++k) {
      GREFAR_CHECK(dcs[i].installed[k] >= 0);
      m(i, k) = dcs[i].installed[k];
    }
  }
  return m;
}

}  // namespace

FullAvailability::FullAvailability(std::vector<DataCenterConfig> dcs)
    : full_(to_matrix(dcs)) {}

Matrix<std::int64_t> FullAvailability::availability(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  return full_;
}

void FullAvailability::availability_into(std::int64_t t,
                                         Matrix<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  out = full_;  // copy-assign reuses out's storage when shapes match
}

TableAvailability::TableAvailability(std::vector<Matrix<std::int64_t>> snapshots)
    : snapshots_(std::move(snapshots)) {
  GREFAR_CHECK_MSG(!snapshots_.empty(), "availability table needs >= 1 snapshot");
  const std::size_t rows = snapshots_.front().rows();
  const std::size_t cols = snapshots_.front().cols();
  GREFAR_CHECK(rows > 0 && cols > 0);
  for (const auto& snap : snapshots_) {
    GREFAR_CHECK_MSG(snap.rows() == rows && snap.cols() == cols,
                     "ragged availability table");
    for (const auto& v : snap.data()) GREFAR_CHECK_MSG(v >= 0, "negative availability");
  }
}

Matrix<std::int64_t> TableAvailability::availability(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  return snapshots_[static_cast<std::size_t>(t) % snapshots_.size()];
}

void TableAvailability::availability_into(std::int64_t t,
                                          Matrix<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  out = snapshots_[static_cast<std::size_t>(t) % snapshots_.size()];
}

RandomFractionAvailability::RandomFractionAvailability(
    std::vector<DataCenterConfig> dcs, double min_fraction, std::uint64_t seed)
    : full_(to_matrix(dcs)), min_fraction_(min_fraction), rng_(seed) {
  GREFAR_CHECK_MSG(min_fraction_ >= 0.0 && min_fraction_ <= 1.0,
                   "min_fraction must be in [0,1]");
}

void RandomFractionAvailability::extend(std::int64_t t) const {
  while (static_cast<std::int64_t>(cache_.size()) <= t) {
    Matrix<std::int64_t> m(full_.rows(), full_.cols());
    for (std::size_t i = 0; i < full_.rows(); ++i) {
      for (std::size_t k = 0; k < full_.cols(); ++k) {
        double fraction = rng_.uniform(min_fraction_, 1.0);
        m(i, k) = static_cast<std::int64_t>(
            std::floor(fraction * static_cast<double>(full_(i, k))));
      }
    }
    cache_.push_back(std::move(m));
  }
}

Matrix<std::int64_t> RandomFractionAvailability::availability(std::int64_t t) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  return cache_[static_cast<std::size_t>(t)];
}

void RandomFractionAvailability::availability_into(std::int64_t t,
                                                   Matrix<std::int64_t>& out) const {
  GREFAR_CHECK(t >= 0);
  extend(t);
  out = cache_[static_cast<std::size_t>(t)];
}

}  // namespace grefar
