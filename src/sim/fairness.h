// Fairness function (paper eq. (3)).
//
//   f(t) = - sum_m ( r_m(t) / R(t) - gamma_m )^2
//
// where r_m is the computing resource (work units) allocated to account m
// during the slot, R(t) the total available resource, and gamma_m the
// desired allocation share. f is maximized (= 0) when every account receives
// exactly its share. Shared by the simulator's accounting and the GreFar
// objective.
//
// Sparse evaluation (DESIGN.md §12). At million-account scale only a small
// set of accounts receives work in any slot; the rest contribute the fixed
// gamma_m^2 each. The score is therefore computed as
//
//   f = - ( sum_m gamma_m^2  +  sum_{m active} [ dev_m^2 - gamma_m^2 ] )
//
// with dev_m = r_m/R - gamma_m and the first sum cached once at
// construction (gamma_ is immutable, so the cache can never go stale). The
// per-account term is written in the factored form
// (dev - gamma) * (dev + gamma): when r_m == 0, dev is exactly -gamma_m, so
// the second factor — and hence the whole term — is an exact floating-point
// zero (even under FMA contraction, since the real product is zero too).
// Adding that zero never changes the bits of the running sum, which is what
// makes the sparse sum over active accounts *bitwise identical* to the
// dense sum over all M accounts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/annotations.h"

namespace grefar {

/// Shared inner kernels: one definition so every caller (dense score, sparse
/// score, the drift-penalty gradient) compiles the identical expression and
/// the bitwise sparse == dense contract holds across call sites.
namespace fairness_kernel {

/// dev^2 - gamma^2 in the factored form that is an exact zero when r == 0.
GREFAR_HOT_PATH GREFAR_DETERMINISTIC
inline double term(double r, double gamma, double inv_total) {
  const double dev = r * inv_total - gamma;
  return (dev - gamma) * (dev + gamma);
}

/// d f / d r_m = -2 (r/R - gamma) / R with the reciprocal hoisted.
GREFAR_HOT_PATH GREFAR_DETERMINISTIC
inline double gradient(double r, double gamma, double inv_total) {
  return -2.0 * (r * inv_total - gamma) * inv_total;
}

}  // namespace fairness_kernel

/// Per-account target shares gamma_m >= 0 (the paper uses 40/30/15/15%).
class FairnessFunction {
 public:
  explicit FairnessFunction(std::vector<double> gamma);

  std::size_t num_accounts() const { return gamma_.size(); }
  const std::vector<double>& gamma() const { return gamma_; }

  /// The cached inactive-remainder scalar: sum_m fl(gamma_m^2), accumulated
  /// ascending in m. gamma_ is immutable after construction, so the cache is
  /// always valid.
  double gamma_sq_total() const { return gamma_sq_total_; }

  /// Checked reciprocal 1/R; throws unless total_resource > 0 (a
  /// non-positive R would otherwise push inf/NaN into the solver polytope).
  double inv_total(double total_resource) const;

  /// f(t) for per-account allocated work `r` (length M) and total resource
  /// R > 0. Always <= 0; equals 0 iff r_m == gamma_m * R for all m.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double score(const std::vector<double>& r, double total_resource) const;

  /// Sparse f(t): `ids`/`r_active` list the accounts (ascending ids) that
  /// received work; every account not listed is guaranteed r_m == 0.
  /// Bitwise identical to score() on the scattered dense vector.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double score_active(const std::uint32_t* ids, const double* r_active,
                      std::size_t count, double total_resource) const;

  /// Partial derivative of the *fairness score* with respect to r_m:
  /// d f / d r_m = -2 (r_m/R - gamma_m) / R. (The GreFar objective uses
  /// -beta * f, so its gradient contribution is -beta times this.)
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  double score_gradient(double r_m, std::size_t m, double total_resource) const;

 private:
  std::vector<double> gamma_;
  double gamma_sq_total_ = 0.0;  // sum_m fl(gamma_m^2), ascending m
};

}  // namespace grefar
