// Fairness function (paper eq. (3)).
//
//   f(t) = - sum_m ( r_m(t) / R(t) - gamma_m )^2
//
// where r_m is the computing resource (work units) allocated to account m
// during the slot, R(t) the total available resource, and gamma_m the
// desired allocation share. f is maximized (= 0) when every account receives
// exactly its share. Shared by the simulator's accounting and the GreFar
// objective.
#pragma once

#include <vector>

namespace grefar {

/// Per-account target shares gamma_m >= 0 (the paper uses 40/30/15/15%).
class FairnessFunction {
 public:
  explicit FairnessFunction(std::vector<double> gamma);

  std::size_t num_accounts() const { return gamma_.size(); }
  const std::vector<double>& gamma() const { return gamma_; }

  /// f(t) for per-account allocated work `r` (length M) and total resource
  /// R > 0. Always <= 0; equals 0 iff r_m == gamma_m * R for all m.
  double score(const std::vector<double>& r, double total_resource) const;

  /// Partial derivative of the *fairness score* with respect to r_m:
  /// d f / d r_m = -2 (r_m/R - gamma_m) / R. (The GreFar objective uses
  /// -beta * f, so its gradient contribution is -beta times this.)
  double score_gradient(double r_m, std::size_t m, double total_resource) const;

 private:
  std::vector<double> gamma_;
};

}  // namespace grefar
