// SlotRecord / SlotInspector: the engine's per-slot observation hook.
//
// When an inspector is attached (SimulationEngine::set_inspector) the engine
// assembles, for every slot, a SlotRecord tying together what the scheduler
// saw (the pre-action observation), what it asked for (the action), and what
// the engine actually did (jobs moved, work served, energy billed, the
// post-slot queues). The record is handed to the inspector at the end of
// step(), after arrivals were admitted, so the post-slot queues follow the
// paper's update recurrence exactly:
//
//   Q_j(t+1)     = max[Q_j(t) - sum_i routed_{i,j}(t), 0] + a_j(t)
//   q_{i,j}(t+1) = max[q_{i,j}(t) + routed_{i,j}(t) - served_{i,j}(t)/d_j, 0]
//
// All pointers reference engine-owned scratch that is valid only for the
// duration of the inspect() call; inspectors must copy anything they keep.
// The canonical inspector is check/invariant_auditor.h, which turns these
// records into machine-checked feasibility invariants.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.h"
#include "util/matrix.h"

namespace grefar {

struct TraceScope;  // obs/trace_scope.h

/// Everything that happened during one engine slot.
struct SlotRecord {
  std::int64_t slot = 0;
  const SlotObservation* obs = nullptr;  // state the scheduler decided on
  const SlotAction* action = nullptr;    // the scheduler's (unclamped) ask
  const MatrixD* routed = nullptr;       // whole jobs moved central -> DC, N x J
  const MatrixD* served_work = nullptr;  // work units actually served, N x J
  const std::vector<double>* dc_capacity = nullptr;     // sum_k n_{i,k} s_k, per DC
  const std::vector<double>* dc_energy_cost = nullptr;  // billed cost per DC
  const std::vector<double>* dc_completions = nullptr;  // jobs finished, per DC
  const std::vector<double>* dc_delay_sum = nullptr;    // slots of delay, per DC
  const std::vector<double>* account_work = nullptr;    // served work per account
  double fairness = 0.0;                                // f(t) as recorded
  const std::vector<std::int64_t>* arrivals = nullptr;  // a_j(t) admitted, per type
  const std::vector<double>* central_after = nullptr;   // Q_j(t+1), jobs
  const MatrixD* dc_after = nullptr;                    // q_{i,j}(t+1), jobs
  /// Scheduler-internal annotations for this slot, when the scheduler filled
  /// any (nullptr for schedulers that ignore the scope).
  const TraceScope* scope = nullptr;

  // -- admission / value economics (workload/admission.h) --------------------
  // `arrivals` above is post-admission: exactly what entered the queues, so
  // the queue-recurrence invariants hold unchanged. `offered` is the raw
  // pre-admission a_j(t); with no policy attached the two are equal.
  const std::vector<std::int64_t>* offered = nullptr;  // pre-admission a_j(t)
  /// True when an admission policy or valued arrivals shape this run (the
  /// value fields below are then meaningful and traced).
  bool admission_active = false;
  double admitted_value = 0.0;   // sum of base values admitted this slot
  double rejected_value = 0.0;   // sum of base values turned away this slot
  double realized_value = 0.0;   // decayed value of this slot's completions
  double decay_loss = 0.0;       // base - realized over this slot's completions
  double abandoned_jobs = 0.0;   // deadline-expired jobs removed this slot
  double abandoned_work = 0.0;   // their remaining work units
  double abandoned_value = 0.0;  // their base values
  double queued_value_after = 0.0;  // sum of base values still queued, post-slot
  /// Jobs that completed after their deadline — must always be zero (the
  /// engine abandons overdue jobs before serving; auditor invariant G).
  std::int64_t deadline_violations = 0;
};

/// Per-slot hook. Implementations must not mutate engine state; throwing
/// aborts the simulation (the auditor's strict mode does exactly that).
class SlotInspector {
 public:
  virtual ~SlotInspector() = default;
  virtual void inspect(const SlotRecord& record) = 0;
};

}  // namespace grefar
