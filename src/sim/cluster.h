// ClusterConfig: the full static description of the system of paper §III —
// server types, data-center fleets, accounts with fairness weights, and the
// job-type table. One validated ClusterConfig is shared by the simulator,
// the schedulers and the lookahead optimizer.
#pragma once

#include <string>
#include <vector>

#include "sim/server.h"
#include "sim/tariff.h"
#include "workload/job.h"

namespace grefar {

/// An account (user / group / organization) with its fairness weight.
struct Account {
  std::string name;
  double gamma = 0.0;  // desired resource share, gamma_m >= 0
};

struct ClusterConfig {
  std::vector<ServerType> server_types;      // K types
  std::vector<DataCenterConfig> data_centers;  // N fleets
  std::vector<Account> accounts;             // M accounts
  std::vector<JobType> job_types;            // J types
  /// Per-DC usage-dependent billing (paper §III-A2 extension). Empty means
  /// flat (linear) billing everywhere; otherwise one tariff per data center.
  std::vector<TieredTariff> tariffs;

  std::size_t num_data_centers() const { return data_centers.size(); }
  std::size_t num_server_types() const { return server_types.size(); }
  std::size_t num_accounts() const { return accounts.size(); }
  std::size_t num_job_types() const { return job_types.size(); }

  /// Billing tariff of DC i (a shared flat tariff when none are configured).
  const TieredTariff& tariff(DataCenterId i) const {
    static const TieredTariff kFlat;
    if (tariffs.empty()) return kFlat;
    GREFAR_CHECK(i < tariffs.size());
    return tariffs[i];
  }

  /// True if any data center bills non-linearly.
  bool has_nonlinear_billing() const {
    for (const auto& t : tariffs) {
      if (!t.is_flat()) return true;
    }
    return false;
  }

  /// Per-account gamma vector for the fairness function.
  std::vector<double> gammas() const {
    std::vector<double> g;
    g.reserve(accounts.size());
    for (const auto& a : accounts) g.push_back(a.gamma);
    return g;
  }

  /// Checks internal consistency; throws ContractViolation on errors.
  void validate() const {
    validate_data_centers(data_centers, server_types);
    GREFAR_CHECK_MSG(!accounts.empty(), "need at least one account");
    for (const auto& a : accounts) {
      GREFAR_CHECK_MSG(a.gamma >= 0.0, "account '" << a.name << "' gamma < 0");
    }
    validate_job_types(job_types, data_centers.size(), accounts.size());
    GREFAR_CHECK_MSG(tariffs.empty() || tariffs.size() == data_centers.size(),
                     "tariffs must be empty or one per data center");
  }
};

}  // namespace grefar
