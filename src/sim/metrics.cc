#include "sim/metrics.h"

#include <cmath>

#include "util/check.h"

namespace grefar {

namespace {

// The JSON layer rejects non-finite numbers; NaN means "no samples here".
JsonValue number_or_null(double x) {
  return std::isnan(x) ? JsonValue(nullptr) : JsonValue(x);
}

}  // namespace

SimMetrics::SimMetrics(std::size_t num_dcs, std::size_t num_accounts)
    : energy_cost("energy_cost"),
      fairness("fairness"),
      arrived_jobs("arrived_jobs"),
      arrived_work("arrived_work"),
      total_queue_jobs("total_queue_jobs"),
      max_queue_jobs("max_queue_jobs"),
      offered_jobs("offered_jobs"),
      rejected_jobs("rejected_jobs"),
      abandoned_jobs("abandoned_jobs"),
      abandoned_work("abandoned_work"),
      admitted_value("admitted_value"),
      rejected_value("rejected_value"),
      abandoned_value("abandoned_value"),
      realized_value("realized_value"),
      decay_loss("decay_loss"),
      num_accounts_(num_accounts) {
  GREFAR_CHECK(num_dcs > 0);
  GREFAR_CHECK(num_accounts > 0);
  for (std::size_t i = 0; i < num_dcs; ++i) {
    auto suffix = std::to_string(i + 1);
    dc_energy_cost.emplace_back("dc" + suffix + "_energy_cost");
    dc_work.emplace_back("dc" + suffix + "_work");
    dc_routed_jobs.emplace_back("dc" + suffix + "_routed_jobs");
    dc_delay_sum.emplace_back("dc" + suffix + "_delay_sum");
    dc_completions.emplace_back("dc" + suffix + "_completions");
    dc_price.emplace_back("dc" + suffix + "_price");
  }
  if (num_accounts <= kMaxPerAccountSeries) {
    for (std::size_t m = 0; m < num_accounts; ++m) {
      account_work.emplace_back("account" + std::to_string(m + 1) + "_work");
    }
  }
  account_work_total.assign(num_accounts, 0.0);
}

void SimMetrics::reset(std::size_t num_dcs, std::size_t num_accounts) {
  if (num_dcs != num_data_centers() || num_accounts != num_accounts_ ||
      (num_accounts <= kMaxPerAccountSeries) != has_per_account_series()) {
    *this = SimMetrics(num_dcs, num_accounts);
    return;
  }
  TimeSeries* const scalars[] = {
      &energy_cost,     &fairness,       &arrived_jobs,   &arrived_work,
      &total_queue_jobs, &max_queue_jobs, &offered_jobs,   &rejected_jobs,
      &abandoned_jobs,  &abandoned_work, &admitted_value, &rejected_value,
      &abandoned_value, &realized_value, &decay_loss};
  for (TimeSeries* s : scalars) s->clear();
  for (auto* group : {&dc_energy_cost, &dc_work, &dc_routed_jobs,
                      &dc_delay_sum, &dc_completions, &dc_price, &account_work}) {
    for (TimeSeries& s : *group) s.clear();
  }
  account_work_total.assign(num_accounts, 0.0);
  delay_stats = RunningStats{};
  delay_p50_.reset();
  delay_p95_.reset();
  delay_p99_.reset();
}

void SimMetrics::record_completion_delay(double delay) {
  delay_stats.add(delay);
  delay_p50_.add(delay);
  delay_p95_.add(delay);
  delay_p99_.add(delay);
}

TimeSeries SimMetrics::average_dc_delay(std::size_t dc) const {
  GREFAR_CHECK(dc < dc_delay_sum.size());
  return TimeSeries::prefix_ratio(dc_delay_sum[dc], dc_completions[dc],
                                  dc_delay_sum[dc].name() + "_avg");
}

double SimMetrics::mean_delay() const {
  double delay = 0.0, jobs = 0.0;
  for (std::size_t i = 0; i < dc_delay_sum.size(); ++i) {
    delay += dc_delay_sum[i].sum();
    jobs += dc_completions[i].sum();
  }
  return jobs > 0.0 ? delay / jobs : 0.0;
}

double SimMetrics::mean_dc_work(std::size_t dc) const {
  GREFAR_CHECK(dc < dc_work.size());
  return dc_work[dc].mean();
}

double SimMetrics::final_average_dc_delay(std::size_t dc) const {
  GREFAR_CHECK(dc < dc_delay_sum.size());
  double jobs = dc_completions[dc].sum();
  return jobs > 0.0 ? dc_delay_sum[dc].sum() / jobs : 0.0;
}

JsonValue SimMetrics::summary_json() const {
  JsonObject o;
  o["slots"] = JsonValue(static_cast<double>(slots()));
  o["final_average_energy_cost"] = JsonValue(final_average_energy_cost());
  o["final_average_fairness"] = JsonValue(final_average_fairness());
  o["completions"] = JsonValue(static_cast<double>(delay_stats.count()));
  o["mean_delay"] = JsonValue(mean_delay());
  o["delay_p50"] = number_or_null(delay_p50());
  o["delay_p95"] = number_or_null(delay_p95());
  o["delay_p99"] = number_or_null(delay_p99());
  {
    JsonObject adm;
    adm["offered_jobs"] = JsonValue(offered_jobs.sum());
    adm["admitted_jobs"] = JsonValue(arrived_jobs.sum());
    adm["rejected_jobs"] = JsonValue(rejected_jobs.sum());
    adm["abandoned_jobs"] = JsonValue(abandoned_jobs.sum());
    adm["abandoned_work"] = JsonValue(abandoned_work.sum());
    adm["admitted_value"] = JsonValue(admitted_value.sum());
    adm["rejected_value"] = JsonValue(rejected_value.sum());
    adm["abandoned_value"] = JsonValue(abandoned_value.sum());
    adm["realized_value"] = JsonValue(realized_value.sum());
    adm["decay_loss"] = JsonValue(decay_loss.sum());
    o["admission"] = JsonValue(std::move(adm));
  }
  JsonArray per_dc;
  for (std::size_t i = 0; i < num_data_centers(); ++i) {
    JsonObject d;
    d["mean_work"] = JsonValue(mean_dc_work(i));
    d["routed_jobs"] = JsonValue(dc_routed_jobs[i].sum());
    d["completions"] = JsonValue(dc_completions[i].sum());
    d["final_average_delay"] = JsonValue(final_average_dc_delay(i));
    per_dc.emplace_back(std::move(d));
  }
  o["data_centers"] = JsonValue(std::move(per_dc));
  if (has_per_account_series()) {
    JsonArray per_account;
    for (std::size_t m = 0; m < num_accounts(); ++m) {
      per_account.emplace_back(account_work[m].sum());
    }
    o["account_work"] = JsonValue(std::move(per_account));
  } else {
    // Million-account mode: a per-account array would dominate the summary,
    // so emit aggregate shape instead.
    double total = 0.0;
    double nonzero = 0.0;
    for (double w : account_work_total) {
      total += w;
      if (w != 0.0) nonzero += 1.0;
    }
    JsonObject aw;
    aw["num_accounts"] = JsonValue(static_cast<double>(num_accounts()));
    aw["accounts_served"] = JsonValue(nonzero);
    aw["total_work"] = JsonValue(total);
    o["account_work_summary"] = JsonValue(std::move(aw));
  }
  return JsonValue(std::move(o));
}

}  // namespace grefar
