#include "sim/fairness.h"

#include "util/check.h"

namespace grefar {

FairnessFunction::FairnessFunction(std::vector<double> gamma)
    : gamma_(std::move(gamma)) {
  GREFAR_CHECK_MSG(!gamma_.empty(), "need at least one account");
  for (double g : gamma_) GREFAR_CHECK_MSG(g >= 0.0, "gamma must be >= 0");
  for (double g : gamma_) gamma_sq_total_ += g * g;
}

double FairnessFunction::inv_total(double total_resource) const {
  GREFAR_CHECK_MSG(total_resource > 0.0, "total resource must be positive");
  return 1.0 / total_resource;
}

double FairnessFunction::score(const std::vector<double>& r,
                               double total_resource) const {
  GREFAR_CHECK(r.size() == gamma_.size());
  const double inv = inv_total(total_resource);
  double penalty = gamma_sq_total_;
  for (std::size_t m = 0; m < r.size(); ++m) {
    penalty += fairness_kernel::term(r[m], gamma_[m], inv);
  }
  return -penalty;
}

double FairnessFunction::score_active(const std::uint32_t* ids,
                                      const double* r_active, std::size_t count,
                                      double total_resource) const {
  const double inv = inv_total(total_resource);
  double penalty = gamma_sq_total_;
  for (std::size_t k = 0; k < count; ++k) {
    GREFAR_CHECK(ids[k] < gamma_.size());
    penalty += fairness_kernel::term(r_active[k], gamma_[ids[k]], inv);
  }
  return -penalty;
}

double FairnessFunction::score_gradient(double r_m, std::size_t m,
                                        double total_resource) const {
  GREFAR_CHECK(m < gamma_.size());
  return fairness_kernel::gradient(r_m, gamma_[m], inv_total(total_resource));
}

}  // namespace grefar
