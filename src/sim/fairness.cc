#include "sim/fairness.h"

#include "util/check.h"

namespace grefar {

FairnessFunction::FairnessFunction(std::vector<double> gamma)
    : gamma_(std::move(gamma)) {
  GREFAR_CHECK_MSG(!gamma_.empty(), "need at least one account");
  for (double g : gamma_) GREFAR_CHECK_MSG(g >= 0.0, "gamma must be >= 0");
}

double FairnessFunction::score(const std::vector<double>& r,
                               double total_resource) const {
  GREFAR_CHECK(r.size() == gamma_.size());
  GREFAR_CHECK_MSG(total_resource > 0.0, "total resource must be positive");
  double penalty = 0.0;
  for (std::size_t m = 0; m < r.size(); ++m) {
    double deviation = r[m] / total_resource - gamma_[m];
    penalty += deviation * deviation;
  }
  return -penalty;
}

double FairnessFunction::score_gradient(double r_m, std::size_t m,
                                        double total_resource) const {
  GREFAR_CHECK(m < gamma_.size());
  GREFAR_CHECK_MSG(total_resource > 0.0, "total resource must be positive");
  return -2.0 * (r_m / total_resource - gamma_[m]) / total_resource;
}

}  // namespace grefar
