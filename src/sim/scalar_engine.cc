#include "sim/scalar_engine.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

ScalarQueueSimulator::ScalarQueueSimulator(
    ClusterConfig config, std::shared_ptr<const PriceModel> prices,
    std::shared_ptr<const AvailabilityModel> availability,
    std::shared_ptr<const ArrivalProcess> arrivals, std::shared_ptr<Scheduler> scheduler)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      availability_(std::move(availability)),
      arrivals_(std::move(arrivals)),
      scheduler_(std::move(scheduler)),
      central_(config_.num_job_types(), 0.0),
      dc_(config_.num_data_centers(), config_.num_job_types()),
      fairness_fn_(config_.gammas()),
      energy_cost_("energy_cost"),
      fairness_("fairness") {
  config_.validate();
  GREFAR_CHECK(prices_ != nullptr && availability_ != nullptr &&
               arrivals_ != nullptr && scheduler_ != nullptr);
}

double ScalarQueueSimulator::central_queue(JobTypeId j) const {
  GREFAR_CHECK(j < central_.size());
  return central_[j];
}

double ScalarQueueSimulator::dc_queue(DataCenterId i, JobTypeId j) const {
  return dc_(i, j);
}

void ScalarQueueSimulator::run(std::int64_t slots) {
  GREFAR_CHECK(slots >= 0);
  for (std::int64_t s = 0; s < slots; ++s) step();
}

void ScalarQueueSimulator::step() {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();

  SlotObservation obs;
  obs.slot = slot_;
  obs.prices.reserve(N);
  for (std::size_t i = 0; i < N; ++i) obs.prices.push_back(prices_->price(i, slot_));
  obs.availability = availability_->availability(slot_);
  obs.central_queue = central_;
  obs.dc_queue = dc_;

  SlotAction action = scheduler_->decide(obs);
  GREFAR_CHECK(action.route.rows() == N && action.route.cols() == J);
  GREFAR_CHECK(action.process.rows() == N && action.process.cols() == J);

  // Cost accounting on the *decided* action (the analysis' convention).
  double total_energy = 0.0;
  double total_resource = 0.0;
  std::vector<double> account_work(config_.num_accounts(), 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    std::vector<std::int64_t> avail(config_.num_server_types());
    for (std::size_t k = 0; k < avail.size(); ++k) avail[k] = obs.availability(i, k);
    EnergyCostCurve curve(config_.server_types, avail);
    total_resource += curve.capacity();
    double work = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      double w = std::max(action.process(i, j), 0.0) * config_.job_types[j].work;
      work += w;
      account_work[config_.job_types[j].account] += w;
    }
    GREFAR_CHECK_MSG(work <= curve.capacity() + 1e-6,
                     "scheduler violated capacity constraint (11)");
    total_energy += obs.prices[i] * config_.tariff(i).cost(curve.energy_for_work(work));
  }
  energy_cost_.add(total_energy);
  fairness_.add(total_resource > 0.0
                    ? fairness_fn_.score(account_work, total_resource)
                    : 0.0);

  // Literal queue updates (12)-(13).
  auto a = arrivals_->arrivals(slot_);
  GREFAR_CHECK(a.size() == J);
  for (std::size_t j = 0; j < J; ++j) {
    double routed = 0.0;
    for (std::size_t i = 0; i < N; ++i) routed += std::max(action.route(i, j), 0.0);
    central_[j] = std::max(central_[j] - routed, 0.0) + static_cast<double>(a[j]);
    max_queue_observed_ = std::max(max_queue_observed_, central_[j]);
    for (std::size_t i = 0; i < N; ++i) {
      double r = std::max(action.route(i, j), 0.0);
      double h = std::max(action.process(i, j), 0.0);
      dc_(i, j) = std::max(dc_(i, j) - h, 0.0) + r;
      max_queue_observed_ = std::max(max_queue_observed_, dc_(i, j));
    }
  }
  ++slot_;
}

double ScalarQueueSimulator::average_cost(double beta) const {
  GREFAR_CHECK(energy_cost_.size() == fairness_.size());
  if (energy_cost_.empty()) return 0.0;
  return energy_cost_.mean() - beta * fairness_.mean();
}

}  // namespace grefar
