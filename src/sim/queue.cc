#include "sim/queue.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

FifoJobQueue::FifoJobQueue(double job_work) : job_work_(job_work) {
  GREFAR_CHECK_MSG(job_work_ > 0.0, "job work must be positive");
}

void FifoJobQueue::push(Job job) {
  GREFAR_CHECK_MSG(job.remaining > 0.0, "cannot enqueue a finished job");
  remaining_work_ += job.remaining;
  jobs_.push_back(std::move(job));
}

Job FifoJobQueue::pop_front() {
  GREFAR_CHECK_MSG(!jobs_.empty(), "pop_front on empty queue");
  Job job = jobs_.front();
  jobs_.pop_front();
  remaining_work_ -= job.remaining;
  if (remaining_work_ < 0.0) remaining_work_ = 0.0;  // numeric dust
  return job;
}

std::vector<Completion> FifoJobQueue::serve(double work, std::int64_t slot,
                                            double* consumed, double per_job_cap) {
  std::vector<Completion> completions;
  serve_into(work, slot, consumed, completions, per_job_cap);
  return completions;
}

void FifoJobQueue::serve_into(double work, std::int64_t slot, double* consumed,
                              std::vector<Completion>& completions,
                              double per_job_cap) {
  GREFAR_CHECK_MSG(work >= -1e-12, "negative service work " << work);
  GREFAR_CHECK_MSG(per_job_cap > 0.0, "per-job cap must be positive");
  double budget = std::max(work, 0.0);
  double used = 0.0;
  for (auto it = jobs_.begin(); it != jobs_.end() && budget > 1e-12; ++it) {
    double give = std::min({budget, per_job_cap, it->remaining});
    it->remaining -= give;
    remaining_work_ -= give;
    used += give;
    budget -= give;
  }
  // Collect and remove finished jobs in FIFO order (a capped head can leave
  // later, smaller jobs finishing first).
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->remaining <= 1e-12) {
      Completion c{*it, slot};
      c.job.remaining = 0.0;
      completions.push_back(std::move(c));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (remaining_work_ < 0.0) remaining_work_ = 0.0;
  if (consumed != nullptr) *consumed = used;
}

}  // namespace grefar
