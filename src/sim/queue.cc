#include "sim/queue.h"

#include <algorithm>

#include "util/check.h"

namespace grefar {

FifoJobQueue::FifoJobQueue(double job_work) : job_work_(job_work) {
  GREFAR_CHECK_MSG(job_work_ > 0.0, "job work must be positive");
}

void FifoJobQueue::push(Job job) {
  GREFAR_CHECK_MSG(job.remaining > 0.0, "cannot enqueue a finished job");
  remaining_work_ += job.remaining;
  total_value_ += job.value;
  if (job.deadline_slot < min_deadline_slot_) min_deadline_slot_ = job.deadline_slot;
  jobs_.push_back(std::move(job));
}

Job FifoJobQueue::pop_front() {
  GREFAR_CHECK_MSG(head_ < jobs_.size(), "pop_front on empty queue");
  Job job = std::move(jobs_[head_]);
  ++head_;
  remaining_work_ -= job.remaining;
  if (remaining_work_ < 0.0) remaining_work_ = 0.0;  // numeric dust
  total_value_ -= job.value;
  if (empty() || total_value_ < 0.0) total_value_ = 0.0;
  compact_if_stale();
  return job;
}

void FifoJobQueue::compact_if_stale() {
  if (head_ == jobs_.size()) {
    jobs_.clear();
    head_ = 0;
  } else if (head_ >= 64 && head_ * 2 >= jobs_.size()) {
    // Amortized O(1): each erase moves at most as many live jobs as were
    // popped since the last compaction.
    jobs_.erase(jobs_.begin(),
                jobs_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

std::vector<Completion> FifoJobQueue::serve(double work, std::int64_t slot,
                                            double* consumed, double per_job_cap) {
  std::vector<Completion> completions;
  serve_into(work, slot, consumed, completions, per_job_cap);
  return completions;
}

void FifoJobQueue::serve_into(double work, std::int64_t slot, double* consumed,
                              std::vector<Completion>& completions,
                              double per_job_cap) {
  GREFAR_CHECK_MSG(work >= -1e-12, "negative service work " << work);
  GREFAR_CHECK_MSG(per_job_cap > 0.0, "per-job cap must be positive");
  double budget = std::max(work, 0.0);
  double used = 0.0;
  for (std::size_t r = head_; r < jobs_.size() && budget > 1e-12; ++r) {
    double give = std::min({budget, per_job_cap, jobs_[r].remaining});
    jobs_[r].remaining -= give;
    remaining_work_ -= give;
    used += give;
    budget -= give;
  }
  // Collect finished jobs in FIFO order (a capped head can leave later,
  // smaller jobs finishing first) and compact the survivors in place.
  std::size_t w = head_;
  for (std::size_t r = head_; r < jobs_.size(); ++r) {
    if (jobs_[r].remaining <= 1e-12) {
      total_value_ -= jobs_[r].value;
      Completion c{jobs_[r], slot};
      c.job.remaining = 0.0;
      // Amortized: the engine passes one high-water completions buffer
      // reused across queues and slots (see the header contract).
      completions.push_back(std::move(c));  // NOLINT(grefar-hot-path-alloc)
    } else {
      if (w != r) jobs_[w] = std::move(jobs_[r]);
      ++w;
    }
  }
  jobs_.resize(w);  // NOLINT(grefar-hot-path-alloc): shrink, never allocates
  if (head_ == jobs_.size()) {
    jobs_.clear();
    head_ = 0;
  }
  if (remaining_work_ < 0.0) remaining_work_ = 0.0;
  if (empty() || total_value_ < 0.0) total_value_ = 0.0;
  if (consumed != nullptr) *consumed = used;
}

void FifoJobQueue::expire_before(std::int64_t slot, std::vector<Job>& abandoned) {
  if (min_deadline_slot_ >= slot) return;  // nothing can be overdue
  std::int64_t min_deadline = kNoDeadlineSlot;
  std::size_t w = head_;
  for (std::size_t r = head_; r < jobs_.size(); ++r) {
    if (jobs_[r].deadline_slot < slot) {
      remaining_work_ -= jobs_[r].remaining;
      total_value_ -= jobs_[r].value;
      // Amortized: the engine passes one high-water abandoned buffer reused
      // across queues and slots (see the header contract).
      abandoned.push_back(std::move(jobs_[r]));  // NOLINT(grefar-hot-path-alloc)
    } else {
      if (jobs_[r].deadline_slot < min_deadline) min_deadline = jobs_[r].deadline_slot;
      if (w != r) jobs_[w] = std::move(jobs_[r]);
      ++w;
    }
  }
  jobs_.resize(w);  // NOLINT(grefar-hot-path-alloc): shrink, never allocates
  if (head_ == jobs_.size()) {
    jobs_.clear();
    head_ = 0;
  }
  min_deadline_slot_ = min_deadline;  // re-tightened by the survivor scan
  if (remaining_work_ < 0.0) remaining_work_ = 0.0;
  if (empty() || total_value_ < 0.0) total_value_ = 0.0;
}

}  // namespace grefar
