// Server availability n_{i,k}(t) (paper §III-A1).
//
// Availability varies over time — failures, software upgrades, interactive
// workloads reclaiming capacity. Like arrivals and prices it is an arbitrary
// bounded process; the models here are deterministic given their seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/server.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace grefar {

/// Interface: number of usable type-k servers in data center i during slot t.
/// Must satisfy 0 <= n_{i,k}(t) <= installed_{i,k} and be replay-deterministic.
class AvailabilityModel {
 public:
  virtual ~AvailabilityModel() = default;

  /// Full (N x K) availability matrix for slot t.
  virtual Matrix<std::int64_t> availability(std::int64_t t) const = 0;

  /// Writes the slot-t matrix into `out`, reusing its storage. The default
  /// delegates to availability(); concrete models override to copy straight
  /// from their internal table, keeping the simulator's per-slot loop free
  /// of heap traffic.
  virtual void availability_into(std::int64_t t, Matrix<std::int64_t>& out) const {
    out = availability(t);
  }

  virtual std::size_t num_data_centers() const = 0;
  virtual std::size_t num_server_types() const = 0;
};

/// Everything installed is always available.
class FullAvailability final : public AvailabilityModel {
 public:
  explicit FullAvailability(std::vector<DataCenterConfig> dcs);

  Matrix<std::int64_t> availability(std::int64_t t) const override;
  void availability_into(std::int64_t t, Matrix<std::int64_t>& out) const override;
  std::size_t num_data_centers() const override { return full_.rows(); }
  std::size_t num_server_types() const override { return full_.cols(); }

 private:
  Matrix<std::int64_t> full_;
};

/// Availability replayed from a recorded table: snapshots[t](i, k); slots
/// beyond the table wrap around. Used to replay maintenance calendars or
/// recorded interactive-load interference.
class TableAvailability final : public AvailabilityModel {
 public:
  explicit TableAvailability(std::vector<Matrix<std::int64_t>> snapshots);

  Matrix<std::int64_t> availability(std::int64_t t) const override;
  void availability_into(std::int64_t t, Matrix<std::int64_t>& out) const override;
  std::size_t num_data_centers() const override { return snapshots_.front().rows(); }
  std::size_t num_server_types() const override { return snapshots_.front().cols(); }

 private:
  std::vector<Matrix<std::int64_t>> snapshots_;
};

/// Each slot, each (i,k) pool independently offers a uniform fraction in
/// [min_fraction, 1] of its installed servers (rounded down). Keeping
/// min_fraction above the load level preserves the slackness conditions
/// (20)-(22) the paper's experiments assume.
class RandomFractionAvailability final : public AvailabilityModel {
 public:
  RandomFractionAvailability(std::vector<DataCenterConfig> dcs, double min_fraction,
                             std::uint64_t seed);

  Matrix<std::int64_t> availability(std::int64_t t) const override;
  void availability_into(std::int64_t t, Matrix<std::int64_t>& out) const override;
  std::size_t num_data_centers() const override { return full_.rows(); }
  std::size_t num_server_types() const override { return full_.cols(); }

 private:
  void extend(std::int64_t t) const;

  Matrix<std::int64_t> full_;
  double min_fraction_;
  mutable std::vector<Matrix<std::int64_t>> cache_;
  mutable Rng rng_;
};

}  // namespace grefar
