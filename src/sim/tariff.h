// Usage-dependent electricity billing (paper §III-A2).
//
// The paper's default bills energy linearly: cost = phi_i(t) * E. It notes
// the model extends to an "increasing and convex" function of consumption —
// deregulated markets charge more per kWh at higher draw (tiered tariffs,
// demand charges). TieredTariff is that extension: a piecewise-linear
// increasing convex multiplier with non-decreasing per-tier rates,
//
//   cost(E) = sum_k rate_k * (portion of E inside tier k),
//
// applied on top of the time-varying price: bill = phi_i(t) * cost(E).
// The composition tariff(C_i(W)) stays convex and increasing in the served
// work W, so the per-slot problem remains convex and the greedy solver
// remains exact (see per_slot_solvers.cc).
#pragma once

#include <limits>
#include <vector>

namespace grefar {

class TieredTariff {
 public:
  /// One tier: `rate` applies to energy up to `upto` (cumulative).
  /// The last tier's `upto` must be +infinity.
  struct Tier {
    double upto = std::numeric_limits<double>::infinity();
    double rate = 1.0;
  };

  /// Flat tariff (rate 1 everywhere): the paper's linear billing.
  TieredTariff();

  /// Tiers must have strictly increasing `upto` (last one infinite) and
  /// positive, non-decreasing rates (convexity).
  explicit TieredTariff(std::vector<Tier> tiers);

  /// True for the single-tier rate-1 tariff (billing is then just phi * E).
  bool is_flat() const;

  /// Billed units for consumption `energy` >= 0 (caller multiplies by phi).
  double cost(double energy) const;

  /// Marginal rate at consumption `energy` (right-continuous).
  double marginal(double energy) const;

  /// Smoothed counterparts: the rate is blended linearly across a band of
  /// half-width `band` (energy units) around each tier boundary, making
  /// cost() continuously differentiable for the first-order solvers.
  double smoothed_cost(double energy, double band) const;
  double smoothed_marginal(double energy, double band) const;

  const std::vector<Tier>& tiers() const { return tiers_; }

 private:
  std::vector<Tier> tiers_;
};

}  // namespace grefar
