// ScalarQueueSimulator: replays the *literal* queue dynamics (12)-(13).
//
//   Q_j(t+1)    = max[Q_j(t) - sum_i r_{i,j}(t), 0] + a_j(t)
//   q_{i,j}(t+1) = max[q_{i,j}(t) - h_{i,j}(t), 0] + r_{i,j}(t)
//
// No job objects, no clamping: actions may exceed queue contents exactly as
// the analysis permits ("null" jobs/work). This is the engine the Theorem 1
// property tests and the theorem1_bounds bench run against, because the
// O(V) queue bound and O(1/V) cost bound are stated for these dynamics.
// Energy is charged on the decided processing work via the minimum-energy
// curve; fairness on the decided per-account work.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "price/price_model.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/scheduler.h"
#include "stats/time_series.h"
#include "util/matrix.h"
#include "workload/arrival_process.h"

namespace grefar {

class ScalarQueueSimulator {
 public:
  ScalarQueueSimulator(ClusterConfig config, std::shared_ptr<const PriceModel> prices,
                       std::shared_ptr<const AvailabilityModel> availability,
                       std::shared_ptr<const ArrivalProcess> arrivals,
                       std::shared_ptr<Scheduler> scheduler);

  void run(std::int64_t slots);
  void step();

  std::int64_t slot() const { return slot_; }
  double central_queue(JobTypeId j) const;
  double dc_queue(DataCenterId i, JobTypeId j) const;

  /// Largest queue length (central or DC) observed over the whole run —
  /// the quantity Theorem 1(a) bounds by V*C3/delta.
  double max_queue_observed() const { return max_queue_observed_; }

  /// Per-slot cost series.
  const TimeSeries& energy_cost() const { return energy_cost_; }
  const TimeSeries& fairness() const { return fairness_; }

  /// Time-average energy-fairness cost g = e - beta * f over the run.
  double average_cost(double beta) const;

 private:
  ClusterConfig config_;
  std::shared_ptr<const PriceModel> prices_;
  std::shared_ptr<const AvailabilityModel> availability_;
  std::shared_ptr<const ArrivalProcess> arrivals_;
  std::shared_ptr<Scheduler> scheduler_;

  std::int64_t slot_ = 0;
  std::vector<double> central_;  // Q_j
  MatrixD dc_;                   // q_{i,j}
  FairnessFunction fairness_fn_;
  TimeSeries energy_cost_;
  TimeSeries fairness_;
  double max_queue_observed_ = 0.0;
};

}  // namespace grefar
