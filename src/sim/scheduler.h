// Scheduler interface: the per-slot decision contract (paper §III-C2).
//
// At the beginning of slot t the scheduler observes the data-center state
// x(t) = {n(t), phi(t)} and the queue state Theta(t) = {Q_j(t), q_{i,j}(t)},
// and returns the action z(t) = {r_{i,j}(t), h_{i,j}(t)}. The busy-server
// allocation b_{i,k}(t) is derived from the served work via the shared
// minimum-energy curve, so schedulers decide *what* to process and the
// energy model decides *which servers* run it.
#pragma once

#include <cstdint>
#include <string>

#include "price/price_model.h"
#include "sim/cluster.h"
#include "util/matrix.h"

namespace grefar {

/// Everything a (purely online) scheduler may look at for slot t.
struct SlotObservation {
  std::int64_t slot = 0;
  std::vector<double> prices;             // phi_i(t), length N
  Matrix<std::int64_t> availability;      // n_{i,k}(t), N x K
  std::vector<double> central_queue;      // Q_j(t) in jobs, length J
  MatrixD dc_queue;                       // q_{i,j}(t) in jobs (fractional), N x J

  /// Optional sparsity hint for million-type instances (DESIGN.md §12).
  /// When `active_types_valid`, `active_types` lists — ascending, no
  /// duplicates — every job type j with Q_j(t) > 0 or q_{i,j}(t) > 0 for
  /// some i; any type not listed is guaranteed empty everywhere this slot.
  /// Schedulers may use the hint to touch only active columns; the engine
  /// maintains it from its queues, and a producer that sets the flag owns
  /// the guarantee. An invalid flag (default) means "no information" and
  /// must trigger dense behavior, not "no active types".
  bool active_types_valid = false;
  std::vector<std::uint32_t> active_types;
};

/// The action z(t). Ineligible (i,j) pairs must stay zero; the engine clamps
/// desires against actual queue contents and capacity (see DESIGN.md §2).
///
/// Integer-routing contract: jobs are indivisible, so every route entry must
/// be integral up to floating-point noise (|r - round(r)| <= 1e-6). The
/// engine *verifies* this and rounds to the nearest integer — it never
/// silently floors a fractional ask, because a scheduler that emits r = 2.4
/// has a relaxation-rounding bug the simulation must surface, not paper
/// over. Process entries are genuinely fractional (fluid service).
struct SlotAction {
  MatrixD route;    // r_{i,j}(t): jobs moved central -> DC i (integral values)
  MatrixD process;  // h_{i,j}(t): jobs' worth of work served at DC i (fractional)
};

struct TraceScope;  // obs/trace_scope.h

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Decides the action for one slot. Called exactly once per slot in
  /// increasing slot order.
  virtual SlotAction decide(const SlotObservation& obs) = 0;

  /// Like decide(), but writes into a caller-owned action so hot loops can
  /// reuse the matrices across slots. The default delegates to decide();
  /// schedulers with per-slot state (GreFar) override both to share one
  /// allocation-free implementation.
  virtual void decide_into(const SlotObservation& obs, SlotAction& out) {
    out = decide(obs);
  }

  /// Traced variant: `scope` (owned by the engine, cleared each slot, nullptr
  /// when no inspector is attached) collects scheduler-internal annotations
  /// for the slot trace. The default ignores the scope and delegates to the
  /// two-argument overload, so only schedulers with something to annotate
  /// (GreFar's tie-break bookkeeping) override this.
  virtual void decide_into(const SlotObservation& obs, SlotAction& out,
                           TraceScope* scope) {
    (void)scope;
    decide_into(obs, out);
  }

  /// Display name for reports ("GreFar(V=7.5, beta=100)", "Always", ...).
  virtual std::string name() const = 0;
};

}  // namespace grefar
