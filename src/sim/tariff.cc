#include "sim/tariff.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace grefar {

TieredTariff::TieredTariff() : tiers_{Tier{}} {}

TieredTariff::TieredTariff(std::vector<Tier> tiers) : tiers_(std::move(tiers)) {
  GREFAR_CHECK_MSG(!tiers_.empty(), "tariff needs at least one tier");
  double prev_upto = 0.0;
  double prev_rate = 0.0;
  for (std::size_t k = 0; k < tiers_.size(); ++k) {
    GREFAR_CHECK_MSG(tiers_[k].rate > 0.0, "tariff rates must be positive");
    GREFAR_CHECK_MSG(tiers_[k].rate >= prev_rate,
                     "tariff rates must be non-decreasing (convexity)");
    if (k + 1 < tiers_.size()) {
      GREFAR_CHECK_MSG(std::isfinite(tiers_[k].upto) && tiers_[k].upto > prev_upto,
                       "tier boundaries must be finite and strictly increasing");
    } else {
      GREFAR_CHECK_MSG(std::isinf(tiers_[k].upto),
                       "the last tier must extend to infinity");
    }
    prev_upto = tiers_[k].upto;
    prev_rate = tiers_[k].rate;
  }
}

bool TieredTariff::is_flat() const {
  return tiers_.size() == 1 && tiers_.front().rate == 1.0;
}

double TieredTariff::cost(double energy) const {
  GREFAR_CHECK_MSG(energy >= -1e-9, "negative energy " << energy);
  double remaining = std::max(energy, 0.0);
  double total = 0.0;
  double tier_start = 0.0;
  for (const auto& tier : tiers_) {
    double width = tier.upto - tier_start;
    double used = std::min(remaining, width);
    total += used * tier.rate;
    remaining -= used;
    if (remaining <= 0.0) break;
    tier_start = tier.upto;
  }
  return total;
}

double TieredTariff::marginal(double energy) const {
  GREFAR_CHECK_MSG(energy >= -1e-9, "negative energy " << energy);
  double level = std::max(energy, 0.0);
  for (const auto& tier : tiers_) {
    if (level < tier.upto) return tier.rate;
  }
  return tiers_.back().rate;
}

double TieredTariff::smoothed_marginal(double energy, double band) const {
  GREFAR_CHECK(energy >= -1e-9);
  GREFAR_CHECK(band >= 0.0);
  double level = std::max(energy, 0.0);
  double tier_start = 0.0;
  for (std::size_t k = 0; k + 1 < tiers_.size(); ++k) {
    double boundary = tiers_[k].upto;
    double next_width = (k + 2 < tiers_.size() ? tiers_[k + 1].upto : boundary * 2 +
                                                                          band * 4) -
                        boundary;
    double delta = std::min({band, 0.5 * (boundary - tier_start), 0.5 * next_width});
    if (level < boundary - delta) return tiers_[k].rate;
    if (level <= boundary + delta) {
      if (delta <= 0.0) return tiers_[k + 1].rate;
      double frac = (level - (boundary - delta)) / (2.0 * delta);
      return tiers_[k].rate + frac * (tiers_[k + 1].rate - tiers_[k].rate);
    }
    tier_start = boundary;
  }
  return tiers_.back().rate;
}

double TieredTariff::smoothed_cost(double energy, double band) const {
  GREFAR_CHECK(energy >= -1e-9);
  GREFAR_CHECK(band >= 0.0);
  const double level = std::max(energy, 0.0);
  // Integrate the smoothed marginal piecewise: constant runs plus linear
  // blend zones around interior boundaries.
  double total = 0.0;
  double pos = 0.0;
  double tier_start = 0.0;
  for (std::size_t k = 0; k + 1 < tiers_.size() && pos < level; ++k) {
    double boundary = tiers_[k].upto;
    double next_width = (k + 2 < tiers_.size() ? tiers_[k + 1].upto : boundary * 2 +
                                                                          band * 4) -
                        boundary;
    double delta = std::min({band, 0.5 * (boundary - tier_start), 0.5 * next_width});
    // Constant run up to the blend zone.
    double run_end = std::min(level, boundary - delta);
    if (run_end > pos) {
      total += (run_end - pos) * tiers_[k].rate;
      pos = run_end;
    }
    // Blend zone [boundary - delta, boundary + delta].
    double zone_end = std::min(level, boundary + delta);
    if (zone_end > pos && delta > 0.0) {
      double s0 = smoothed_marginal(pos, band);
      double s1 = smoothed_marginal(zone_end, band);
      total += 0.5 * (s0 + s1) * (zone_end - pos);
      pos = zone_end;
    } else if (zone_end > pos) {
      total += (zone_end - pos) * tiers_[k + 1].rate;
      pos = zone_end;
    }
    tier_start = boundary;
  }
  if (level > pos) total += (level - pos) * tiers_.back().rate;
  return total;
}

}  // namespace grefar
