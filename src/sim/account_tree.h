// AccountTree: hierarchical accounts (org -> team -> user) for fairness at
// scale (DESIGN.md §12).
//
// The paper's fairness function (eq. (3)) is flat: M accounts with target
// shares gamma_m. Real clusters meter millions of *users* but set policy at
// the organization or team level. The tree stores one weight per node with
// the invariant that every node's children's weights sum (exactly, by
// construction) to the node's own weight — so the target-share vector read
// off at ANY level is a consistent refinement of the levels above it:
// aggregating level-l shares up to level l-1 reproduces the level-(l-1)
// shares. GreFar can therefore be solved at a chosen level (accounts_at_level
// feeds ClusterConfig directly) while metering still happens at the leaves,
// and aggregate_to_level() folds per-leaf served work up to the solver's
// level for scoring.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.h"
#include "util/annotations.h"

namespace grefar {

class AccountTree {
 public:
  /// Builds a full balanced tree: branching[l] children under every
  /// level-(l-1) node (branching[0] = number of roots). Node weights are
  /// drawn deterministically from `seed`: roots share weight 1.0 in random
  /// proportions, and every node splits its weight among its children in
  /// random proportions — so the sum-to-parent invariant holds exactly by
  /// construction. `skew` >= 0 controls how unequal the proportions are
  /// (0 = perfectly even split; larger = heavier skew).
  static AccountTree balanced(const std::vector<std::size_t>& branching,
                              std::uint64_t seed, double skew = 1.0);

  /// Builds from explicit per-level parents and weights. levels >= 1;
  /// parents[0] must be empty (roots), parents[l][i] indexes level l-1.
  /// Throws unless every node's children's weights sum to its weight
  /// within 1e-9 relative tolerance.
  AccountTree(std::vector<std::vector<std::uint32_t>> parents,
              std::vector<std::vector<double>> weights);

  std::size_t num_levels() const { return weights_.size(); }
  std::size_t num_nodes(std::size_t level) const;
  /// Nodes of the deepest level.
  std::size_t num_leaves() const { return weights_.back().size(); }

  /// Parent (index into level-1) of node `idx` at `level` >= 1.
  std::uint32_t parent(std::size_t level, std::size_t idx) const;
  double weight(std::size_t level, std::size_t idx) const;

  /// The ancestor at `level` of leaf `leaf` (level == num_levels()-1 is the
  /// leaf itself).
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  std::uint32_t ancestor_of_leaf(std::size_t leaf, std::size_t level) const;

  /// Target shares gamma at `level`, normalized so they sum to 1 (up to
  /// rounding): weight / total root weight.
  std::vector<double> gamma_at_level(std::size_t level) const;

  /// The level's nodes as ClusterConfig accounts ("L<level>:<index>", gamma
  /// from gamma_at_level).
  std::vector<Account> accounts_at_level(std::size_t level) const;

  /// Sums per-leaf values over subtrees: out[n] = sum of leaf_values over
  /// leaves whose level-`level` ancestor is n.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void aggregate_to_level(const std::vector<double>& leaf_values,
                          std::size_t level, std::vector<double>& out) const;

 private:
  void validate() const;

  std::vector<std::vector<std::uint32_t>> parents_;  // [level][node], [0] empty
  std::vector<std::vector<double>> weights_;         // [level][node]
  double total_weight_ = 0.0;                        // sum of root weights
};

}  // namespace grefar
