// The optimal T-step lookahead policy (paper §V-A, eq. (15)-(18)).
//
// The horizon t_end = R*T is split into R frames; within each frame the
// policy knows all arrivals, prices and availability in advance and solves
//
//   min (1/T) sum_t g(t)
//   s.t. sum_t ( a_j(t) - sum_{i in D_j} r_{i,j}(t) ) <= 0        (16)
//        sum_t ( r_{i,j}(t) - h_{i,j}(t) ) <= 0                   (17)
//        sum_j h_{i,j}(t) d_j <= sum_k b_{i,k}(t) s_k <= cap_i(t) (18)
//
// With beta = 0 this is a linear program (decision variables: routed jobs
// r, processed work u = h*d, and per-server-type work w); we solve it with
// the simplex substrate. The frame optima G*_r are the comparison targets of
// Theorem 1(b): GreFar's average cost is within (B + D(T-1))/V of their mean.
//
// beta > 0 turns the frame problem into a convex QP; the empirical theorem
// bench uses beta = 0 where the LP is exact, matching the paper's Fig. 2
// setting. (solve_lookahead contract-checks beta == 0.)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "price/price_model.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "solver/lp.h"
#include "workload/arrival_process.h"

namespace grefar {

struct LookaheadParams {
  std::int64_t T = 8;   // frame length (slots)
  std::int64_t R = 8;   // number of frames; horizon = R*T
  double r_max = 1e6;   // eq. (4) bound
  double h_max = 1e6;   // eq. (5) bound
  /// Worker threads for the R independent frame solves (0 = all hardware
  /// threads, 1 = serial). All model data is pre-materialized serially, so
  /// frame_costs are bit-identical for every jobs value.
  std::size_t jobs = 1;
};

struct LookaheadResult {
  std::vector<double> frame_costs;  // G*_r, r = 0..R-1 (per-slot averages)
  double average_cost = 0.0;        // (1/R) sum_r G*_r — eq. (19)
};

/// Solves every frame LP over the horizon [0, R*T). Throws ContractViolation
/// if any frame is infeasible (the slackness conditions (20)-(22) guarantee
/// feasibility on well-posed instances). The R frames are independent and
/// fan out over a SimRunner thread pool (params.jobs); each worker only
/// touches pre-materialized per-frame data, never the (lazily caching)
/// price/availability/arrival models, and results reduce in frame order —
/// the output is bit-identical at any job count.
LookaheadResult solve_lookahead(const ClusterConfig& config, const PriceModel& prices,
                                const AvailabilityModel& availability,
                                const ArrivalProcess& arrivals,
                                const LookaheadParams& params);

/// Builds the LP for one frame starting at slot `frame_start` (exposed for
/// tests). Variable layout, with F = T slots and offsets in this order:
///   r_{i,j,t}: ((t*N + i)*J + j)
///   u_{i,j,t}: N*J*F + ((t*N + i)*J + j)
///   w_{i,k,t}: 2*N*J*F + ((t*N + i)*K + k)
LinearProgram build_frame_lp(const ClusterConfig& config, const PriceModel& prices,
                             const AvailabilityModel& availability,
                             const ArrivalProcess& arrivals, std::int64_t frame_start,
                             const LookaheadParams& params);

/// The T-step lookahead policy for the *full* energy-fairness cost
/// g = e - beta*f (beta > 0 makes the frame problem a convex QP). Solved by
/// Frank-Wolfe over the frame polytope, using the frame LP (with the
/// linearized objective) as the linear minimization oracle — the FW gap
/// certifies near-optimality of every frame. The polytope never changes
/// within a frame, so every LMO call after the first warm-starts from the
/// previous vertex's simplex basis (phase-2 re-entry). Frames fan out over
/// params.base.jobs workers with the same bit-identical guarantee as
/// solve_lookahead. With beta = 0 this agrees with solve_lookahead (and
/// costs more time); use it to empirically check Theorem 1 in the fairness
/// regime.
struct FairLookaheadParams {
  LookaheadParams base;
  double beta = 0.0;
  int fw_iterations = 80;  // per frame
};
LookaheadResult solve_lookahead_fair(const ClusterConfig& config,
                                     const PriceModel& prices,
                                     const AvailabilityModel& availability,
                                     const ArrivalProcess& arrivals,
                                     const FairLookaheadParams& params);

}  // namespace grefar
