#include "lookahead/mpc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/counters.h"
#include "solver/lp.h"
#include "util/check.h"
#include "util/strings.h"

namespace grefar {

MpcScheduler::MpcScheduler(ClusterConfig config,
                           std::shared_ptr<const PriceModel> prices,
                           std::shared_ptr<const AvailabilityModel> availability,
                           std::shared_ptr<const ArrivalProcess> arrivals,
                           MpcParams params)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      availability_(std::move(availability)),
      arrivals_(std::move(arrivals)),
      params_(params) {
  config_.validate();
  GREFAR_CHECK(prices_ != nullptr && availability_ != nullptr && arrivals_ != nullptr);
  GREFAR_CHECK_MSG(params_.window >= 1, "MPC window must be >= 1");
  GREFAR_CHECK(params_.r_max >= 0.0 && params_.h_max >= 0.0);
  GREFAR_CHECK_MSG(!config_.has_nonlinear_billing(),
                   "MpcScheduler's LP models linear billing only");
}

std::string MpcScheduler::name() const {
  return "MPC(W=" + std::to_string(params_.window) + ")";
}

SlotAction MpcScheduler::decide(const SlotObservation& obs) {
  const std::size_t N = config_.num_data_centers();
  const std::size_t J = config_.num_job_types();
  const std::size_t K = config_.num_server_types();
  const auto W = static_cast<std::size_t>(params_.window);

  // Variable layout.
  const std::size_t r_block = N * J * W;
  const std::size_t u_block = N * J * W;
  const std::size_t w_block = N * K * W;
  const std::size_t Q_block = J * W;      // Q[j][tau+1], tau = 0..W-1
  const std::size_t q_block = N * J * W;  // q[i][j][tau+1]
  LinearProgram lp(r_block + u_block + w_block + Q_block + q_block);
  auto r_idx = [&](std::size_t tau, std::size_t i, std::size_t j) {
    return (tau * N + i) * J + j;
  };
  auto u_idx = [&](std::size_t tau, std::size_t i, std::size_t j) {
    return r_block + (tau * N + i) * J + j;
  };
  auto w_idx = [&](std::size_t tau, std::size_t i, std::size_t k) {
    return r_block + u_block + (tau * N + i) * K + k;
  };
  auto Q_idx = [&](std::size_t tau_next, std::size_t j) {  // tau_next = tau+1
    return r_block + u_block + w_block + (tau_next - 1) * J + j;
  };
  auto q_idx = [&](std::size_t tau_next, std::size_t i, std::size_t j) {
    return r_block + u_block + w_block + Q_block + ((tau_next - 1) * N + i) * J + j;
  };

  // Gather window data and the worst in-window unit energy cost for the
  // automatic terminal penalty.
  std::vector<std::vector<double>> window_prices(W);
  std::vector<Matrix<std::int64_t>> window_avail(W);
  std::vector<std::vector<std::int64_t>> window_arrivals(W);
  double worst_unit_cost = 0.0;
  for (std::size_t tau = 0; tau < W; ++tau) {
    std::int64_t slot = obs.slot + static_cast<std::int64_t>(tau);
    window_prices[tau].reserve(N);
    for (std::size_t i = 0; i < N; ++i) {
      window_prices[tau].push_back(prices_->price(i, slot));
    }
    window_avail[tau] = availability_->availability(slot);
    window_arrivals[tau] = arrivals_->arrivals(slot);
    for (std::size_t i = 0; i < N; ++i) {
      double cheapest = 0.0;
      bool any = false;
      for (std::size_t k = 0; k < K; ++k) {
        if (window_avail[tau](i, k) <= 0) continue;
        const auto& st = config_.server_types[k];
        double c = window_prices[tau][i] * st.busy_power / st.speed;
        cheapest = any ? std::min(cheapest, c) : c;
        any = true;
      }
      if (any) worst_unit_cost = std::max(worst_unit_cost, cheapest);
    }
  }
  // The 5% margin breaks ties so backlog is cleared within the window
  // whenever in-window prices are no worse than the post-window estimate.
  const double kappa = params_.terminal_penalty > 0.0 ? params_.terminal_penalty
                                                      : 1.05 * worst_unit_cost;

  // Objective: energy per slot + terminal backlog penalty (per work unit).
  for (std::size_t tau = 0; tau < W; ++tau) {
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t k = 0; k < K; ++k) {
        const auto& st = config_.server_types[k];
        lp.set_objective(w_idx(tau, i, k),
                         window_prices[tau][i] * st.busy_power / st.speed);
      }
    }
  }
  for (std::size_t j = 0; j < J; ++j) {
    lp.set_objective(Q_idx(W, j), kappa * config_.job_types[j].work);
    for (std::size_t i = 0; i < N; ++i) {
      lp.set_objective(q_idx(W, i, j), kappa * config_.job_types[j].work);
    }
  }

  // Flow constraints + bounds.
  for (std::size_t tau = 0; tau < W; ++tau) {
    for (std::size_t j = 0; j < J; ++j) {
      const double d = config_.job_types[j].work;
      // Central queue: Q[tau+1] + sum_i r[tau] - Q[tau] = a[tau].
      std::vector<std::pair<std::size_t, double>> central{{Q_idx(tau + 1, j), 1.0}};
      double rhs = static_cast<double>(window_arrivals[tau][j]);
      if (tau == 0) {
        rhs += obs.central_queue[j];
      } else {
        central.emplace_back(Q_idx(tau, j), -1.0);
      }
      for (DataCenterId i : config_.job_types[j].eligible_dcs) {
        central.emplace_back(r_idx(tau, i, j), 1.0);
      }
      lp.add_constraint_sparse(central, ConstraintSense::kEqual, rhs);

      for (std::size_t i = 0; i < N; ++i) {
        const bool eligible = config_.job_types[j].eligible(i);
        lp.add_upper_bound(r_idx(tau, i, j), eligible ? params_.r_max : 0.0);
        lp.add_upper_bound(u_idx(tau, i, j), eligible ? params_.h_max * d : 0.0);
        // DC queue: q[tau+1] - q[tau] - r[tau] + u[tau]/d = 0.
        std::vector<std::pair<std::size_t, double>> dc{{q_idx(tau + 1, i, j), 1.0},
                                                       {r_idx(tau, i, j), -1.0},
                                                       {u_idx(tau, i, j), 1.0 / d}};
        double dc_rhs = 0.0;
        if (tau == 0) {
          dc_rhs = obs.dc_queue(i, j);
        } else {
          dc.emplace_back(q_idx(tau, i, j), -1.0);
        }
        lp.add_constraint_sparse(dc, ConstraintSense::kEqual, dc_rhs);
      }
    }
    for (std::size_t i = 0; i < N; ++i) {
      std::vector<std::pair<std::size_t, double>> balance;
      for (std::size_t j = 0; j < J; ++j) balance.emplace_back(u_idx(tau, i, j), 1.0);
      for (std::size_t k = 0; k < K; ++k) {
        balance.emplace_back(w_idx(tau, i, k), -1.0);
        lp.add_upper_bound(w_idx(tau, i, k),
                           static_cast<double>(window_avail[tau](i, k)) *
                               config_.server_types[k].speed);
      }
      lp.add_constraint_sparse(balance, ConstraintSense::kLessEqual, 0.0);
    }
  }

  // The window LP has identical structure every slot (only prices, arrivals
  // and queue levels shift), so the previous slot's basis usually re-enters
  // phase 2 directly; solve_lp falls back to a cold solve on its own when
  // the shifted data breaks primal feasibility.
  const bool warm = params_.warm_start && warm_basis_.valid();
  obs::count(warm ? "mpc.warm_solves" : "mpc.cold_solves");
  LpSolution sol = warm ? solve_lp(lp, warm_basis_) : solve_lp(lp);
  GREFAR_CHECK_MSG(sol.optimal(), "MPC window LP " << to_string(sol.status));
  if (params_.warm_start) warm_basis_ = std::move(sol.basis);

  SlotAction action;
  action.route = MatrixD(N, J);
  action.process = MatrixD(N, J);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      // The engine moves whole jobs; floor the LP's fractional routing.
      action.route(i, j) = std::floor(sol.x[r_idx(0, i, j)] + 1e-9);
      action.process(i, j) = sol.x[u_idx(0, i, j)] / config_.job_types[j].work;
    }
  }
  return action;
}

}  // namespace grefar
