// Model-predictive (rolling-horizon) scheduler.
//
// The related work the paper contrasts with (e.g. Guenter et al. [4])
// schedules by *predicting* demand and optimizing over a finite window.
// MpcScheduler is that family's strongest member: each slot it solves a
// window-W linear program with **oracle** knowledge of future prices,
// availability and arrivals, then executes the first slot's action.
//
//   min  sum_tau energy(tau) + kappa * (work left queued at the window end)
//   s.t. central-queue flow  Q[tau+1] = Q[tau] - route[tau] + a[tau] >= 0
//        DC-queue flow       q[tau+1] = q[tau] + route[tau] - h[tau] >= 0
//        capacity            sum_j u <= sum_k w,  w <= n*s   (per slot)
//        bounds              r <= r_max, u <= h_max * d
//
// The terminal penalty kappa (per work unit) prices deferral beyond the
// window at the worst in-window unit cost, so the LP clears work when the
// window contains a cheap moment but is never forced into infeasibility by
// backlog. Oracle MPC upper-bounds what any prediction-based scheduler of
// window W can do — the natural yardstick for GreFar, which uses *no*
// prediction at all.
//
// Cost: one simplex solve per slot (O(W * N * J) variables). The window LP
// has the same structure every slot with shifted data, so each solve
// warm-starts from the previous slot's optimal basis (phase-2 re-entry;
// automatic cold fallback when the shifted data makes the basis infeasible).
// Intended for small instances and ablations, not the 2000-hour scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "solver/lp.h"

#include "price/price_model.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "sim/scheduler.h"
#include "workload/arrival_process.h"

namespace grefar {

struct MpcParams {
  std::int64_t window = 8;  // W: lookahead slots per solve
  double r_max = 1e6;
  double h_max = 1e6;
  /// Terminal penalty per unit of work still queued at the window end;
  /// <= 0 selects the automatic choice (worst in-window unit energy cost).
  double terminal_penalty = -1.0;
  /// Re-enter the window LP from the previous slot's optimal basis. Off
  /// reproduces a cold simplex solve every slot (A/B lever; the realized
  /// schedule may pick a different vertex among alternate optima, but every
  /// per-slot optimum is identical).
  bool warm_start = true;
};

class MpcScheduler final : public Scheduler {
 public:
  MpcScheduler(ClusterConfig config, std::shared_ptr<const PriceModel> prices,
               std::shared_ptr<const AvailabilityModel> availability,
               std::shared_ptr<const ArrivalProcess> arrivals, MpcParams params);

  SlotAction decide(const SlotObservation& obs) override;
  std::string name() const override;

 private:
  ClusterConfig config_;
  std::shared_ptr<const PriceModel> prices_;
  std::shared_ptr<const AvailabilityModel> availability_;
  std::shared_ptr<const ArrivalProcess> arrivals_;
  MpcParams params_;
  SimplexBasis warm_basis_;  // previous slot's optimal basis (empty = cold)
};

}  // namespace grefar
