#include "lookahead/lookahead.h"

#include <algorithm>
#include <cmath>

#include "sim/fairness.h"
#include "util/check.h"

namespace grefar {

LinearProgram build_frame_lp(const ClusterConfig& config, const PriceModel& prices,
                             const AvailabilityModel& availability,
                             const ArrivalProcess& arrivals, std::int64_t frame_start,
                             const LookaheadParams& params) {
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  const std::size_t K = config.num_server_types();
  const auto F = static_cast<std::size_t>(params.T);
  GREFAR_CHECK(params.T > 0);

  const std::size_t r_block = N * J * F;
  const std::size_t u_block = N * J * F;
  LinearProgram lp(r_block + u_block + N * K * F);
  auto r_idx = [&](std::size_t t, std::size_t i, std::size_t j) {
    return (t * N + i) * J + j;
  };
  auto u_idx = [&](std::size_t t, std::size_t i, std::size_t j) {
    return r_block + (t * N + i) * J + j;
  };
  auto w_idx = [&](std::size_t t, std::size_t i, std::size_t k) {
    return r_block + u_block + (t * N + i) * K + k;
  };

  // Objective: total energy over the frame (beta = 0 => g = e).
  for (std::size_t t = 0; t < F; ++t) {
    std::int64_t slot = frame_start + static_cast<std::int64_t>(t);
    for (std::size_t i = 0; i < N; ++i) {
      double phi = prices.price(i, slot);
      for (std::size_t k = 0; k < K; ++k) {
        const auto& st = config.server_types[k];
        lp.set_objective(w_idx(t, i, k), phi * st.busy_power / st.speed);
      }
    }
  }

  // (16): all frame arrivals must be routed within the frame.
  for (std::size_t j = 0; j < J; ++j) {
    double total_arrivals = 0.0;
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t t = 0; t < F; ++t) {
      std::int64_t slot = frame_start + static_cast<std::int64_t>(t);
      total_arrivals += static_cast<double>(arrivals.arrivals(slot)[j]);
      for (DataCenterId i : config.job_types[j].eligible_dcs) {
        terms.emplace_back(r_idx(t, i, j), 1.0);
      }
    }
    lp.add_constraint_sparse(terms, ConstraintSense::kGreaterEqual, total_arrivals);
  }

  // (17): everything routed within the frame is processed within the frame.
  for (std::size_t j = 0; j < J; ++j) {
    const double d = config.job_types[j].work;
    for (DataCenterId i : config.job_types[j].eligible_dcs) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t t = 0; t < F; ++t) {
        terms.emplace_back(u_idx(t, i, j), 1.0 / d);  // h = u/d
        terms.emplace_back(r_idx(t, i, j), -1.0);
      }
      lp.add_constraint_sparse(terms, ConstraintSense::kGreaterEqual, 0.0);
    }
  }

  // (18) + per-variable bounds, per slot.
  for (std::size_t t = 0; t < F; ++t) {
    std::int64_t slot = frame_start + static_cast<std::int64_t>(t);
    auto avail = availability.availability(slot);
    for (std::size_t i = 0; i < N; ++i) {
      std::vector<std::pair<std::size_t, double>> balance;
      for (std::size_t j = 0; j < J; ++j) {
        balance.emplace_back(u_idx(t, i, j), 1.0);
        const bool eligible = config.job_types[j].eligible(i);
        lp.add_upper_bound(r_idx(t, i, j), eligible ? params.r_max : 0.0);
        lp.add_upper_bound(u_idx(t, i, j),
                           eligible ? params.h_max * config.job_types[j].work : 0.0);
      }
      for (std::size_t k = 0; k < K; ++k) {
        balance.emplace_back(w_idx(t, i, k), -1.0);
        lp.add_upper_bound(w_idx(t, i, k), static_cast<double>(avail(i, k)) *
                                               config.server_types[k].speed);
      }
      lp.add_constraint_sparse(balance, ConstraintSense::kLessEqual, 0.0);
    }
  }
  return lp;
}

LookaheadResult solve_lookahead(const ClusterConfig& config, const PriceModel& prices,
                                const AvailabilityModel& availability,
                                const ArrivalProcess& arrivals,
                                const LookaheadParams& params) {
  config.validate();
  GREFAR_CHECK(params.T > 0 && params.R > 0);
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the lookahead frame LP models linear billing only");
  LookaheadResult result;
  result.frame_costs.reserve(static_cast<std::size_t>(params.R));
  for (std::int64_t r = 0; r < params.R; ++r) {
    LinearProgram lp = build_frame_lp(config, prices, availability, arrivals,
                                      r * params.T, params);
    LpSolution sol = solve_lp(lp);
    GREFAR_CHECK_MSG(sol.optimal(), "frame " << r << " LP " << to_string(sol.status)
                                             << " — slackness (20)-(22) violated?");
    result.frame_costs.push_back(sol.objective / static_cast<double>(params.T));
  }
  double sum = 0.0;
  for (double c : result.frame_costs) sum += c;
  result.average_cost = sum / static_cast<double>(params.R);
  return result;
}

namespace {

/// Objective pieces for the fairness-aware frame problem, in the variable
/// layout of build_frame_lp.
struct FrameObjective {
  const ClusterConfig* config;
  const AvailabilityModel* availability;
  std::int64_t frame_start;
  std::size_t T;
  double beta;
  std::vector<double> energy_cost;  // linear coefficients (w block only)
  FairnessFunction fairness;

  std::size_t u_offset() const {
    return config->num_data_centers() * config->num_job_types() * T;
  }
  std::size_t u_index(std::size_t t, std::size_t i, std::size_t j) const {
    return u_offset() +
           (t * config->num_data_centers() + i) * config->num_job_types() + j;
  }

  double total_resource(std::size_t t) const {
    auto avail = availability->availability(frame_start + static_cast<std::int64_t>(t));
    double total = 0.0;
    for (std::size_t i = 0; i < config->num_data_centers(); ++i) {
      for (std::size_t k = 0; k < config->num_server_types(); ++k) {
        total += static_cast<double>(avail(i, k)) * config->server_types[k].speed;
      }
    }
    return total;
  }

  /// Per-account work in slot t.
  std::vector<double> account_work(const std::vector<double>& x, std::size_t t) const {
    std::vector<double> r_m(config->num_accounts(), 0.0);
    for (std::size_t i = 0; i < config->num_data_centers(); ++i) {
      for (std::size_t j = 0; j < config->num_job_types(); ++j) {
        r_m[config->job_types[j].account] += x[u_index(t, i, j)];
      }
    }
    return r_m;
  }

  /// Frame total cost sum_t [e(t) - beta f(t)] (not divided by T).
  double value(const std::vector<double>& x) const {
    double total = 0.0;
    for (std::size_t v = 0; v < x.size(); ++v) total += energy_cost[v] * x[v];
    if (beta > 0.0) {
      for (std::size_t t = 0; t < T; ++t) {
        double resource = total_resource(t);
        if (resource <= 0.0) continue;
        total -= beta * fairness.score(account_work(x, t), resource);
      }
    }
    return total;
  }

  std::vector<double> gradient(const std::vector<double>& x) const {
    std::vector<double> g = energy_cost;
    if (beta > 0.0) {
      for (std::size_t t = 0; t < T; ++t) {
        double resource = total_resource(t);
        if (resource <= 0.0) continue;
        auto r_m = account_work(x, t);
        for (std::size_t i = 0; i < config->num_data_centers(); ++i) {
          for (std::size_t j = 0; j < config->num_job_types(); ++j) {
            AccountId m = config->job_types[j].account;
            g[u_index(t, i, j)] -=
                beta * fairness.score_gradient(r_m[m], m, resource);
          }
        }
      }
    }
    return g;
  }
};

}  // namespace

LookaheadResult solve_lookahead_fair(const ClusterConfig& config,
                                     const PriceModel& prices,
                                     const AvailabilityModel& availability,
                                     const ArrivalProcess& arrivals,
                                     const FairLookaheadParams& params) {
  config.validate();
  GREFAR_CHECK(params.base.T > 0 && params.base.R > 0);
  GREFAR_CHECK(params.beta >= 0.0);
  GREFAR_CHECK(params.fw_iterations >= 1);
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the lookahead frame LP models linear billing only");

  LookaheadResult result;
  result.frame_costs.reserve(static_cast<std::size_t>(params.base.R));
  for (std::int64_t r = 0; r < params.base.R; ++r) {
    const std::int64_t frame_start = r * params.base.T;
    LinearProgram lp = build_frame_lp(config, prices, availability, arrivals,
                                      frame_start, params.base);

    FrameObjective objective{&config,
                             &availability,
                             frame_start,
                             static_cast<std::size_t>(params.base.T),
                             params.beta,
                             lp.objective(),  // energy coefficients
                             FairnessFunction(config.gammas())};

    // Start from the energy-only optimum (also a feasibility certificate).
    LpSolution start = solve_lp(lp);
    GREFAR_CHECK_MSG(start.optimal(), "frame " << r << " LP " << to_string(start.status)
                                               << " — slackness violated?");
    std::vector<double> x = start.x;

    // Frank-Wolfe with the frame LP as the LMO.
    for (int iter = 0; iter < params.fw_iterations; ++iter) {
      auto grad = objective.gradient(x);
      LinearProgram lmo = lp;  // same constraints, linearized objective
      for (std::size_t v = 0; v < grad.size(); ++v) lmo.set_objective(v, grad[v]);
      LpSolution vertex = solve_lp(lmo);
      GREFAR_CHECK_MSG(vertex.optimal(), "frame LMO " << to_string(vertex.status));

      double gap = 0.0;
      for (std::size_t v = 0; v < grad.size(); ++v) {
        gap += grad[v] * (x[v] - vertex.x[v]);
      }
      if (gap <= 1e-7) break;

      // Ternary line search along the segment (objective convex).
      auto value_at = [&](double step) {
        std::vector<double> trial(x.size());
        for (std::size_t v = 0; v < x.size(); ++v) {
          trial[v] = x[v] + step * (vertex.x[v] - x[v]);
        }
        return objective.value(trial);
      };
      double lo = 0.0, hi = 1.0;
      for (int ls = 0; ls < 40; ++ls) {
        double m1 = lo + (hi - lo) / 3.0;
        double m2 = hi - (hi - lo) / 3.0;
        if (value_at(m1) <= value_at(m2)) hi = m2;
        else lo = m1;
      }
      double step = 0.5 * (lo + hi);
      if (step < 1e-12) step = 2.0 / (iter + 2.0);
      for (std::size_t v = 0; v < x.size(); ++v) {
        x[v] += step * (vertex.x[v] - x[v]);
      }
    }
    result.frame_costs.push_back(objective.value(x) /
                                 static_cast<double>(params.base.T));
  }
  double sum = 0.0;
  for (double c : result.frame_costs) sum += c;
  result.average_cost = sum / static_cast<double>(params.base.R);
  return result;
}

}  // namespace grefar
