#include "lookahead/lookahead.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "parallel/sim_runner.h"
#include "sim/fairness.h"
#include "util/check.h"

namespace grefar {

namespace {

/// One frame's worth of model data, pre-materialized serially so frame
/// solves can run on worker threads without touching the price /
/// availability / arrival models (whose implementations carry lazily
/// extended mutable caches and are not safe to share across threads).
struct FrameData {
  std::int64_t frame_start = 0;
  std::vector<std::vector<double>> prices;           // [t][i]
  std::vector<Matrix<std::int64_t>> avail;           // [t]
  std::vector<std::vector<std::int64_t>> arrivals;   // [t][j]
};

FrameData gather_frame(const ClusterConfig& config, const PriceModel& prices,
                       const AvailabilityModel& availability,
                       const ArrivalProcess& arrivals, std::int64_t frame_start,
                       std::int64_t T) {
  const std::size_t N = config.num_data_centers();
  const auto F = static_cast<std::size_t>(T);
  FrameData data;
  data.frame_start = frame_start;
  data.prices.resize(F);
  data.avail.reserve(F);
  data.arrivals.reserve(F);
  for (std::size_t t = 0; t < F; ++t) {
    const std::int64_t slot = frame_start + static_cast<std::int64_t>(t);
    data.prices[t].reserve(N);
    for (std::size_t i = 0; i < N; ++i) {
      data.prices[t].push_back(prices.price(i, slot));
    }
    data.avail.push_back(availability.availability(slot));
    data.arrivals.push_back(arrivals.arrivals(slot));
  }
  return data;
}

LinearProgram build_frame_lp_from_data(const ClusterConfig& config,
                                       const FrameData& data,
                                       const LookaheadParams& params) {
  const std::size_t N = config.num_data_centers();
  const std::size_t J = config.num_job_types();
  const std::size_t K = config.num_server_types();
  const auto F = static_cast<std::size_t>(params.T);

  const std::size_t r_block = N * J * F;
  const std::size_t u_block = N * J * F;
  LinearProgram lp(r_block + u_block + N * K * F);
  auto r_idx = [&](std::size_t t, std::size_t i, std::size_t j) {
    return (t * N + i) * J + j;
  };
  auto u_idx = [&](std::size_t t, std::size_t i, std::size_t j) {
    return r_block + (t * N + i) * J + j;
  };
  auto w_idx = [&](std::size_t t, std::size_t i, std::size_t k) {
    return r_block + u_block + (t * N + i) * K + k;
  };

  // Objective: total energy over the frame (beta = 0 => g = e).
  for (std::size_t t = 0; t < F; ++t) {
    for (std::size_t i = 0; i < N; ++i) {
      double phi = data.prices[t][i];
      for (std::size_t k = 0; k < K; ++k) {
        const auto& st = config.server_types[k];
        lp.set_objective(w_idx(t, i, k), phi * st.busy_power / st.speed);
      }
    }
  }

  // (16): all frame arrivals must be routed within the frame.
  for (std::size_t j = 0; j < J; ++j) {
    double total_arrivals = 0.0;
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t t = 0; t < F; ++t) {
      total_arrivals += static_cast<double>(data.arrivals[t][j]);
      for (DataCenterId i : config.job_types[j].eligible_dcs) {
        terms.emplace_back(r_idx(t, i, j), 1.0);
      }
    }
    lp.add_constraint_sparse(terms, ConstraintSense::kGreaterEqual, total_arrivals);
  }

  // (17): everything routed within the frame is processed within the frame.
  for (std::size_t j = 0; j < J; ++j) {
    const double d = config.job_types[j].work;
    for (DataCenterId i : config.job_types[j].eligible_dcs) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t t = 0; t < F; ++t) {
        terms.emplace_back(u_idx(t, i, j), 1.0 / d);  // h = u/d
        terms.emplace_back(r_idx(t, i, j), -1.0);
      }
      lp.add_constraint_sparse(terms, ConstraintSense::kGreaterEqual, 0.0);
    }
  }

  // (18) + per-variable bounds, per slot.
  for (std::size_t t = 0; t < F; ++t) {
    const auto& avail = data.avail[t];
    for (std::size_t i = 0; i < N; ++i) {
      std::vector<std::pair<std::size_t, double>> balance;
      for (std::size_t j = 0; j < J; ++j) {
        balance.emplace_back(u_idx(t, i, j), 1.0);
        const bool eligible = config.job_types[j].eligible(i);
        lp.add_upper_bound(r_idx(t, i, j), eligible ? params.r_max : 0.0);
        lp.add_upper_bound(u_idx(t, i, j),
                           eligible ? params.h_max * config.job_types[j].work : 0.0);
      }
      for (std::size_t k = 0; k < K; ++k) {
        balance.emplace_back(w_idx(t, i, k), -1.0);
        lp.add_upper_bound(w_idx(t, i, k), static_cast<double>(avail(i, k)) *
                                               config.server_types[k].speed);
      }
      lp.add_constraint_sparse(balance, ConstraintSense::kLessEqual, 0.0);
    }
  }
  return lp;
}

}  // namespace

LinearProgram build_frame_lp(const ClusterConfig& config, const PriceModel& prices,
                             const AvailabilityModel& availability,
                             const ArrivalProcess& arrivals, std::int64_t frame_start,
                             const LookaheadParams& params) {
  GREFAR_CHECK(params.T > 0);
  return build_frame_lp_from_data(
      config, gather_frame(config, prices, availability, arrivals, frame_start,
                           params.T),
      params);
}

LookaheadResult solve_lookahead(const ClusterConfig& config, const PriceModel& prices,
                                const AvailabilityModel& availability,
                                const ArrivalProcess& arrivals,
                                const LookaheadParams& params) {
  config.validate();
  GREFAR_CHECK(params.T > 0 && params.R > 0);
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the lookahead frame LP models linear billing only");
  const auto R = static_cast<std::size_t>(params.R);
  // Serial prefetch of every frame's model data (see FrameData), then the
  // independent frame LPs fan out over the pool. Each worker performs the
  // exact same floating-point work regardless of job count and results land
  // in per-frame slots, so the reduction is bit-identical at any --jobs.
  std::vector<FrameData> frames;
  frames.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    frames.push_back(gather_frame(config, prices, availability, arrivals,
                                  static_cast<std::int64_t>(r) * params.T,
                                  params.T));
  }
  LookaheadResult result;
  result.frame_costs.assign(R, 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    tasks.push_back([&config, &params, &frames, &result, r] {
      LinearProgram lp = build_frame_lp_from_data(config, frames[r], params);
      LpSolution sol = solve_lp(lp);
      GREFAR_CHECK_MSG(sol.optimal(), "frame " << r << " LP " << to_string(sol.status)
                                               << " — slackness (20)-(22) violated?");
      result.frame_costs[r] = sol.objective / static_cast<double>(params.T);
    });
  }
  SimRunner(params.jobs).run(tasks);
  double sum = 0.0;
  for (double c : result.frame_costs) sum += c;
  result.average_cost = sum / static_cast<double>(params.R);
  return result;
}

namespace {

/// Objective pieces for the fairness-aware frame problem, in the variable
/// layout of build_frame_lp. Reads only pre-materialized frame data (total
/// slot resource), so it is safe to evaluate on a worker thread.
struct FrameObjective {
  const ClusterConfig* config;
  std::size_t T;
  double beta;
  std::vector<double> energy_cost;  // linear coefficients (w block only)
  std::vector<double> resource;     // per-slot total resource, [t]
  FairnessFunction fairness;

  std::size_t u_offset() const {
    return config->num_data_centers() * config->num_job_types() * T;
  }
  std::size_t u_index(std::size_t t, std::size_t i, std::size_t j) const {
    return u_offset() +
           (t * config->num_data_centers() + i) * config->num_job_types() + j;
  }

  /// Per-account work in slot t.
  std::vector<double> account_work(const std::vector<double>& x, std::size_t t) const {
    std::vector<double> r_m(config->num_accounts(), 0.0);
    for (std::size_t i = 0; i < config->num_data_centers(); ++i) {
      for (std::size_t j = 0; j < config->num_job_types(); ++j) {
        r_m[config->job_types[j].account] += x[u_index(t, i, j)];
      }
    }
    return r_m;
  }

  /// Frame total cost sum_t [e(t) - beta f(t)] (not divided by T).
  double value(const std::vector<double>& x) const {
    double total = 0.0;
    for (std::size_t v = 0; v < x.size(); ++v) total += energy_cost[v] * x[v];
    if (beta > 0.0) {
      for (std::size_t t = 0; t < T; ++t) {
        if (resource[t] <= 0.0) continue;
        total -= beta * fairness.score(account_work(x, t), resource[t]);
      }
    }
    return total;
  }

  std::vector<double> gradient(const std::vector<double>& x) const {
    std::vector<double> g = energy_cost;
    if (beta > 0.0) {
      for (std::size_t t = 0; t < T; ++t) {
        if (resource[t] <= 0.0) continue;
        auto r_m = account_work(x, t);
        for (std::size_t i = 0; i < config->num_data_centers(); ++i) {
          for (std::size_t j = 0; j < config->num_job_types(); ++j) {
            AccountId m = config->job_types[j].account;
            g[u_index(t, i, j)] -=
                beta * fairness.score_gradient(r_m[m], m, resource[t]);
          }
        }
      }
    }
    return g;
  }
};

}  // namespace

LookaheadResult solve_lookahead_fair(const ClusterConfig& config,
                                     const PriceModel& prices,
                                     const AvailabilityModel& availability,
                                     const ArrivalProcess& arrivals,
                                     const FairLookaheadParams& params) {
  config.validate();
  GREFAR_CHECK(params.base.T > 0 && params.base.R > 0);
  GREFAR_CHECK(params.beta >= 0.0);
  GREFAR_CHECK(params.fw_iterations >= 1);
  GREFAR_CHECK_MSG(!config.has_nonlinear_billing(),
                   "the lookahead frame LP models linear billing only");

  const auto R = static_cast<std::size_t>(params.base.R);
  const auto F = static_cast<std::size_t>(params.base.T);
  std::vector<FrameData> frames;
  frames.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    frames.push_back(gather_frame(config, prices, availability, arrivals,
                                  static_cast<std::int64_t>(r) * params.base.T,
                                  params.base.T));
  }

  LookaheadResult result;
  result.frame_costs.assign(R, 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    tasks.push_back([&config, &params, &frames, &result, F, r] {
      const FrameData& data = frames[r];
      LinearProgram lp = build_frame_lp_from_data(config, data, params.base);

      FrameObjective objective{&config,
                               F,
                               params.beta,
                               lp.objective(),  // energy coefficients
                               std::vector<double>(F, 0.0),
                               FairnessFunction(config.gammas())};
      for (std::size_t t = 0; t < F; ++t) {
        double total = 0.0;
        for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
          for (std::size_t k = 0; k < config.num_server_types(); ++k) {
            total += static_cast<double>(data.avail[t](i, k)) *
                     config.server_types[k].speed;
          }
        }
        objective.resource[t] = total;
      }

      // Start from the energy-only optimum (also a feasibility certificate).
      LpSolution start = solve_lp(lp);
      GREFAR_CHECK_MSG(start.optimal(), "frame " << r << " LP "
                                                 << to_string(start.status)
                                                 << " — slackness violated?");
      std::vector<double> x = std::move(start.x);
      SimplexBasis basis = std::move(start.basis);

      // Frank-Wolfe with the frame LP as the LMO. The polytope is fixed
      // within the frame: only the objective changes per iteration, so the
      // previous vertex's basis stays primal feasible and every LMO call
      // re-enters phase 2 warm instead of re-solving from scratch.
      for (int iter = 0; iter < params.fw_iterations; ++iter) {
        auto grad = objective.gradient(x);
        for (std::size_t v = 0; v < grad.size(); ++v) lp.set_objective(v, grad[v]);
        LpSolution vertex = solve_lp(lp, basis);
        GREFAR_CHECK_MSG(vertex.optimal(), "frame LMO " << to_string(vertex.status));
        basis = std::move(vertex.basis);

        double gap = 0.0;
        for (std::size_t v = 0; v < grad.size(); ++v) {
          gap += grad[v] * (x[v] - vertex.x[v]);
        }
        if (gap <= 1e-7) break;

        // Ternary line search along the segment (objective convex).
        auto value_at = [&](double step) {
          std::vector<double> trial(x.size());
          for (std::size_t v = 0; v < x.size(); ++v) {
            trial[v] = x[v] + step * (vertex.x[v] - x[v]);
          }
          return objective.value(trial);
        };
        double lo = 0.0, hi = 1.0;
        for (int ls = 0; ls < 40; ++ls) {
          double m1 = lo + (hi - lo) / 3.0;
          double m2 = hi - (hi - lo) / 3.0;
          if (value_at(m1) <= value_at(m2)) hi = m2;
          else lo = m1;
        }
        double step = 0.5 * (lo + hi);
        if (step < 1e-12) step = 2.0 / (iter + 2.0);
        for (std::size_t v = 0; v < x.size(); ++v) {
          x[v] += step * (vertex.x[v] - x[v]);
        }
      }
      result.frame_costs[r] = objective.value(x) / static_cast<double>(F);
    });
  }
  SimRunner(params.base.jobs).run(tasks);
  double sum = 0.0;
  for (double c : result.frame_costs) sum += c;
  result.average_cost = sum / static_cast<double>(params.base.R);
  return result;
}

}  // namespace grefar
