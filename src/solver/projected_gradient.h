// Projected (sub)gradient descent over a CappedBoxPolytope.
//
// Uses a backtracking line search with projection-arc steps and a
// best-iterate memory (required because the energy term is only piecewise
// smooth). Adequate for the small per-slot problems GreFar solves every
// scheduling quantum.
#pragma once

#include <vector>

#include "solver/capped_box.h"
#include "solver/objective.h"
#include "util/annotations.h"

namespace grefar {

struct PgdOptions {
  int max_iterations = 400;
  double initial_step = 1.0;
  double backtrack_factor = 0.5;
  int max_backtracks = 30;
  double tolerance = 1e-8;  // stop when the iterate moves less than this
};

struct PgdResult {
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `objective` over `polytope`, starting from the projection of
/// `x0` (pass empty x0 to start from the origin projection).
GREFAR_DETERMINISTIC
PgdResult minimize_projected_gradient(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0 = {},
                                      const PgdOptions& options = {});

}  // namespace grefar
