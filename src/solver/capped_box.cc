#include "solver/capped_box.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace grefar {

CappedBoxPolytope::CappedBoxPolytope(std::vector<double> ub)
    : ub_(std::move(ub)), grouped_(ub_.size(), false) {
  for (double u : ub_) GREFAR_CHECK_MSG(u >= 0.0, "upper bound must be >= 0");
}

void CappedBoxPolytope::add_group(std::vector<std::size_t> indices, double cap) {
  GREFAR_CHECK_MSG(cap >= 0.0, "group cap must be >= 0");
  for (std::size_t j : indices) {
    GREFAR_CHECK(j < ub_.size());
    GREFAR_CHECK_MSG(!grouped_[j], "variable " << j << " already in a group");
    grouped_[j] = true;
  }
  groups_.push_back({std::move(indices), cap});
}

void CappedBoxPolytope::set_upper_bound(std::size_t j, double ub) {
  GREFAR_CHECK(j < ub_.size());
  GREFAR_CHECK_MSG(ub >= 0.0, "upper bound must be >= 0");
  ub_[j] = ub;
}

void CappedBoxPolytope::set_group_cap(std::size_t g, double cap) {
  GREFAR_CHECK(g < groups_.size());
  GREFAR_CHECK_MSG(cap >= 0.0, "group cap must be >= 0");
  groups_[g].cap = cap;
}

bool CappedBoxPolytope::contains(const std::vector<double>& x, double tol) const {
  GREFAR_CHECK(x.size() == ub_.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol || x[j] > ub_[j] + tol) return false;
  }
  for (const auto& g : groups_) {
    double sum = 0.0;
    for (std::size_t j : g.indices) sum += x[j];
    if (sum > g.cap + tol) return false;
  }
  return true;
}

void CappedBoxPolytope::project_group(const Group& g, std::vector<double>& x) const {
  // KKT: the projection is clamp(y - lambda, 0, ub) for the smallest
  // lambda >= 0 satisfying the cap. Keep the *original* y values for the
  // bisection — clamping first would change the solution for y_j > ub_j.
  std::vector<double>& y = group_y_;
  y.clear();
  y.reserve(g.indices.size());
  for (std::size_t j : g.indices) y.push_back(x[j]);

  auto sum_at = [&](double lambda) {
    double s = 0.0;
    for (std::size_t k = 0; k < y.size(); ++k) {
      s += std::clamp(y[k] - lambda, 0.0, ub_[g.indices[k]]);
    }
    return s;
  };
  if (sum_at(0.0) <= g.cap) {
    for (std::size_t k = 0; k < y.size(); ++k) {
      x[g.indices[k]] = std::clamp(y[k], 0.0, ub_[g.indices[k]]);
    }
    return;
  }
  // sum_at is non-increasing in lambda and reaches 0 at max(y); bisect.
  double lo = 0.0;
  double hi = 0.0;
  for (double v : y) hi = std::max(hi, v);
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > g.cap) lo = mid;
    else hi = mid;
  }
  double lambda = 0.5 * (lo + hi);
  for (std::size_t k = 0; k < y.size(); ++k) {
    x[g.indices[k]] = std::clamp(y[k] - lambda, 0.0, ub_[g.indices[k]]);
  }
}

std::vector<double> CappedBoxPolytope::project(const std::vector<double>& y) const {
  std::vector<double> x;
  project_into(y, x);
  return x;
}

void CappedBoxPolytope::project_into(const std::vector<double>& y,
                                     std::vector<double>& out) const {
  GREFAR_CHECK(y.size() == ub_.size());
  GREFAR_CHECK_MSG(&y != &out, "project_into aliasing y and out");
  out.assign(y.begin(), y.end());
  // Box-only variables.
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (!grouped_[j]) out[j] = std::clamp(out[j], 0.0, ub_[j]);
  }
  for (const auto& g : groups_) project_group(g, out);
}

std::vector<double> CappedBoxPolytope::minimize_linear(const std::vector<double>& c) const {
  std::vector<double> x;
  minimize_linear_into(c, x);
  return x;
}

void CappedBoxPolytope::minimize_linear_into(const std::vector<double>& c,
                                             std::vector<double>& out) const {
  GREFAR_CHECK(c.size() == ub_.size());
  out.assign(ub_.size(), 0.0);
  // Box-only variables: saturate those with negative cost.
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (!grouped_[j] && c[j] < 0.0) out[j] = ub_[j];
  }
  for (const auto& g : groups_) {
    // Fractional greedy: fill by ascending cost while cost < 0 and cap remains.
    std::vector<std::size_t>& order = lmo_order_;
    order.assign(g.indices.begin(), g.indices.end());
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return c[a] < c[b]; });
    double remaining = g.cap;
    for (std::size_t j : order) {
      if (c[j] >= 0.0 || remaining <= 0.0) break;
      double take = std::min(ub_[j], remaining);
      out[j] = take;
      remaining -= take;
    }
  }
}

}  // namespace grefar
