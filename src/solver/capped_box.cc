#include "solver/capped_box.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace grefar {

CappedBoxPolytope::CappedBoxPolytope(std::vector<double> ub)
    : ub_(std::move(ub)), grouped_(ub_.size(), false) {
  for (double u : ub_) GREFAR_CHECK_MSG(u >= 0.0, "upper bound must be >= 0");
}

void CappedBoxPolytope::add_group(std::vector<std::size_t> indices, double cap) {
  GREFAR_CHECK_MSG(cap >= 0.0, "group cap must be >= 0");
  for (std::size_t j : indices) {
    GREFAR_CHECK(j < ub_.size());
    GREFAR_CHECK_MSG(!grouped_[j], "variable " << j << " already in a group");
    grouped_[j] = true;
  }
  Group g;
  g.cap = cap;
  g.contiguous = !indices.empty();
  for (std::size_t k = 0; k + 1 < indices.size() && g.contiguous; ++k) {
    g.contiguous = indices[k + 1] == indices[k] + 1;
  }
  if (g.contiguous) {
    g.begin = indices.front();
    g.end = indices.back() + 1;
  }
  g.indices = std::move(indices);
  groups_.push_back(std::move(g));
}

void CappedBoxPolytope::rebuild_contiguous(std::size_t n_groups,
                                           std::size_t group_size) {
  const std::size_t n = n_groups * group_size;
  ub_.assign(n, 0.0);
  grouped_.assign(n, true);
  groups_.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    Group& grp = groups_[g];
    grp.indices.clear();  // contiguous oracles never touch the index list
    grp.cap = 0.0;
    grp.begin = g * group_size;
    grp.end = (g + 1) * group_size;
    grp.contiguous = true;
  }
}

void CappedBoxPolytope::set_upper_bound(std::size_t j, double ub) {
  GREFAR_CHECK(j < ub_.size());
  GREFAR_CHECK_MSG(ub >= 0.0, "upper bound must be >= 0");
  ub_[j] = ub;
}

void CappedBoxPolytope::set_group_cap(std::size_t g, double cap) {
  GREFAR_CHECK(g < groups_.size());
  GREFAR_CHECK_MSG(cap >= 0.0, "group cap must be >= 0");
  groups_[g].cap = cap;
}

bool CappedBoxPolytope::contains(const std::vector<double>& x, double tol) const {
  GREFAR_CHECK(x.size() == ub_.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol || x[j] > ub_[j] + tol) return false;
  }
  for (const auto& g : groups_) {
    double sum = 0.0;
    if (g.contiguous) {
      for (std::size_t j = g.begin; j < g.end; ++j) sum += x[j];
    } else {
      for (std::size_t j : g.indices) sum += x[j];
    }
    if (sum > g.cap + tol) return false;
  }
  return true;
}

void CappedBoxPolytope::project_group(const Group& g, std::vector<double>& x) const {
  // KKT: the projection is clamp(y - lambda, 0, ub) for the smallest
  // lambda >= 0 satisfying the cap. The group's x entries still hold the
  // *original* y values (project_into clamps only ungrouped variables), and
  // every pass below reads before it writes, so the bisection can run
  // straight off x — no staging copy.
  //
  // Contiguous fast path: stride-1 loops over raw pointers, branch-free
  // clamps — these are the inner loops of every PGD iteration at N*J
  // variables, and the compiler vectorizes them only without the indices
  // indirection.
  if (g.contiguous) {
    double* xs = x.data() + g.begin;
    const double* ub = ub_.data() + g.begin;
    const std::size_t count = g.end - g.begin;
    double sum0 = 0.0;
    double hi = 0.0;
    for (std::size_t k = 0; k < count; ++k) {
      sum0 += std::clamp(xs[k], 0.0, ub[k]);
      hi = std::max(hi, xs[k]);
    }
    if (sum0 <= g.cap) {
      for (std::size_t k = 0; k < count; ++k) xs[k] = std::clamp(xs[k], 0.0, ub[k]);
      return;
    }
    // sum(lambda) is non-increasing and reaches 0 at max(y); bisect, exiting
    // early once the bracket is resolved to ~1e-12 relative (the historical
    // fixed 100 rounds kept bisecting long past double resolution).
    double lo = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      double s = 0.0;
      for (std::size_t k = 0; k < count; ++k) s += std::clamp(xs[k] - mid, 0.0, ub[k]);
      if (s > g.cap) lo = mid;
      else hi = mid;
      if (hi - lo <= 1e-12 * (1.0 + hi)) break;
    }
    const double lambda = 0.5 * (lo + hi);
    for (std::size_t k = 0; k < count; ++k) {
      xs[k] = std::clamp(xs[k] - lambda, 0.0, ub[k]);
    }
    return;
  }

  auto sum_at = [&](double lambda) {
    double s = 0.0;
    for (std::size_t j : g.indices) {
      s += std::clamp(x[j] - lambda, 0.0, ub_[j]);
    }
    return s;
  };
  if (sum_at(0.0) <= g.cap) {
    for (std::size_t j : g.indices) x[j] = std::clamp(x[j], 0.0, ub_[j]);
    return;
  }
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t j : g.indices) hi = std::max(hi, x[j]);
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > g.cap) lo = mid;
    else hi = mid;
    if (hi - lo <= 1e-12 * (1.0 + hi)) break;
  }
  double lambda = 0.5 * (lo + hi);
  for (std::size_t j : g.indices) x[j] = std::clamp(x[j] - lambda, 0.0, ub_[j]);
}

std::vector<double> CappedBoxPolytope::project(const std::vector<double>& y) const {
  std::vector<double> x;
  project_into(y, x);
  return x;
}

void CappedBoxPolytope::project_into(const std::vector<double>& y,
                                     std::vector<double>& out) const {
  GREFAR_CHECK(y.size() == ub_.size());
  GREFAR_CHECK_MSG(&y != &out, "project_into aliasing y and out");
  out.assign(y.begin(), y.end());
  // Box-only variables.
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (!grouped_[j]) out[j] = std::clamp(out[j], 0.0, ub_[j]);
  }
  for (const auto& g : groups_) project_group(g, out);
}

std::vector<double> CappedBoxPolytope::minimize_linear(const std::vector<double>& c) const {
  std::vector<double> x;
  minimize_linear_into(c, x);
  return x;
}

void CappedBoxPolytope::minimize_linear_into(const std::vector<double>& c,
                                             std::vector<double>& out) const {
  GREFAR_CHECK(c.size() == ub_.size());
  out.assign(ub_.size(), 0.0);
  // Box-only variables: saturate those with negative cost.
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (!grouped_[j] && c[j] < 0.0) out[j] = ub_[j];
  }
  for (const auto& g : groups_) {
    // Fractional greedy: fill by ascending cost while cost < 0 and cap
    // remains. Only negative-cost variables can enter the solution, so
    // first scan for them (stride-1 on the contiguous fast path) — and if
    // their bounds cannot even reach the cap, the fill order is irrelevant
    // and the sort is skipped entirely.
    std::vector<std::size_t>& order = lmo_order_;
    order.clear();
    double neg_ub = 0.0;
    // Amortized: lmo_order_ is clear()+refilled, high-water capacity reused.
    if (g.contiguous) {
      for (std::size_t j = g.begin; j < g.end; ++j) {
        if (c[j] < 0.0) {
          order.push_back(j);  // NOLINT(grefar-hot-path-alloc)
          neg_ub += ub_[j];
        }
      }
    } else {
      for (std::size_t j : g.indices) {
        if (c[j] < 0.0) {
          order.push_back(j);  // NOLINT(grefar-hot-path-alloc)
          neg_ub += ub_[j];
        }
      }
    }
    if (neg_ub <= g.cap) {
      for (std::size_t j : order) out[j] = ub_[j];
      continue;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return c[a] < c[b]; });
    double remaining = g.cap;
    for (std::size_t j : order) {
      if (remaining <= 0.0) break;
      double take = std::min(ub_[j], remaining);
      out[j] = take;
      remaining -= take;
    }
  }
}

}  // namespace grefar
