// Brute-force grid minimizer over a CappedBoxPolytope. Test-only oracle:
// exhaustively evaluates a regular grid (feasible points only) to
// cross-check the greedy / Frank-Wolfe / PGD solvers on small instances.
#pragma once

#include <functional>
#include <vector>

#include "solver/capped_box.h"

namespace grefar {

struct BruteForceResult {
  std::vector<double> x;
  double objective = 0.0;
  std::size_t evaluated = 0;
};

/// Minimizes `f` over grid points of the polytope with `points_per_dim`
/// samples per axis (including both endpoints of each variable's range).
/// Intended for dim <= ~6. Infinite upper bounds must not appear; group
/// caps bound the effective range instead.
BruteForceResult minimize_brute_force(
    const std::function<double(const std::vector<double>&)>& f,
    const CappedBoxPolytope& polytope, int points_per_dim);

}  // namespace grefar
