// ConvexObjective: interface consumed by the first-order solvers.
//
// The per-slot GreFar objective (energy + queue terms + quadratic fairness
// penalty) implements this; it must be convex and subdifferentiable on the
// feasible set (the energy term is piecewise-linear, so `gradient` may return
// any subgradient at kinks).
#pragma once

#include <vector>

namespace grefar {

class ConvexObjective {
 public:
  virtual ~ConvexObjective() = default;

  /// Objective value at x.
  virtual double value(const std::vector<double>& x) const = 0;

  /// Writes a (sub)gradient at x into `out` (resized by the caller).
  virtual void gradient(const std::vector<double>& x, std::vector<double>& out) const = 0;
};

}  // namespace grefar
