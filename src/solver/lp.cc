#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void LinearProgram::set_objective(std::size_t j, double coeff) {
  GREFAR_CHECK(j < objective_.size());
  objective_[j] = coeff;
}

void LinearProgram::add_constraint(const std::vector<double>& coeffs,
                                   ConstraintSense sense, double rhs) {
  GREFAR_CHECK_MSG(coeffs.size() == num_vars(),
                   "constraint has " << coeffs.size() << " coeffs, expected "
                                     << num_vars());
  LinearConstraint c;
  c.sense = sense;
  c.rhs = rhs;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] != 0.0) c.terms.emplace_back(j, coeffs[j]);
  }
  constraints_.push_back(std::move(c));
}

void LinearProgram::add_constraint_sparse(
    const std::vector<std::pair<std::size_t, double>>& terms, ConstraintSense sense,
    double rhs) {
  for (const auto& [j, c] : terms) {
    GREFAR_CHECK(j < num_vars());
    (void)c;
  }
  constraints_.push_back({terms, sense, rhs});
}

void LinearProgram::add_upper_bound(std::size_t j, double ub) {
  GREFAR_CHECK(j < num_vars());
  upper_[j] = std::min(upper_[j], ub);
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// Bounded-variable revised simplex.
//
// Column space: [0, n_struct) structural variables, [n_struct, n_cols) one
// slack (+1) or surplus (-1) per inequality row, [n_cols, n_cols + m) one
// artificial unit column per row (only the ones a phase-1 basis needs are
// ever activated; index n_cols + r doubles as the "row r is redundant"
// sentinel in an exported basis). Every column has lower bound 0; upper
// bounds are per-column (+inf for slacks, 0 for dormant artificials).
//
// The basis inverse is kept dense (m x m, product-form pivot updates with
// periodic refactorization); columns are priced against the sparse matrix.
// ---------------------------------------------------------------------------
class RevisedSimplex {
 public:
  RevisedSimplex(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options),
        m_(lp.num_constraints()),
        n_struct_(lp.num_vars()),
        objective_(lp.objective()) {
    // Normalize rhs >= 0 by negating rows (flips <= / >=), then lay out the
    // slack/surplus columns and the structural columns in CSC form. The CSC
    // is two flat arrays (count + prefix-sum + fill), not per-column
    // vectors: the solver is rebuilt for every warm-started LMO/MPC call,
    // so construction must not allocate per column.
    col_ptr_.assign(n_struct_ + 1, 0);
    for (const auto& c : lp.constraints()) {
      for (const auto& [j, a] : c.terms) {
        if (a != 0.0) ++col_ptr_[j + 1];
      }
    }
    for (std::size_t j = 0; j < n_struct_; ++j) col_ptr_[j + 1] += col_ptr_[j];
    col_entries_.resize(col_ptr_[n_struct_]);
    std::vector<std::size_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
    b_.assign(m_, 0.0);
    row_sense_.assign(m_, ConstraintSense::kEqual);
    std::size_t num_slack = 0;
    for (const auto& c : lp.constraints()) {
      if (c.sense != ConstraintSense::kEqual) ++num_slack;
    }
    n_cols_ = n_struct_ + num_slack;
    n_all_ = n_cols_ + m_;
    slack_row_.reserve(num_slack);
    slack_sign_.reserve(num_slack);
    for (std::size_t i = 0; i < m_; ++i) {
      const auto& c = lp.constraints()[i];
      const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      b_[i] = sign * c.rhs;
      ConstraintSense sense = c.sense;
      if (sign < 0.0) {
        if (sense == ConstraintSense::kLessEqual) {
          sense = ConstraintSense::kGreaterEqual;
        } else if (sense == ConstraintSense::kGreaterEqual) {
          sense = ConstraintSense::kLessEqual;
        }
      }
      row_sense_[i] = sense;
      for (const auto& [j, a] : c.terms) {
        if (a != 0.0) col_entries_[cursor[j]++] = {i, sign * a};
      }
      if (sense != ConstraintSense::kEqual) {
        slack_row_.push_back(i);
        slack_sign_.push_back(sense == ConstraintSense::kLessEqual ? 1.0 : -1.0);
      }
    }

    ub_.assign(n_all_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) ub_[j] = lp.upper_bounds()[j];
    for (std::size_t s = 0; s < num_slack; ++s) ub_[n_struct_ + s] = kInf;
    // Artificials stay at ub 0 until phase 1 activates them.

    cost_.assign(n_all_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost_[j] = objective_[j];

    value_.assign(n_all_, 0.0);
    at_upper_.assign(n_all_, 0);
    in_basis_.assign(n_all_, 0);
    basis_.assign(m_, SIZE_MAX);
    binv_.assign(m_ * m_, 0.0);
    xb_.assign(m_, 0.0);
    y_.assign(m_, 0.0);
    alpha_.assign(m_, 0.0);
    rhs_work_.assign(m_, 0.0);
  }

  LpSolution solve_cold() {
    LpSolution solution;
    if (bounds_infeasible()) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Initial basis: slack for normalized <= rows, artificial otherwise.
    // Both are +1 unit columns, so B = I and x_B = b >= 0 directly.
    bool has_artificials = false;
    {
      std::size_t s = 0;
      for (std::size_t i = 0; i < m_; ++i) {
        std::size_t col;
        if (row_sense_[i] == ConstraintSense::kLessEqual) {
          col = n_struct_ + s;
        } else {
          col = n_cols_ + i;
          ub_[col] = kInf;  // activate for phase 1
          has_artificials = true;
        }
        if (row_sense_[i] != ConstraintSense::kEqual) ++s;
        basis_[i] = col;
        in_basis_[col] = 1;
        binv_[i * m_ + i] = 1.0;
        xb_[i] = b_[i];
      }
    }

    if (has_artificials) {
      std::vector<double> phase1_cost(n_all_, 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        if (row_sense_[i] != ConstraintSense::kLessEqual) {
          phase1_cost[n_cols_ + i] = 1.0;
        }
      }
      LpStatus status = iterate(phase1_cost, &solution.iterations);
      if (status != LpStatus::kOptimal) {
        // Phase 1 is bounded below by 0; anything but optimal is an
        // iteration/numerics failure.
        solution.status = LpStatus::kIterationLimit;
        return solution;
      }
      double infeas = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        if (basis_[i] >= n_cols_) infeas += std::max(0.0, xb_[i]);
      }
      if (infeas > 1e-7) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      drive_artificials_out();
      for (std::size_t i = 0; i < m_; ++i) {
        ub_[n_cols_ + i] = 0.0;  // pin every artificial for phase 2
        if (basis_[i] >= n_cols_) xb_[i] = 0.0;
      }
    }
    finish_phase2(&solution);
    return solution;
  }

  /// Re-enters phase 2 from an exported basis. Returns false (leaving `out`
  /// untouched) when the basis does not fit this LP's data — wrong shape,
  /// duplicate columns, singular, or primal infeasible under the current
  /// rhs/bounds — in which case the caller falls back to a cold solve.
  bool solve_warm(const SimplexBasis& warm, LpSolution* out) {
    if (bounds_infeasible()) return false;
    if (warm.basic.size() != m_ || warm.at_upper.size() != n_cols_) return false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = warm.basic[i];
      if (j >= n_all_ || in_basis_[j]) return false;
      basis_[i] = j;
      in_basis_[j] = 1;
    }
    for (std::size_t j = 0; j < n_cols_; ++j) {
      if (!in_basis_[j] && warm.at_upper[j] != 0 && std::isfinite(ub_[j])) {
        at_upper_[j] = 1;
        value_[j] = ub_[j];
      }
    }
    if (!factorize()) return false;
    compute_basic_values();
    const double ftol = feasibility_tol();
    for (std::size_t i = 0; i < m_; ++i) {
      const double ub = ub_[basis_[i]];
      if (xb_[i] < -ftol || xb_[i] > ub + ftol) return false;
    }
    for (std::size_t i = 0; i < m_; ++i) {
      xb_[i] = std::min(std::max(xb_[i], 0.0), ub_[basis_[i]]);
    }
    finish_phase2(out);
    return true;
  }

 private:
  static constexpr int kRefactorInterval = 64;
  static constexpr int kStallLimit = 100;       // degenerate steps before Bland
  static constexpr double kDegenTol = 1e-10;    // step counts as progress above
  static constexpr double kTieTol = 1e-9;       // ratio-test tie window

  bool bounds_infeasible() const {
    for (std::size_t j = 0; j < n_struct_; ++j) {
      if (ub_[j] < 0.0) return true;  // x_j <= ub < 0 contradicts x_j >= 0
    }
    return false;
  }

  double feasibility_tol() const {
    double scale = 1.0;
    for (double v : b_) scale = std::max(scale, std::abs(v));
    return 1e-7 * scale;
  }

  /// Applies `f(row, coeff)` to every entry of column `j` (duplicates in a
  /// sparse row surface as repeated entries; all consumers accumulate).
  template <typename F>
  void for_col(std::size_t j, F&& f) const {
    if (j < n_struct_) {
      for (std::size_t e = col_ptr_[j]; e < col_ptr_[j + 1]; ++e) {
        f(col_entries_[e].first, col_entries_[e].second);
      }
    } else if (j < n_cols_) {
      f(slack_row_[j - n_struct_], slack_sign_[j - n_struct_]);
    } else {
      f(j - n_cols_, 1.0);
    }
  }

  /// Rebuilds binv_ from the current basis by Gauss-Jordan with partial
  /// pivoting. Returns false on a (numerically) singular basis.
  bool factorize() {
    ++total_refactors_;
    factor_work_.assign(m_ * m_, 0.0);
    double* B = factor_work_.data();
    double* inv = binv_.data();
    for (std::size_t p = 0; p < m_; ++p) {
      for_col(basis_[p], [&](std::size_t r, double a) { B[r * m_ + p] += a; });
    }
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t k = 0; k < m_; ++k) inv[i * m_ + k] = i == k ? 1.0 : 0.0;
    }
    for (std::size_t col = 0; col < m_; ++col) {
      std::size_t piv_row = col;
      for (std::size_t r = col + 1; r < m_; ++r) {
        if (std::abs(B[r * m_ + col]) > std::abs(B[piv_row * m_ + col])) piv_row = r;
      }
      if (std::abs(B[piv_row * m_ + col]) < 1e-11) return false;
      if (piv_row != col) {
        std::swap_ranges(B + piv_row * m_, B + (piv_row + 1) * m_, B + col * m_);
        std::swap_ranges(inv + piv_row * m_, inv + (piv_row + 1) * m_,
                         inv + col * m_);
      }
      double* B_col = B + col * m_;
      double* inv_col = inv + col * m_;
      const double scale = 1.0 / B_col[col];
      for (std::size_t k = 0; k < m_; ++k) {
        B_col[k] *= scale;
        inv_col[k] *= scale;
      }
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = B[r * m_ + col];
        if (f == 0.0) continue;
        double* B_r = B + r * m_;
        double* inv_r = inv + r * m_;
        for (std::size_t k = 0; k < m_; ++k) {
          B_r[k] -= f * B_col[k];
          inv_r[k] -= f * inv_col[k];
        }
      }
    }
    pivots_since_refactor_ = 0;
    return true;
  }

  /// x_B = Binv (b - N x_N) for the current nonbasic resting values.
  void compute_basic_values() {
    rhs_work_ = b_;
    for (std::size_t j = 0; j < n_all_; ++j) {
      if (in_basis_[j] || value_[j] == 0.0) continue;
      const double v = value_[j];
      for_col(j, [&](std::size_t r, double a) { rhs_work_[r] -= a * v; });
    }
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      const double* row = binv_.data() + i * m_;
      for (std::size_t k = 0; k < m_; ++k) v += row[k] * rhs_work_[k];
      xb_[i] = v;
    }
  }

  /// Product-form basis-inverse update: pivot on alpha_[row].
  void update_binv(std::size_t row) {
    double* prow = binv_.data() + row * m_;
    const double inv_piv = 1.0 / alpha_[row];
    for (std::size_t k = 0; k < m_; ++k) prow[k] *= inv_piv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = alpha_[i];
      if (f == 0.0) continue;
      double* irow = binv_.data() + i * m_;
      for (std::size_t k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
    ++pivots_since_refactor_;
    ++total_pivots_;
  }

  /// One simplex run on the given cost vector (phase 1 or phase 2).
  /// Dantzig pricing with ascending-index tie-breaks; Bland's rule after a
  /// stall, which guarantees termination on degenerate problems.
  LpStatus iterate(const std::vector<double>& cost, int* iteration_counter) {
    const double eps = options_.eps;
    int stall = 0;
    bool bland = false;
    while (*iteration_counter < options_.max_iterations) {
      ++*iteration_counter;
      if (pivots_since_refactor_ >= kRefactorInterval) {
        if (!factorize()) return LpStatus::kIterationLimit;
        compute_basic_values();
      }
      // BTRAN: y = c_B^T Binv.
      std::fill(y_.begin(), y_.end(), 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        const double cb = cost[basis_[i]];
        if (cb == 0.0) continue;
        const double* row = binv_.data() + i * m_;
        for (std::size_t k = 0; k < m_; ++k) y_[k] += cb * row[k];
      }
      // Pricing: a nonbasic column improves by moving up from its lower
      // bound (reduced cost < 0) or down from its upper bound (> 0).
      std::size_t entering = SIZE_MAX;
      double best = eps;
      for (std::size_t j = 0; j < n_all_; ++j) {
        if (in_basis_[j] || ub_[j] <= 0.0) continue;  // ub 0 = fixed at 0
        double d = cost[j];
        for_col(j, [&](std::size_t r, double a) { d -= y_[r] * a; });
        const double score = at_upper_[j] ? d : -d;
        if (score > (bland ? eps : best)) {
          entering = j;
          if (bland) break;
          best = score;
        }
      }
      if (entering == SIZE_MAX) return LpStatus::kOptimal;
      // FTRAN: alpha = Binv A_entering.
      std::fill(alpha_.begin(), alpha_.end(), 0.0);
      for_col(entering, [&](std::size_t r, double a) {
        for (std::size_t i = 0; i < m_; ++i) alpha_[i] += binv_[i * m_ + r] * a;
      });
      // Generalized ratio test. The entering variable moves by t in
      // direction `dir`; it is blocked by its own opposite bound (a bound
      // flip, no pivot) or by the first basic variable to hit a bound.
      const double dir = at_upper_[entering] ? -1.0 : 1.0;
      double t = std::isfinite(ub_[entering]) ? ub_[entering] : kInf;
      std::size_t leaving_row = SIZE_MAX;  // SIZE_MAX = bound flip
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = dir * alpha_[i];
        double ratio;
        if (a > eps) {
          ratio = xb_[i] > 0.0 ? xb_[i] / a : 0.0;
        } else if (a < -eps) {
          const double ub_b = ub_[basis_[i]];
          if (!std::isfinite(ub_b)) continue;
          const double room = ub_b - xb_[i];
          ratio = room > 0.0 ? room / (-a) : 0.0;
        } else {
          continue;
        }
        if (ratio < t - kTieTol) {
          t = ratio;
          leaving_row = i;
        } else if (ratio <= t + kTieTol && leaving_row != SIZE_MAX) {
          // Tie: Bland needs the smallest variable index for termination;
          // otherwise prefer the larger pivot for stability.
          const bool take = bland
                                ? basis_[i] < basis_[leaving_row]
                                : std::abs(alpha_[i]) >
                                      std::abs(alpha_[leaving_row]) + 1e-12;
          if (take) {
            leaving_row = i;
            if (ratio < t) t = ratio;
          }
        }
      }
      if (!std::isfinite(t)) return LpStatus::kUnbounded;
      if (t > kDegenTol) {
        stall = 0;
        bland = false;
      } else if (++stall > kStallLimit) {
        bland = true;
      }
      if (leaving_row == SIZE_MAX) {
        // Bound flip: the entering variable runs to its other bound.
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= dir * t * alpha_[i];
        at_upper_[entering] ^= 1;
        value_[entering] = at_upper_[entering] ? ub_[entering] : 0.0;
      } else {
        const std::size_t leaving = basis_[leaving_row];
        const bool leaves_at_upper = dir * alpha_[leaving_row] < 0.0;
        const double enter_val = value_[entering] + dir * t;
        for (std::size_t i = 0; i < m_; ++i) {
          if (i != leaving_row) xb_[i] -= dir * t * alpha_[i];
        }
        update_binv(leaving_row);
        xb_[leaving_row] = enter_val;
        basis_[leaving_row] = entering;
        in_basis_[entering] = 1;
        in_basis_[leaving] = 0;
        at_upper_[leaving] = leaves_at_upper ? 1 : 0;
        value_[leaving] = leaves_at_upper ? ub_[leaving] : 0.0;
      }
    }
    return LpStatus::kIterationLimit;
  }

  /// Pivots basic artificials out degenerately where possible; rows whose
  /// reduced row is empty are redundant and keep their artificial (the
  /// exported-basis sentinel for that row).
  void drive_artificials_out() {
    for (std::size_t p = 0; p < m_; ++p) {
      if (basis_[p] < n_cols_) continue;
      const double* brow = binv_.data() + p * m_;
      std::size_t entering = SIZE_MAX;
      for (std::size_t q = 0; q < n_cols_ && entering == SIZE_MAX; ++q) {
        if (in_basis_[q]) continue;
        double v = 0.0;
        for_col(q, [&](std::size_t r, double a) { v += brow[r] * a; });
        if (std::abs(v) > 1e-9) entering = q;
      }
      if (entering == SIZE_MAX) continue;
      std::fill(alpha_.begin(), alpha_.end(), 0.0);
      for_col(entering, [&](std::size_t r, double a) {
        for (std::size_t i = 0; i < m_; ++i) alpha_[i] += binv_[i * m_ + r] * a;
      });
      const std::size_t leaving = basis_[p];
      update_binv(p);
      xb_[p] = value_[entering];  // degenerate pivot: x does not move
      basis_[p] = entering;
      in_basis_[entering] = 1;
      in_basis_[leaving] = 0;
      value_[leaving] = 0.0;
      at_upper_[leaving] = 0;
    }
  }

  void finish_phase2(LpSolution* solution) {
    LpStatus status = iterate(cost_, &solution->iterations);
    solution->status = status;
    if (status != LpStatus::kOptimal) return;
    if (pivots_since_refactor_ > 0 && factorize()) compute_basic_values();
    solution->x.assign(n_struct_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      if (!in_basis_[j]) solution->x[j] = value_[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) {
        double v = xb_[i];
        if (v < 0.0 && v > -1e-7) v = 0.0;
        solution->x[basis_[i]] = v;
      }
    }
    solution->objective = 0.0;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      solution->objective += objective_[j] * solution->x[j];
    }
    solution->basis.basic = basis_;
    solution->basis.at_upper.assign(at_upper_.begin(),
                                    at_upper_.begin() +
                                        static_cast<std::ptrdiff_t>(n_cols_));
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_struct_;
  std::size_t n_cols_ = 0;  // structural + slack/surplus
  std::size_t n_all_ = 0;   // + one artificial slot per row
  std::vector<double> objective_;
  std::vector<std::size_t> col_ptr_;                         // CSC, n_struct_+1
  std::vector<std::pair<std::size_t, double>> col_entries_;  // CSC entries
  std::vector<std::size_t> slack_row_;
  std::vector<double> slack_sign_;
  std::vector<ConstraintSense> row_sense_;  // after rhs normalization
  std::vector<double> b_;
  std::vector<double> ub_;
  std::vector<double> cost_;      // phase-2 cost, padded to n_all_
  std::vector<double> value_;     // nonbasic resting value per column
  std::vector<std::uint8_t> at_upper_;
  std::vector<std::uint8_t> in_basis_;
  std::vector<std::size_t> basis_;
  std::vector<double> binv_;         // dense m x m, row-major
  std::vector<double> factor_work_;  // B scratch for factorize()
  std::vector<double> xb_;
  std::vector<double> y_;
  std::vector<double> alpha_;
  std::vector<double> rhs_work_;
  int pivots_since_refactor_ = 0;

 public:
  // Lifetime totals, flushed to the obs counters once per solve_lp() call.
  std::uint64_t total_pivots_ = 0;
  std::uint64_t total_refactors_ = 0;
};

// ---------------------------------------------------------------------------
// Retained dense tableau simplex (property-test oracle). Works on the
// standard form min c^T x s.t. A x = b, x >= 0, b >= 0 with slack/surplus
// and artificial columns; variable upper bounds are expanded into singleton
// <= rows, reproducing the original engine's formulation exactly.
// ---------------------------------------------------------------------------
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options), n_struct_(lp.num_vars()) {
    // Densify sparse rows and materialize finite bounds as rows.
    std::vector<std::vector<double>> dense;
    std::vector<ConstraintSense> senses;
    std::vector<double> rhs;
    for (const auto& c : lp.constraints()) {
      std::vector<double> row(n_struct_, 0.0);
      for (const auto& [j, a] : c.terms) row[j] += a;
      dense.push_back(std::move(row));
      senses.push_back(c.sense);
      rhs.push_back(c.rhs);
    }
    for (std::size_t j = 0; j < n_struct_; ++j) {
      const double ub = lp.upper_bounds()[j];
      if (!std::isfinite(ub)) continue;
      std::vector<double> row(n_struct_, 0.0);
      row[j] = 1.0;
      dense.push_back(std::move(row));
      senses.push_back(ConstraintSense::kLessEqual);
      rhs.push_back(ub);
    }
    m_ = dense.size();

    std::size_t num_slack = 0;
    for (ConstraintSense s : senses) {
      if (s != ConstraintSense::kEqual) ++num_slack;
    }
    n_total_ = n_struct_ + num_slack;  // artificials appended below
    rows_.assign(m_, std::vector<double>(n_total_, 0.0));
    rhs_.assign(m_, 0.0);
    basis_.assign(m_, SIZE_MAX);

    std::size_t slack_col = n_struct_;
    std::vector<std::size_t> needs_artificial;
    for (std::size_t i = 0; i < m_; ++i) {
      double sign = rhs[i] < 0 ? -1.0 : 1.0;
      for (std::size_t j = 0; j < n_struct_; ++j) rows_[i][j] = sign * dense[i][j];
      rhs_[i] = sign * rhs[i];

      ConstraintSense sense = senses[i];
      if (sign < 0) {
        if (sense == ConstraintSense::kLessEqual) sense = ConstraintSense::kGreaterEqual;
        else if (sense == ConstraintSense::kGreaterEqual) sense = ConstraintSense::kLessEqual;
      }
      switch (sense) {
        case ConstraintSense::kLessEqual:
          rows_[i][slack_col] = 1.0;
          basis_[i] = slack_col;  // slack is a valid basis column
          ++slack_col;
          break;
        case ConstraintSense::kGreaterEqual:
          rows_[i][slack_col] = -1.0;  // surplus
          ++slack_col;
          needs_artificial.push_back(i);
          break;
        case ConstraintSense::kEqual:
          needs_artificial.push_back(i);
          break;
      }
    }
    first_artificial_ = n_total_;
    n_total_ += needs_artificial.size();
    for (auto& row : rows_) row.resize(n_total_, 0.0);
    std::size_t art_col = first_artificial_;
    for (std::size_t i : needs_artificial) {
      rows_[i][art_col] = 1.0;
      basis_[i] = art_col;
      ++art_col;
    }

    cost_.assign(n_total_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost_[j] = lp.objective()[j];
  }

  LpSolution solve() {
    LpSolution solution;
    // Phase 1: minimize the sum of artificials.
    if (first_artificial_ < n_total_) {
      std::vector<double> phase1_cost(n_total_, 0.0);
      for (std::size_t j = first_artificial_; j < n_total_; ++j) phase1_cost[j] = 1.0;
      auto status = run_simplex(phase1_cost, &solution.iterations);
      if (status == LpStatus::kIterationLimit) {
        solution.status = status;
        return solution;
      }
      if (phase1_objective() > 1e-7) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      drive_artificials_out();
    }
    // Phase 2: original objective; artificial columns blocked.
    blocked_from_ = first_artificial_;
    auto status = run_simplex(cost_, &solution.iterations);
    solution.status = status == LpStatus::kOptimal ? LpStatus::kOptimal : status;
    if (solution.status != LpStatus::kOptimal) return solution;

    solution.x.assign(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) solution.x[basis_[i]] = rhs_[i];
    }
    solution.objective = 0.0;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      solution.objective += cost_[j] * solution.x[j];
    }
    return solution;
  }

 private:
  double phase1_objective() const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= first_artificial_) obj += rhs_[i];
    }
    return obj;
  }

  /// After phase 1, pivot any artificial still (degenerately) in the basis
  /// out, or mark its row as redundant.
  void drive_artificials_out() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      std::size_t pivot_col = SIZE_MAX;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > options_.eps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == SIZE_MAX) {
        // Redundant row; the artificial stays basic at value 0.
        continue;
      }
      pivot(i, pivot_col);
    }
  }

  /// Runs the simplex method with Bland's rule on the given cost vector.
  LpStatus run_simplex(const std::vector<double>& cost, int* iteration_counter) {
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      ++*iteration_counter;
      std::size_t entering = SIZE_MAX;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (j >= blocked_from_) break;
        if (is_basic(j)) continue;
        double reduced = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          reduced -= cost[basis_[i]] * rows_[i][j];
        }
        if (reduced < -options_.eps) {
          entering = j;  // Bland: first improving index
          break;
        }
      }
      if (entering == SIZE_MAX) return LpStatus::kOptimal;

      std::size_t leaving = SIZE_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        double a = rows_[i][entering];
        if (a > options_.eps) {
          double ratio = rhs_[i] / a;
          if (ratio < best_ratio - options_.eps ||
              (std::abs(ratio - best_ratio) <= options_.eps &&
               (leaving == SIZE_MAX || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == SIZE_MAX) return LpStatus::kUnbounded;
      pivot(leaving, entering);
    }
    return LpStatus::kIterationLimit;
  }

  bool is_basic(std::size_t j) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] == j) return true;
    }
    return false;
  }

  void pivot(std::size_t row, std::size_t col) {
    double p = rows_[row][col];
    GREFAR_CHECK_MSG(std::abs(p) > 0.0, "zero pivot");
    for (std::size_t j = 0; j < n_total_; ++j) rows_[row][j] /= p;
    rhs_[row] /= p;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      double factor = rows_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < n_total_; ++j) {
        rows_[i][j] -= factor * rows_[row][j];
      }
      rhs_[i] -= factor * rhs_[row];
      if (std::abs(rhs_[i]) < 1e-12) rhs_[i] = 0.0;
    }
    basis_[row] = col;
  }

  SimplexOptions options_;
  std::size_t m_ = 0;
  std::size_t n_struct_;
  std::size_t n_total_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t blocked_from_ = SIZE_MAX;  // phase 2 blocks artificial columns
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost_;
};

}  // namespace

namespace {
// One flush per solve keeps the instrumentation off the pivot loop
// (obs/counters.h hot-loop discipline).
void flush_simplex_counters(const RevisedSimplex& solver) {
  obs::count("lp.pivots", solver.total_pivots_);
  obs::count("lp.refactorizations", solver.total_refactors_);
}
}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  RevisedSimplex solver(lp, options);
  LpSolution solution = solver.solve_cold();
  obs::count("lp.cold_solves");
  flush_simplex_counters(solver);
  return solution;
}

LpSolution solve_lp(const LinearProgram& lp, const SimplexBasis& warm,
                    const SimplexOptions& options) {
  if (warm.valid()) {
    RevisedSimplex solver(lp, options);
    LpSolution solution;
    if (solver.solve_warm(warm, &solution)) {
      obs::count("lp.warm_start_hits");
      flush_simplex_counters(solver);
      return solution;
    }
    flush_simplex_counters(solver);  // work spent on the failed warm attempt
  }
  obs::count("lp.warm_start_cold_fallbacks");
  RevisedSimplex cold(lp, options);
  LpSolution solution = cold.solve_cold();
  flush_simplex_counters(cold);
  return solution;
}

LpSolution solve_lp_tableau(const LinearProgram& lp, const SimplexOptions& options) {
  Tableau tableau(lp, options);
  return tableau.solve();
}

}  // namespace grefar
