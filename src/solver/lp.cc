#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace grefar {

void LinearProgram::set_objective(std::size_t j, double coeff) {
  GREFAR_CHECK(j < objective_.size());
  objective_[j] = coeff;
}

void LinearProgram::add_constraint(std::vector<double> coeffs, ConstraintSense sense,
                                   double rhs) {
  GREFAR_CHECK_MSG(coeffs.size() == num_vars(),
                   "constraint has " << coeffs.size() << " coeffs, expected "
                                     << num_vars());
  constraints_.push_back({std::move(coeffs), sense, rhs});
}

void LinearProgram::add_constraint_sparse(
    const std::vector<std::pair<std::size_t, double>>& terms, ConstraintSense sense,
    double rhs) {
  std::vector<double> coeffs(num_vars(), 0.0);
  for (const auto& [j, c] : terms) {
    GREFAR_CHECK(j < num_vars());
    coeffs[j] += c;
  }
  constraints_.push_back({std::move(coeffs), sense, rhs});
}

void LinearProgram::add_upper_bound(std::size_t j, double ub) {
  add_constraint_sparse({{j, 1.0}}, ConstraintSense::kLessEqual, ub);
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Dense tableau simplex working on the standard form
///   min c^T x   s.t.  A x = b,  x >= 0,  b >= 0,
/// obtained by adding slack/surplus and artificial variables.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options), m_(lp.num_constraints()), n_struct_(lp.num_vars()) {
    // Column layout: [structural | slack/surplus | artificial].
    // Count slack/surplus columns.
    std::size_t num_slack = 0;
    for (const auto& c : lp.constraints()) {
      if (c.sense != ConstraintSense::kEqual) ++num_slack;
    }
    // Every row gets an artificial to form the obvious phase-1 basis; rows
    // whose slack can serve as basis (<= with rhs >= 0) skip the artificial.
    n_total_ = n_struct_ + num_slack;  // artificials appended below
    rows_.assign(m_, std::vector<double>(n_total_, 0.0));
    rhs_.assign(m_, 0.0);
    basis_.assign(m_, SIZE_MAX);

    std::size_t slack_col = n_struct_;
    std::vector<std::size_t> needs_artificial;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto& c = lp.constraints()[i];
      double sign = 1.0;
      double rhs = c.rhs;
      // Normalize rhs >= 0 by negating the row if needed.
      if (rhs < 0) sign = -1.0;
      for (std::size_t j = 0; j < n_struct_; ++j) rows_[i][j] = sign * c.coeffs[j];
      rhs_[i] = sign * rhs;

      ConstraintSense sense = c.sense;
      if (sign < 0) {
        if (sense == ConstraintSense::kLessEqual) sense = ConstraintSense::kGreaterEqual;
        else if (sense == ConstraintSense::kGreaterEqual) sense = ConstraintSense::kLessEqual;
      }
      switch (sense) {
        case ConstraintSense::kLessEqual:
          rows_[i][slack_col] = 1.0;
          basis_[i] = slack_col;  // slack is a valid basis column
          ++slack_col;
          break;
        case ConstraintSense::kGreaterEqual:
          rows_[i][slack_col] = -1.0;  // surplus
          ++slack_col;
          needs_artificial.push_back(i);
          break;
        case ConstraintSense::kEqual:
          needs_artificial.push_back(i);
          break;
      }
    }
    // Append artificial columns.
    first_artificial_ = n_total_;
    n_total_ += needs_artificial.size();
    for (auto& row : rows_) row.resize(n_total_, 0.0);
    std::size_t art_col = first_artificial_;
    for (std::size_t i : needs_artificial) {
      rows_[i][art_col] = 1.0;
      basis_[i] = art_col;
      ++art_col;
    }

    // Structural objective, padded.
    cost_.assign(n_total_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost_[j] = lp.objective()[j];
  }

  LpSolution solve() {
    LpSolution solution;
    // Phase 1: minimize the sum of artificials.
    if (first_artificial_ < n_total_) {
      std::vector<double> phase1_cost(n_total_, 0.0);
      for (std::size_t j = first_artificial_; j < n_total_; ++j) phase1_cost[j] = 1.0;
      auto status = run_simplex(phase1_cost, &solution.iterations);
      if (status == LpStatus::kIterationLimit) {
        solution.status = status;
        return solution;
      }
      if (phase1_objective() > 1e-7) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      drive_artificials_out();
    }
    // Phase 2: original objective; artificial columns blocked.
    blocked_from_ = first_artificial_;
    auto status = run_simplex(cost_, &solution.iterations);
    solution.status = status == LpStatus::kOptimal ? LpStatus::kOptimal : status;
    if (solution.status != LpStatus::kOptimal) return solution;

    solution.x.assign(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) solution.x[basis_[i]] = rhs_[i];
    }
    solution.objective = 0.0;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      solution.objective += cost_[j] * solution.x[j];
    }
    return solution;
  }

 private:
  double phase1_objective() const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= first_artificial_) obj += rhs_[i];
    }
    return obj;
  }

  /// After phase 1, pivot any artificial still (degenerately) in the basis
  /// out, or mark its row as redundant.
  void drive_artificials_out() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      // rhs must be ~0 here (phase-1 optimum). Find a non-artificial column
      // with a nonzero coefficient to pivot in.
      std::size_t pivot_col = SIZE_MAX;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > options_.eps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == SIZE_MAX) {
        // Redundant row; leave the artificial basic at value 0 — it can never
        // become positive because the row is all zeros.
        continue;
      }
      pivot(i, pivot_col);
    }
  }

  /// Runs the simplex method with Bland's rule on the given cost vector.
  LpStatus run_simplex(const std::vector<double>& cost, int* iteration_counter) {
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      ++*iteration_counter;
      // Reduced costs: r_j = c_j - c_B^T B^{-1} A_j. In tableau form, compute
      // via the basic costs and current rows.
      std::size_t entering = SIZE_MAX;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (j >= blocked_from_) break;
        if (is_basic(j)) continue;
        double reduced = cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
          reduced -= cost[basis_[i]] * rows_[i][j];
        }
        if (reduced < -options_.eps) {
          entering = j;  // Bland: first improving index
          break;
        }
      }
      if (entering == SIZE_MAX) return LpStatus::kOptimal;

      // Ratio test (Bland ties by smallest basis index).
      std::size_t leaving = SIZE_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        double a = rows_[i][entering];
        if (a > options_.eps) {
          double ratio = rhs_[i] / a;
          if (ratio < best_ratio - options_.eps ||
              (std::abs(ratio - best_ratio) <= options_.eps &&
               (leaving == SIZE_MAX || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == SIZE_MAX) return LpStatus::kUnbounded;
      pivot(leaving, entering);
    }
    return LpStatus::kIterationLimit;
  }

  bool is_basic(std::size_t j) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] == j) return true;
    }
    return false;
  }

  void pivot(std::size_t row, std::size_t col) {
    double p = rows_[row][col];
    GREFAR_CHECK_MSG(std::abs(p) > 0.0, "zero pivot");
    for (std::size_t j = 0; j < n_total_; ++j) rows_[row][j] /= p;
    rhs_[row] /= p;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      double factor = rows_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < n_total_; ++j) {
        rows_[i][j] -= factor * rows_[row][j];
      }
      rhs_[i] -= factor * rhs_[row];
      if (std::abs(rhs_[i]) < 1e-12) rhs_[i] = 0.0;
    }
    basis_[row] = col;
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_struct_;
  std::size_t n_total_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t blocked_from_ = SIZE_MAX;  // phase 2 blocks artificial columns
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost_;
};

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  Tableau tableau(lp, options);
  return tableau.solve();
}

}  // namespace grefar
