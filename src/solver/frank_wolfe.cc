#include "solver/frank_wolfe.h"

#include <cmath>
#include <cstdint>

#include "obs/counters.h"
#include "obs/profile.h"
#include "util/check.h"

namespace grefar {

FrankWolfeResult minimize_frank_wolfe(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0,
                                      const FrankWolfeOptions& options) {
  const std::size_t n = polytope.dim();
  if (x0.empty()) x0.assign(n, 0.0);
  GREFAR_CHECK(x0.size() == n);

  FrankWolfeResult result;
  std::vector<double> x = polytope.project(x0);
  std::vector<double> grad(n);
  std::vector<double> trial(n);
  std::vector<double> s(n);  // LMO vertex, reused across iterations

  // Per-phase times are accumulated into locals and flushed once per solve:
  // a ScopedTimer pair per iteration is measurable overhead in the solver's
  // tight loop even when profiling is off (see the counters.h hot-loop
  // rule). PhaseClock keeps the clock reads inside src/obs, behind the
  // profiling gate — this function must contain no direct clock calls.
  obs::PhaseClock phase;
  double lmo_ns = 0.0;
  double line_search_ns = 0.0;
  std::uint64_t line_searches = 0;

  double f_prev = objective.value(x);
  int stall = 0;
  bool gap_stop = false;
  bool stall_stop = false;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    phase.start();
    objective.gradient(x, grad);
    polytope.minimize_linear_into(grad, s);
    lmo_ns += phase.lap_ns();

    double gap = 0.0;
    for (std::size_t j = 0; j < n; ++j) gap += grad[j] * (x[j] - s[j]);
    result.gap = gap;
    if (gap <= options.gap_tolerance) {
      result.converged = true;
      gap_stop = true;
      break;
    }

    // Exact line search on [0,1] along x + t (s - x) by ternary search
    // (objective is convex along the segment).
    auto value_at = [&](double t) {
      for (std::size_t j = 0; j < n; ++j) trial[j] = x[j] + t * (s[j] - x[j]);
      return objective.value(trial);
    };
    double lo = 0.0, hi = 1.0;
    phase.start();
    for (int ls = 0; ls < options.line_search_iters; ++ls) {
      double m1 = lo + (hi - lo) / 3.0;
      double m2 = hi - (hi - lo) / 3.0;
      if (value_at(m1) <= value_at(m2)) hi = m2;
      else lo = m1;
    }
    if (phase.enabled()) {
      line_search_ns += phase.lap_ns();
      ++line_searches;
    }
    double t = 0.5 * (lo + hi);
    // Guard against a stalled step: fall back to the classic 2/(k+2) rate.
    if (t < 1e-12) t = 2.0 / (iter + 2.0);
    for (std::size_t j = 0; j < n; ++j) x[j] += t * (s[j] - x[j]);

    // Stall stop (see FrankWolfeOptions): the line search is exact, so the
    // objective is non-increasing and a run of negligible-progress
    // iterations means the remaining zig-zag only polishes the certificate.
    if (options.stall_iterations > 0) {
      double f = objective.value(x);
      double min_progress = options.progress_tolerance * (1.0 + std::abs(f));
      stall = f_prev - f < min_progress ? stall + 1 : 0;
      f_prev = f;
      if (stall >= options.stall_iterations) {
        result.converged = true;
        stall_stop = true;
        break;
      }
    }
  }

  if (phase.enabled()) {
    obs::record("fw.lmo", lmo_ns, static_cast<std::uint64_t>(result.iterations));
    obs::record("fw.line_search", line_search_ns, line_searches);
  }

  obs::count("fw.solves");
  obs::count("fw.iterations", static_cast<std::uint64_t>(result.iterations));
  if (gap_stop) {
    obs::count("fw.gap_stops");
  } else if (stall_stop) {
    obs::count("fw.stall_stops");
  } else {
    obs::count("fw.iteration_limit_stops");
  }

  result.objective = objective.value(x);
  result.x = std::move(x);
  return result;
}

}  // namespace grefar
