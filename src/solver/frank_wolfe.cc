#include "solver/frank_wolfe.h"

#include <cmath>

#include "util/check.h"

namespace grefar {

FrankWolfeResult minimize_frank_wolfe(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0,
                                      const FrankWolfeOptions& options) {
  const std::size_t n = polytope.dim();
  if (x0.empty()) x0.assign(n, 0.0);
  GREFAR_CHECK(x0.size() == n);

  FrankWolfeResult result;
  std::vector<double> x = polytope.project(x0);
  std::vector<double> grad(n);
  std::vector<double> trial(n);
  std::vector<double> s(n);  // LMO vertex, reused across iterations

  double f_prev = objective.value(x);
  int stall = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    objective.gradient(x, grad);
    polytope.minimize_linear_into(grad, s);

    double gap = 0.0;
    for (std::size_t j = 0; j < n; ++j) gap += grad[j] * (x[j] - s[j]);
    result.gap = gap;
    if (gap <= options.gap_tolerance) {
      result.converged = true;
      break;
    }

    // Exact line search on [0,1] along x + t (s - x) by ternary search
    // (objective is convex along the segment).
    auto value_at = [&](double t) {
      for (std::size_t j = 0; j < n; ++j) trial[j] = x[j] + t * (s[j] - x[j]);
      return objective.value(trial);
    };
    double lo = 0.0, hi = 1.0;
    for (int ls = 0; ls < options.line_search_iters; ++ls) {
      double m1 = lo + (hi - lo) / 3.0;
      double m2 = hi - (hi - lo) / 3.0;
      if (value_at(m1) <= value_at(m2)) hi = m2;
      else lo = m1;
    }
    double t = 0.5 * (lo + hi);
    // Guard against a stalled step: fall back to the classic 2/(k+2) rate.
    if (t < 1e-12) t = 2.0 / (iter + 2.0);
    for (std::size_t j = 0; j < n; ++j) x[j] += t * (s[j] - x[j]);

    // Stall stop (see FrankWolfeOptions): the line search is exact, so the
    // objective is non-increasing and a run of negligible-progress
    // iterations means the remaining zig-zag only polishes the certificate.
    if (options.stall_iterations > 0) {
      double f = objective.value(x);
      double min_progress = options.progress_tolerance * (1.0 + std::abs(f));
      stall = f_prev - f < min_progress ? stall + 1 : 0;
      f_prev = f;
      if (stall >= options.stall_iterations) {
        result.converged = true;
        break;
      }
    }
  }

  result.objective = objective.value(x);
  result.x = std::move(x);
  return result;
}

}  // namespace grefar
