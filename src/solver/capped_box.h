// CappedBoxPolytope: the feasible region of the per-slot GreFar problem,
//
//   { x : 0 <= x_j <= ub_j,   sum_{j in group g} x_j <= cap_g  for all g }
//
// where the groups are disjoint (one group per data center, one variable per
// job type). Provides the two oracles first-order methods need:
//   * Euclidean projection (for projected gradient descent), and
//   * a linear minimization oracle (for Frank-Wolfe) — a fractional greedy.
#pragma once

#include <cstddef>
#include <vector>

#include "util/annotations.h"

namespace grefar {

class CappedBoxPolytope {
 public:
  /// `ub[j]` is the per-variable upper bound (>= 0; may be +infinity).
  explicit CappedBoxPolytope(std::vector<double> ub);

  /// Declares a group over distinct variable indices with sum cap >= 0.
  /// Groups must be disjoint; indices not in any group are box-only.
  void add_group(std::vector<std::size_t> indices, double cap);

  /// In-place re-shape for callers whose dimension changes per slot (the
  /// compact active-type problem): the polytope becomes `n_groups`
  /// contiguous groups of `group_size` variables each (group g owning
  /// [g*group_size, (g+1)*group_size)), with every bound and cap reset to 0.
  /// The caller then rewrites bounds via mutable_upper_bounds() and caps via
  /// set_group_cap(). Reuses all internal storage; no allocation once the
  /// high-water dimension has been reached.
  void rebuild_contiguous(std::size_t n_groups, std::size_t group_size);

  std::size_t dim() const { return ub_.size(); }
  const std::vector<double>& upper_bounds() const { return ub_; }
  std::size_t num_groups() const { return groups_.size(); }

  /// In-place updates for callers that rebuild the same-shaped polytope
  /// every slot (the per-slot GreFar problem): bounds and caps change with
  /// the observation, the group structure does not.
  void set_upper_bound(std::size_t j, double ub);
  void set_group_cap(std::size_t g, double cap);

  /// Mutable flat bound array for callers that rewrite *every* bound each
  /// slot (the per-slot problem's fused reset). The caller is responsible
  /// for keeping entries >= 0; set_upper_bound() remains the checked path
  /// for one-off edits.
  double* mutable_upper_bounds() { return ub_.data(); }

  /// True if x satisfies all bounds and caps within `tol`.
  bool contains(const std::vector<double>& x, double tol = 1e-9) const;

  /// Euclidean projection of y onto the polytope. Decomposes per group:
  /// clamp to the box, and when a cap binds, bisect the Lagrange multiplier
  /// of sum(clamp(y - lambda)) = cap.
  std::vector<double> project(const std::vector<double>& y) const;

  /// Allocation-free projection into a caller-owned buffer (resized once;
  /// first-order solvers call this every iteration). `out` must not alias y.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void project_into(const std::vector<double>& y, std::vector<double>& out) const;

  /// Linear minimization oracle: argmin_{x in polytope} c . x.
  /// Within each group, fills variables by ascending (most negative) cost
  /// until the cap binds; variables with c >= 0 stay at 0.
  std::vector<double> minimize_linear(const std::vector<double>& c) const;

  /// Allocation-free LMO into a caller-owned buffer.
  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void minimize_linear_into(const std::vector<double>& c,
                            std::vector<double>& out) const;

 private:
  struct Group {
    std::vector<std::size_t> indices;
    double cap;
    // Detected at add_group: when the indices are the ascending run
    // [begin, end) — true for every per-slot problem group, where DC i owns
    // variables i*J .. i*J+J-1 — the oracles take stride-1 fast paths on
    // raw pointers instead of chasing the indices indirection.
    std::size_t begin = 0;
    std::size_t end = 0;
    bool contiguous = false;
  };

  GREFAR_HOT_PATH GREFAR_DETERMINISTIC
  void project_group(const Group& g, std::vector<double>& x) const;

  std::vector<double> ub_;
  std::vector<Group> groups_;
  std::vector<bool> grouped_;  // membership marker for disjointness checks

  // Scratch reused by the oracles (hot path: every solver iteration). Makes
  // a polytope instance single-threaded, like the rest of the repo's
  // lazily-caching objects; concurrent runs each own their instances.
  mutable std::vector<std::size_t> lmo_order_; // minimize_linear sort order
};

}  // namespace grefar
