#include "solver/brute_force.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace grefar {

BruteForceResult minimize_brute_force(
    const std::function<double(const std::vector<double>&)>& f,
    const CappedBoxPolytope& polytope, int points_per_dim) {
  GREFAR_CHECK(points_per_dim >= 2);
  const std::size_t n = polytope.dim();
  GREFAR_CHECK_MSG(n <= 8, "brute force limited to small dimensions");
  for (double ub : polytope.upper_bounds()) {
    GREFAR_CHECK_MSG(std::isfinite(ub), "brute force needs finite upper bounds");
  }

  BruteForceResult best;
  best.objective = std::numeric_limits<double>::infinity();
  std::vector<double> x(n, 0.0);

  std::function<void(std::size_t)> recurse = [&](std::size_t dim) {
    if (dim == n) {
      if (!polytope.contains(x, 1e-9)) return;
      ++best.evaluated;
      double v = f(x);
      if (v < best.objective) {
        best.objective = v;
        best.x = x;
      }
      return;
    }
    double ub = polytope.upper_bounds()[dim];
    for (int i = 0; i < points_per_dim; ++i) {
      x[dim] = ub * static_cast<double>(i) / (points_per_dim - 1);
      recurse(dim + 1);
    }
  };
  recurse(0);
  GREFAR_CHECK_MSG(best.evaluated > 0, "no feasible grid point found");
  return best;
}

}  // namespace grefar
