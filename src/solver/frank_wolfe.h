// Frank-Wolfe (conditional gradient) over a CappedBoxPolytope.
//
// Each iteration calls the polytope's linear minimization oracle — which for
// the GreFar per-slot problem is exactly the beta=0 greedy — then takes an
// exact line-search step along the segment (the objective restricted to a
// segment is convex in one variable; we use ternary search). The Frank-Wolfe
// gap g_k = grad(x_k) . (x_k - s_k) upper-bounds the suboptimality, giving a
// certified stopping rule.
#pragma once

#include <vector>

#include "solver/capped_box.h"
#include "solver/objective.h"

namespace grefar {

struct FrankWolfeOptions {
  int max_iterations = 500;
  double gap_tolerance = 1e-7;  // stop when the FW gap certificate is below
  int line_search_iters = 48;   // ternary-search refinements per step
};

struct FrankWolfeResult {
  std::vector<double> x;
  double objective = 0.0;
  double gap = 0.0;  // final duality-gap certificate
  int iterations = 0;
  bool converged = false;
};

FrankWolfeResult minimize_frank_wolfe(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0 = {},
                                      const FrankWolfeOptions& options = {});

}  // namespace grefar
