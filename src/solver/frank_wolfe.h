// Frank-Wolfe (conditional gradient) over a CappedBoxPolytope.
//
// Each iteration calls the polytope's linear minimization oracle — which for
// the GreFar per-slot problem is exactly the beta=0 greedy — then takes an
// exact line-search step along the segment (the objective restricted to a
// segment is convex in one variable; we use ternary search). The Frank-Wolfe
// gap g_k = grad(x_k) . (x_k - s_k) upper-bounds the suboptimality, giving a
// certified stopping rule.
#pragma once

#include <vector>

#include "solver/capped_box.h"
#include "solver/objective.h"
#include "util/annotations.h"

namespace grefar {

struct FrankWolfeOptions {
  int max_iterations = 500;
  double gap_tolerance = 1e-7;  // stop when the FW gap certificate is below
  int line_search_iters = 48;   // ternary-search refinements per step
  /// Stall stop: also finish after `stall_iterations` consecutive iterations
  /// that each improve the objective by less than
  /// progress_tolerance * (1 + |f|). Near a face the FW gap zig-zags around
  /// a loose plateau long after the objective has stopped moving (two-vertex
  /// crawl with step sizes ~1e-6), so the certificate alone never fires; the
  /// stall rule is what lets a warm-started solve (x0 near the optimum)
  /// return in a few iterations instead of burning the whole budget.
  /// Set stall_iterations <= 0 to disable and rely on the gap alone.
  double progress_tolerance = 1e-11;
  int stall_iterations = 8;
};

struct FrankWolfeResult {
  std::vector<double> x;
  double objective = 0.0;
  double gap = 0.0;  // final duality-gap certificate
  int iterations = 0;
  bool converged = false;
};

GREFAR_DETERMINISTIC
FrankWolfeResult minimize_frank_wolfe(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0 = {},
                                      const FrankWolfeOptions& options = {});

}  // namespace grefar
