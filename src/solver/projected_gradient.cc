#include "solver/projected_gradient.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "obs/counters.h"
#include "util/check.h"

namespace grefar {

PgdResult minimize_projected_gradient(const ConvexObjective& objective,
                                      const CappedBoxPolytope& polytope,
                                      std::vector<double> x0,
                                      const PgdOptions& options) {
  const std::size_t n = polytope.dim();
  if (x0.empty()) x0.assign(n, 0.0);
  GREFAR_CHECK(x0.size() == n);

  PgdResult result;
  std::vector<double> x = polytope.project(x0);
  double fx = objective.value(x);
  std::vector<double> best_x = x;
  double best_f = fx;

  std::vector<double> grad(n);
  std::vector<double> candidate(n);
  std::vector<double> projected(n);  // project_into target, reused
  double step = options.initial_step;
  int stall_count = 0;  // consecutive iterations without monotone descent

  // Accumulated locally and flushed once per solve (obs hot-loop discipline).
  std::uint64_t projections = 1;  // the x0 projection above
  std::uint64_t subgradient_steps = 0;
  auto flush_counters = [&](const PgdResult& r) {
    obs::count("pgd.solves");
    obs::count("pgd.iterations", static_cast<std::uint64_t>(r.iterations));
    obs::count("pgd.projections", projections);
    obs::count("pgd.subgradient_fallback_steps", subgradient_steps);
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    objective.gradient(x, grad);

    // Backtracking over the projection arc: x(step) = proj(x - step*grad).
    bool improved = false;
    double trial_step = step;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      for (std::size_t j = 0; j < n; ++j) projected[j] = x[j] - trial_step * grad[j];
      polytope.project_into(projected, candidate);
      ++projections;
      // Tiny-move shortcut, checked *before* paying for an objective
      // evaluation: ||proj(x - t*grad) - x|| is non-decreasing in t, so a
      // negligible move at the current step means every smaller backtracking
      // step moves even less — and at the full (never-shrinking) first step
      // it means the projected gradient itself vanishes, i.e. stationarity.
      // Without this, a solve warm-started at the optimum burned the whole
      // backtracking schedule on objective evaluations that could not
      // improve, then repeated it across the stall loop.
      double move = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        move += (candidate[j] - x[j]) * (candidate[j] - x[j]);
      }
      if (std::sqrt(move) < options.tolerance) {
        if (bt == 0) {
          result.converged = true;
          result.x = std::move(best_x);
          result.objective = best_f;
          flush_counters(result);
          return result;
        }
        break;  // smaller steps cannot move either; go probe stationarity
      }
      double fc = objective.value(candidate);
      if (fc < fx - 1e-15) {
        // Accept; allow the step to grow again slowly.
        x.swap(candidate);
        fx = fc;
        if (fx < best_f) {
          best_f = fx;
          best_x = x;
        }
        step = trial_step * 1.5;
        improved = true;
        stall_count = 0;
        break;
      }
      trial_step *= options.backtrack_factor;
    }
    if (!improved) {
      // Stationarity check: if a small projected step barely moves the
      // iterate, the projected gradient vanishes (smooth optimum at a
      // boundary or interior) — stop instead of entering the fallback.
      double probe_move = 0.0;
      for (std::size_t j = 0; j < n; ++j) projected[j] = x[j] - 1e-6 * grad[j];
      polytope.project_into(projected, candidate);
      ++projections;
      for (std::size_t j = 0; j < n; ++j) {
        probe_move = std::max(probe_move, std::abs(candidate[j] - x[j]));
      }
      if (probe_move < 1e-9) {
        result.converged = true;
        break;
      }
      // Monotone descent failed — typically at a kink of a nonsmooth
      // objective, where the current subgradient is not a descent direction.
      // Fall back to the classic (non-monotone) projected subgradient step
      // with a diminishing size; the best iterate is kept separately, which
      // is exactly the convergence guarantee subgradient methods give.
      ++stall_count;
      if (stall_count > 25) {
        result.converged = true;
        break;
      }
      double sub_step =
          options.initial_step / (1.0 + static_cast<double>(stall_count * stall_count));
      for (std::size_t j = 0; j < n; ++j) projected[j] = x[j] - sub_step * grad[j];
      polytope.project_into(projected, candidate);
      ++projections;
      ++subgradient_steps;
      x.swap(candidate);
      fx = objective.value(x);
      if (fx < best_f) {
        best_f = fx;
        best_x = x;
        stall_count = 0;
      }
    }
  }
  result.x = std::move(best_x);
  result.objective = best_f;
  flush_counters(result);
  return result;
}

}  // namespace grefar
