// Dense two-phase tableau simplex solver.
//
// Solves   minimize c^T x   subject to   A x (<=|>=|=) b,   x >= 0.
//
// This is the general-purpose LP substrate: the per-slot GreFar problem with
// beta = 0 is an LP (used to cross-check the specialized greedy solver), and
// the T-step lookahead policy of Section V is a frame LP. Bland's rule
// guarantees termination on degenerate problems.
#pragma once

#include <string>
#include <vector>

namespace grefar {

enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x (sense) rhs.
struct LinearConstraint {
  std::vector<double> coeffs;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

/// A linear program in "c, A, b" form with implicit x >= 0.
class LinearProgram {
 public:
  explicit LinearProgram(std::size_t num_vars) : objective_(num_vars, 0.0) {}

  std::size_t num_vars() const { return objective_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// Sets the objective coefficient of variable `j`.
  void set_objective(std::size_t j, double coeff);
  const std::vector<double>& objective() const { return objective_; }

  /// Adds a constraint; `coeffs` must have num_vars entries.
  void add_constraint(std::vector<double> coeffs, ConstraintSense sense, double rhs);

  /// Adds a sparse constraint given (index, coeff) pairs.
  void add_constraint_sparse(const std::vector<std::pair<std::size_t, double>>& terms,
                             ConstraintSense sense, double rhs);

  /// Convenience: adds x_j <= ub.
  void add_upper_bound(std::size_t j, double ub);

  const std::vector<LinearConstraint>& constraints() const { return constraints_; }

 private:
  std::vector<double> objective_;
  std::vector<LinearConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;

  bool optimal() const { return status == LpStatus::kOptimal; }
};

/// Solver options; defaults are adequate for every LP in this repository.
struct SimplexOptions {
  double eps = 1e-9;           // pivot / feasibility tolerance
  int max_iterations = 50000;  // across both phases
};

/// Solves the LP with the two-phase tableau simplex method.
LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

/// Human-readable status name (for logs and test failure messages).
std::string to_string(LpStatus status);

}  // namespace grefar
