// Bounded-variable revised simplex LP engine with warm starts.
//
// Solves   minimize c^T x   subject to   A x (<=|>=|=) b,   0 <= x <= ub.
//
// This is the general-purpose LP substrate: the per-slot GreFar problem with
// beta = 0 is an LP (used to cross-check the specialized greedy solver), the
// T-step lookahead policy of Section V solves one frame LP per frame, and
// oracle MPC solves a window LP every slot. Three properties matter for
// those consumers and drive the design:
//
//  * Rows are stored sparsely end to end (a frame LP touches a handful of
//    variables per row out of hundreds) and variable upper bounds are
//    *bounds*, not extra rows — the basis stays m x m over the structural
//    rows only, and nonbasic variables may sit at either bound, entering
//    via bound flips without a pivot.
//  * Every optimal solution carries its final SimplexBasis. Repeated-solve
//    consumers (the Frank-Wolfe LMO loop, receding-horizon MPC) hand it back
//    to solve_lp(lp, warm) which re-enters phase 2 directly — same polytope
//    with a new objective resumes in O(1) pivots; shifted rhs data reuses
//    the basis whenever it is still primal feasible.
//  * Warm starting is always safe: a basis that no longer fits the data
//    (wrong shape, singular, or primal infeasible) silently falls back to a
//    cold two-phase solve.
//
// Pricing is Dantzig with deterministic ascending-index tie-breaks; the
// solver switches to Bland's rule after a run of degenerate steps, so it
// terminates on degenerate problems. solve_lp_tableau retains the original
// dense full-tableau method (bounds expanded to rows) as an independent
// cross-check oracle for the property tests.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace grefar {

enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum_{(j, a) in terms} a * x_j (sense) rhs.
/// Terms are stored sparsely; duplicate indices accumulate.
struct LinearConstraint {
  std::vector<std::pair<std::size_t, double>> terms;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

/// A linear program in "c, A, b" form with 0 <= x <= ub (ub default +inf).
class LinearProgram {
 public:
  explicit LinearProgram(std::size_t num_vars)
      : objective_(num_vars, 0.0),
        upper_(num_vars, std::numeric_limits<double>::infinity()) {}

  std::size_t num_vars() const { return objective_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// Sets the objective coefficient of variable `j`.
  void set_objective(std::size_t j, double coeff);
  const std::vector<double>& objective() const { return objective_; }

  /// Adds a constraint; `coeffs` must have num_vars entries. Zero
  /// coefficients are dropped on the way into the sparse store.
  void add_constraint(const std::vector<double>& coeffs, ConstraintSense sense,
                      double rhs);

  /// Adds a sparse constraint given (index, coeff) pairs (duplicates add up).
  void add_constraint_sparse(const std::vector<std::pair<std::size_t, double>>& terms,
                             ConstraintSense sense, double rhs);

  /// Tightens the variable bound to x_j <= ub (the minimum over calls wins).
  /// This is a bound, not a row: it does not count toward num_constraints().
  void add_upper_bound(std::size_t j, double ub);

  const std::vector<LinearConstraint>& constraints() const { return constraints_; }
  const std::vector<double>& upper_bounds() const { return upper_; }

 private:
  std::vector<double> objective_;
  std::vector<double> upper_;
  std::vector<LinearConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// A simplex basis snapshot: which column (structural, slack/surplus, or
/// row-artificial sentinel) is basic in each row, plus which nonbasic
/// columns rest at their upper bound. Opaque to callers — obtain one from
/// LpSolution::basis and pass it back to solve_lp(lp, warm) for an LP with
/// the same shape (num_vars, rows, senses). Column indexing is internal to
/// the solver; a basis only round-trips between solves of structurally
/// identical programs.
struct SimplexBasis {
  std::vector<std::size_t> basic;    // per row: basic column index
  std::vector<std::uint8_t> at_upper;  // per non-artificial column

  bool valid() const { return !basic.empty(); }
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  /// Final basis (populated when status == kOptimal); feed to
  /// solve_lp(lp, warm) to re-solve a same-shape LP from here.
  SimplexBasis basis;

  bool optimal() const { return status == LpStatus::kOptimal; }
};

/// Solver options; defaults are adequate for every LP in this repository.
struct SimplexOptions {
  double eps = 1e-9;           // pivot / reduced-cost tolerance
  int max_iterations = 50000;  // across both phases
};

/// Solves the LP with the bounded-variable revised simplex (cold start).
LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

/// Warm-started solve: re-enters phase 2 from `warm` (a basis exported by a
/// previous solve of a same-shape LP). Falls back to a cold solve if the
/// basis does not fit the current data, so this is never less robust than
/// solve_lp(lp).
LpSolution solve_lp(const LinearProgram& lp, const SimplexBasis& warm,
                    const SimplexOptions& options = {});

/// The original dense two-phase tableau simplex (upper bounds expanded into
/// singleton rows, Bland's rule). Kept as an independent oracle for property
/// tests; O(m * n) per pivot with m counting every bound row — do not use on
/// hot paths.
LpSolution solve_lp_tableau(const LinearProgram& lp, const SimplexOptions& options = {});

/// Human-readable status name (for logs and test failure messages).
std::string to_string(LpStatus status);

}  // namespace grefar
