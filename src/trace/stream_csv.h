// StreamCsvParser: the repo's one CSV parser — an incremental, SAX-style
// state machine modeled on the libcsv callback design with the explicit
// dialect options of the ghoti.io CSV module (SNIPPETS.md §2–3).
//
// Bytes are *fed* in arbitrary chunks (a 64 KiB file read, a whole
// materialized string, one byte at a time — the row stream is identical,
// property-fuzzed in tests/fuzz/fuzz_stream_csv.cc); completed rows are
// handed to a callback as they finish, so a trace file far larger than RAM
// parses in O(one row) memory. The materializing readers (util/csv.h
// CsvReader, trace/job_trace.h, trace/price_trace.h) are thin wrappers over
// this parser; there is deliberately no second CSV implementation to drift.
//
// Error discipline: every failure carries the absolute byte offset plus
// 1-based line/column of the offending byte ("unterminated quoted field
// opened at byte 57 (line 3, col 9)"), and hard resource limits — max field
// bytes, max fields per row, max rows — turn pathological inputs into
// diagnostics instead of memory exhaustion.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace grefar {

/// Explicit CSV dialect (ghoti.io-style): exactly how bytes become fields.
struct CsvDialect {
  /// Field separator (',' CSV, '\t' TSV, ';', '|', ...).
  char separator = ',';
  /// Quote character; a field starting with it is parsed RFC-4180-quoted
  /// (separators/newlines literal inside, the quote itself doubled).
  char quote = '"';
  /// Outside quotes, '\r' is dropped wherever it appears (tolerates CRLF and
  /// stray carriage returns — the historical CsvReader behaviour). When
  /// false, '\r' is only consumed as part of a "\r\n" row terminator and is
  /// a literal field byte elsewhere.
  bool skip_bare_cr = true;
  /// Strict RFC-4180 quoting: after a quoted section closes, only the
  /// separator or a row terminator may follow ("\"a\"x" is an error instead
  /// of the lenient concatenation "ax"), and a quote opening mid-field is an
  /// error instead of a literal byte.
  bool strict_quotes = false;
};

/// Hard resource limits: parsing fails (with the offending position) instead
/// of growing unboundedly. Zero disables an individual limit.
struct CsvLimits {
  std::uint64_t max_field_bytes = 1u << 20;   // 1 MiB per field
  std::uint64_t max_fields_per_row = 1u << 16;
  std::uint64_t max_rows = 0;                 // 0 = unlimited
};

/// A position in the byte stream: absolute offset plus 1-based line/column
/// (both counted in bytes; column resets after every row terminator).
struct CsvPosition {
  std::uint64_t byte = 0;
  std::uint64_t line = 1;
  std::uint64_t column = 1;

  /// "byte 57 (line 3, col 9)" — the form every diagnostic embeds.
  std::string to_string() const;
};

class StreamCsvParser {
 public:
  /// Called once per completed row with the decoded fields and the position
  /// of the row's first byte; `row_index` is 0-based in emission order.
  /// The field storage is parser-owned and reused — copy what you keep.
  /// Returning a non-ok Status aborts parsing and surfaces through
  /// feed()/finish() unchanged.
  using RowCallback = std::function<Status(
      const std::vector<std::string>& fields, std::uint64_t row_index,
      const CsvPosition& row_start)>;

  explicit StreamCsvParser(RowCallback on_row, CsvDialect dialect = {},
                           CsvLimits limits = {});

  /// Feeds one chunk; emits every row completed within it. After an error
  /// (from the machine or the callback) the parser is poisoned: further
  /// feed()/finish() calls return the same error.
  Status feed(std::string_view chunk);

  /// Ends the stream: emits the final unterminated row (no trailing
  /// newline), fails on an unterminated quoted field.
  Status finish();

  /// Position of the next unconsumed byte.
  const CsvPosition& position() const { return pos_; }
  std::uint64_t rows_emitted() const { return rows_emitted_; }

 private:
  enum class State : unsigned char {
    kRowStart,    // nothing consumed for the current row
    kFieldStart,  // just after a separator
    kUnquoted,    // inside an unquoted field
    kQuoted,      // inside a quoted section
    kQuoteEnd,    // just closed a quoted section
  };

  Status fail(std::string message);          // poison + build Error
  Status append_field_byte(char c);          // limit-checked
  Status end_field();
  Status end_row();

  RowCallback on_row_;
  CsvDialect dialect_;
  CsvLimits limits_;

  State state_ = State::kRowStart;
  CsvPosition pos_;              // next byte to consume
  CsvPosition row_start_;        // first byte of the current row
  CsvPosition quote_open_;       // where the current quoted section opened
  std::string field_;            // reused current-field buffer
  std::vector<std::string> row_;  // reused fields of the current row
  std::size_t row_width_ = 0;    // fields completed in the current row
  std::uint64_t rows_emitted_ = 0;
  bool cr_pending_ = false;      // skip_bare_cr=false: '\r' awaiting lookahead
  CsvPosition cr_pos_;           // where the pending '\r' was consumed
  bool finished_ = false;
  bool failed_ = false;
  std::string error_;            // sticky first error
};

/// Convenience: runs `text` through a StreamCsvParser in one feed + finish.
/// The callback contract is identical; chunking never changes the row stream.
Status parse_csv(std::string_view text, const StreamCsvParser::RowCallback& on_row,
                 CsvDialect dialect = {}, CsvLimits limits = {});

}  // namespace grefar
