// Shared row decoders for the trace CSV schemas: job traces (two versions,
// see JobTraceSchema) and "slot,dc,price" price traces. Both the
// materializing readers (job_trace.h / price_trace.h) and the streaming
// per-slot sources (stream_source.h) decode through these helpers, so schema
// validation and diagnostics cannot drift between the batch and serve paths.
//
// Every diagnostic names the row index and the row's byte position in the
// source stream ("job trace row 3 is malformed at byte 41 (line 4, col 1)").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/stream_csv.h"
#include "util/result.h"

namespace grefar {

struct JobTraceRow {
  std::int64_t slot = 0;
  std::size_t type = 0;
  std::int64_t count = 0;
};

/// Job-trace schema versions, distinguished by the header row:
///   kCounts — v1, "slot,type,count": arrival counts only (every existing
///             trace; value/decay/deadline default from the JobType).
///   kValued — v2, "slot,type,count,value,decay,deadline": each batch
///             additionally carries a base value (finite, >= 0), a decay
///             rate (finite, >= 0; the JobType's curve kind applies), and a
///             relative completion deadline in slots (-1 = no deadline).
enum class JobTraceSchema { kCounts, kValued };

/// A decoded v2 data row (see JobTraceSchema::kValued).
struct ValuedJobTraceRow {
  std::int64_t slot = 0;
  std::size_t type = 0;
  std::int64_t count = 0;
  double value = 0.0;
  double decay = 0.0;
  std::int64_t deadline = -1;  // relative slots; -1 = no deadline
};

struct PriceTraceRow {
  std::int64_t slot = 0;
  std::size_t dc = 0;
  double price = 0.0;
};

/// Validates the mandatory "slot,type,count" header row.
Status check_job_trace_header(const std::vector<std::string>& fields,
                              const CsvPosition& row_start);

/// Classifies a job-trace header row as v1 or v2; fails (naming both
/// accepted headers and the byte position) on anything else. Readers that
/// accept either version dispatch per-row decoding on the result.
Result<JobTraceSchema> detect_job_trace_header(
    const std::vector<std::string>& fields, const CsvPosition& row_start);

/// Validates the mandatory "slot,dc,price" header row.
Status check_price_trace_header(const std::vector<std::string>& fields,
                                const CsvPosition& row_start);

/// Decodes one job-trace data row. Fails on wrong arity, unparsable numbers,
/// negative slot/count, or type id outside [0, num_types).
Result<JobTraceRow> decode_job_trace_row(const std::vector<std::string>& fields,
                                         std::size_t num_types,
                                         std::uint64_t row_index,
                                         const CsvPosition& row_start);

/// Decodes one v2 job-trace data row. On top of the v1 failure modes this
/// fails on non-finite or negative value/decay and deadline < -1; every
/// diagnostic carries the row's byte offset.
Result<ValuedJobTraceRow> decode_valued_job_trace_row(
    const std::vector<std::string>& fields, std::size_t num_types,
    std::uint64_t row_index, const CsvPosition& row_start);

/// Decodes one price-trace data row. Fails on wrong arity, unparsable
/// numbers, negative slot, dc id outside [0, num_dcs), or price <= 0.
Result<PriceTraceRow> decode_price_trace_row(
    const std::vector<std::string>& fields, std::size_t num_dcs,
    std::uint64_t row_index, const CsvPosition& row_start);

}  // namespace grefar
