// Shared row decoders for the two trace CSV schemas ("slot,type,count" job
// traces, "slot,dc,price" price traces). Both the materializing readers
// (job_trace.h / price_trace.h) and the streaming per-slot sources
// (stream_source.h) decode through these helpers, so schema validation and
// diagnostics cannot drift between the batch and serve paths.
//
// Every diagnostic names the row index and the row's byte position in the
// source stream ("job trace row 3 is malformed at byte 41 (line 4, col 1)").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/stream_csv.h"
#include "util/result.h"

namespace grefar {

struct JobTraceRow {
  std::int64_t slot = 0;
  std::size_t type = 0;
  std::int64_t count = 0;
};

struct PriceTraceRow {
  std::int64_t slot = 0;
  std::size_t dc = 0;
  double price = 0.0;
};

/// Validates the mandatory "slot,type,count" header row.
Status check_job_trace_header(const std::vector<std::string>& fields,
                              const CsvPosition& row_start);

/// Validates the mandatory "slot,dc,price" header row.
Status check_price_trace_header(const std::vector<std::string>& fields,
                                const CsvPosition& row_start);

/// Decodes one job-trace data row. Fails on wrong arity, unparsable numbers,
/// negative slot/count, or type id outside [0, num_types).
Result<JobTraceRow> decode_job_trace_row(const std::vector<std::string>& fields,
                                         std::size_t num_types,
                                         std::uint64_t row_index,
                                         const CsvPosition& row_start);

/// Decodes one price-trace data row. Fails on wrong arity, unparsable
/// numbers, negative slot, dc id outside [0, num_dcs), or price <= 0.
Result<PriceTraceRow> decode_price_trace_row(
    const std::vector<std::string>& fields, std::size_t num_dcs,
    std::uint64_t row_index, const CsvPosition& row_start);

}  // namespace grefar
