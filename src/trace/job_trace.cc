#include "trace/job_trace.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "trace/stream_csv.h"
#include "trace/trace_schema.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace grefar {

std::vector<std::vector<std::int64_t>> materialize_arrivals(
    const ArrivalProcess& process, std::int64_t horizon) {
  GREFAR_CHECK(horizon >= 0);
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(horizon));
  for (std::int64_t t = 0; t < horizon; ++t) out.push_back(process.arrivals(t));
  return out;
}

std::string job_trace_to_csv(const std::vector<std::vector<std::int64_t>>& counts) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"slot", "type", "count"});
  for (std::size_t t = 0; t < counts.size(); ++t) {
    for (std::size_t j = 0; j < counts[t].size(); ++j) {
      if (counts[t][j] == 0) continue;  // sparse on disk
      writer.write_row(std::vector<std::string>{
          std::to_string(t), std::to_string(j), std::to_string(counts[t][j])});
    }
  }
  return os.str();
}

Result<std::vector<std::vector<std::int64_t>>> job_trace_from_csv(
    std::string_view csv, std::size_t num_types) {
  // Materializing wrapper over the one streaming parser: rows accumulate
  // into the dense table as they are emitted, no intermediate row list.
  std::vector<std::vector<std::int64_t>> table;
  std::uint64_t rows_seen = 0;
  Status st = parse_csv(
      csv,
      [&table, &rows_seen, num_types](const std::vector<std::string>& fields,
                                      std::uint64_t row_index,
                                      const CsvPosition& row_start) -> Status {
        ++rows_seen;
        if (row_index == 0) return check_job_trace_header(fields, row_start);
        auto row = decode_job_trace_row(fields, num_types, row_index, row_start);
        if (!row.ok()) return row.error();
        auto s = static_cast<std::size_t>(row.value().slot);
        if (table.size() <= s) {
          table.resize(s + 1, std::vector<std::int64_t>(num_types, 0));
        }
        table[s][row.value().type] += row.value().count;
        return {};
      });
  if (!st.ok()) return st.error();
  if (rows_seen == 0) return Error::make("empty job trace");
  if (table.empty()) return Error::make("job trace has no data rows");
  return table;
}

Status write_job_trace(const std::string& path,
                       const std::vector<std::vector<std::int64_t>>& counts) {
  return write_file(path, job_trace_to_csv(counts));
}

Status write_job_trace_streaming(const ArrivalProcess& process,
                                 std::int64_t horizon,
                                 const std::string& path) {
  GREFAR_CHECK(horizon > 0);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error::make("cannot open file for writing: " + path);
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string>{"slot", "type", "count"});
  std::vector<std::int64_t> counts;
  std::vector<std::string> row(3);
  for (std::int64_t t = 0; t < horizon; ++t) {
    process.arrivals_into(t, counts);
    bool wrote_any = false;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      if (counts[j] == 0) continue;  // sparse on disk
      row[0] = std::to_string(t);
      row[1] = std::to_string(j);
      row[2] = std::to_string(counts[j]);
      writer.write_row(row);
      wrote_any = true;
    }
    // Pin the trace's span to [0, horizon) even when the last slot is idle.
    if (t == horizon - 1 && !wrote_any) {
      row[0] = std::to_string(t);
      row[1] = "0";
      row[2] = "0";
      writer.write_row(row);
    }
  }
  if (!out) return Error::make("write failed: " + path);
  return {};
}

Result<std::vector<std::vector<std::int64_t>>> read_job_trace(const std::string& path,
                                                              std::size_t num_types) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return job_trace_from_csv(content.value(), num_types);
}

std::string valued_job_trace_to_csv(
    const std::vector<std::vector<ArrivalBatch>>& slots) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"slot", "type", "count", "value",
                                            "decay", "deadline"});
  for (std::size_t t = 0; t < slots.size(); ++t) {
    for (const ArrivalBatch& b : slots[t]) {
      if (b.count == 0) continue;  // sparse on disk
      GREFAR_CHECK_MSG(!std::isnan(b.value) && !std::isnan(b.decay_rate) &&
                           b.deadline != kTypeDefaultDeadline,
                       "valued_job_trace_to_csv needs concrete annotations; "
                       "resolve JobType defaults before writing (slot "
                           << t << ")");
      writer.write_row(std::vector<std::string>{
          std::to_string(t), std::to_string(b.type), std::to_string(b.count),
          format_fixed(b.value, 6), format_fixed(b.decay_rate, 6),
          std::to_string(b.deadline == kNoDeadline ? -1 : b.deadline)});
    }
  }
  return os.str();
}

Result<ValuedJobTrace> valued_job_trace_from_csv(std::string_view csv,
                                                 std::size_t num_types) {
  ValuedJobTrace trace;
  std::uint64_t rows_seen = 0;
  std::uint64_t data_rows = 0;
  Status st = parse_csv(
      csv,
      [&trace, &rows_seen, &data_rows, num_types](
          const std::vector<std::string>& fields, std::uint64_t row_index,
          const CsvPosition& row_start) -> Status {
        ++rows_seen;
        if (row_index == 0) {
          auto schema = detect_job_trace_header(fields, row_start);
          if (!schema.ok()) return schema.error();
          trace.schema = schema.value();
          return {};
        }
        ++data_rows;
        ArrivalBatch batch;
        std::int64_t slot = 0;
        if (trace.schema == JobTraceSchema::kValued) {
          auto row = decode_valued_job_trace_row(fields, num_types, row_index,
                                                 row_start);
          if (!row.ok()) return row.error();
          slot = row.value().slot;
          batch.type = row.value().type;
          batch.count = row.value().count;
          batch.value = row.value().value;
          batch.decay_rate = row.value().decay;
          batch.deadline = row.value().deadline < 0 ? kNoDeadline
                                                    : row.value().deadline;
        } else {
          auto row = decode_job_trace_row(fields, num_types, row_index, row_start);
          if (!row.ok()) return row.error();
          slot = row.value().slot;
          batch.type = row.value().type;
          batch.count = row.value().count;
          // value/decay_rate/deadline keep their "defer to the JobType"
          // sentinels (workload/arrival_process.h).
        }
        auto s = static_cast<std::size_t>(slot);
        if (trace.slots.size() <= s) trace.slots.resize(s + 1);
        trace.slots[s].push_back(batch);
        return {};
      });
  if (!st.ok()) return st.error();
  if (rows_seen == 0) return Error::make("empty job trace");
  if (data_rows == 0) return Error::make("job trace has no data rows");
  return trace;
}

Status write_valued_job_trace(const std::string& path,
                              const std::vector<std::vector<ArrivalBatch>>& slots) {
  return write_file(path, valued_job_trace_to_csv(slots));
}

Result<ValuedJobTrace> read_valued_job_trace(const std::string& path,
                                             std::size_t num_types) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return valued_job_trace_from_csv(content.value(), num_types);
}

}  // namespace grefar
