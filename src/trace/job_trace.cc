#include "trace/job_trace.h"

#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace grefar {

std::vector<std::vector<std::int64_t>> materialize_arrivals(
    const ArrivalProcess& process, std::int64_t horizon) {
  GREFAR_CHECK(horizon >= 0);
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(horizon));
  for (std::int64_t t = 0; t < horizon; ++t) out.push_back(process.arrivals(t));
  return out;
}

std::string job_trace_to_csv(const std::vector<std::vector<std::int64_t>>& counts) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"slot", "type", "count"});
  for (std::size_t t = 0; t < counts.size(); ++t) {
    for (std::size_t j = 0; j < counts[t].size(); ++j) {
      if (counts[t][j] == 0) continue;  // sparse on disk
      writer.write_row(std::vector<std::string>{
          std::to_string(t), std::to_string(j), std::to_string(counts[t][j])});
    }
  }
  return os.str();
}

Result<std::vector<std::vector<std::int64_t>>> job_trace_from_csv(
    std::string_view csv, std::size_t num_types) {
  CsvReader reader;
  auto parsed = reader.parse(csv);
  if (!parsed.ok()) return parsed.error();
  const auto& rows = parsed.value();
  if (rows.empty()) return Error::make("empty job trace");
  if (rows.front() != std::vector<std::string>{"slot", "type", "count"}) {
    return Error::make("job trace must start with header 'slot,type,count'");
  }
  std::vector<std::vector<std::int64_t>> table;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 3) {
      return Error::make("job trace row " + std::to_string(r) + " needs 3 fields");
    }
    auto slot = parse_int(row[0]);
    auto type = parse_int(row[1]);
    auto count = parse_int(row[2]);
    if (!slot.ok() || !type.ok() || !count.ok()) {
      return Error::make("job trace row " + std::to_string(r) + " is malformed");
    }
    if (slot.value() < 0 || count.value() < 0) {
      return Error::make("job trace row " + std::to_string(r) + " has negative value");
    }
    if (type.value() < 0 || static_cast<std::size_t>(type.value()) >= num_types) {
      return Error::make("job trace row " + std::to_string(r) +
                         " has out-of-range type id");
    }
    auto s = static_cast<std::size_t>(slot.value());
    if (table.size() <= s) {
      table.resize(s + 1, std::vector<std::int64_t>(num_types, 0));
    }
    table[s][static_cast<std::size_t>(type.value())] += count.value();
  }
  if (table.empty()) return Error::make("job trace has no data rows");
  return table;
}

Status write_job_trace(const std::string& path,
                       const std::vector<std::vector<std::int64_t>>& counts) {
  return write_file(path, job_trace_to_csv(counts));
}

Result<std::vector<std::vector<std::int64_t>>> read_job_trace(const std::string& path,
                                                              std::size_t num_types) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return job_trace_from_csv(content.value(), num_types);
}

}  // namespace grefar
