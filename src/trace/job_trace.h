// Job-trace CSV schema: persistence for arrival traces so experiments can be
// driven by recorded (or externally supplied) workloads, exactly as the
// paper drives its simulator with the Cosmos trace.
//
// Two schema versions share one reader family (trace_schema.h):
//
// v1 (counts only, header required):
//   slot,type,count
//   0,0,3
//   0,1,1
// v2 (value/decay/deadline annotations per batch):
//   slot,type,count,value,decay,deadline
//   0,0,3,2.5,0.1,12
//   0,1,1,1.0,0.0,-1
//
// Slot/type pairs may be omitted (count 0) and appear in any order. The
// valued readers accept either version — v1 rows become batches whose
// annotations defer to the JobType defaults — so existing traces parse
// unchanged everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_schema.h"
#include "util/result.h"
#include "workload/arrival_process.h"

namespace grefar {

/// Materializes an arrival process over [0, horizon) into a dense count
/// table (rows = slots, cols = job types).
std::vector<std::vector<std::int64_t>> materialize_arrivals(
    const ArrivalProcess& process, std::int64_t horizon);

/// Serializes a dense count table to the trace CSV format.
std::string job_trace_to_csv(const std::vector<std::vector<std::int64_t>>& counts);

/// Parses the trace CSV format into a dense table with `num_types` columns.
/// The table spans [0, max slot in file]. Fails on malformed rows or
/// out-of-range type ids.
Result<std::vector<std::vector<std::int64_t>>> job_trace_from_csv(
    std::string_view csv, std::size_t num_types);

/// Writes/reads a trace file on disk.
Status write_job_trace(const std::string& path,
                       const std::vector<std::vector<std::int64_t>>& counts);

/// Streams `process` over [0, horizon) straight to `path`, one slot at a
/// time — never materializes the table, so traces far larger than RAM can
/// be generated in O(1 slot) memory. Rows are sparse (zero counts skipped);
/// a zero-count row is emitted for the final slot if it would otherwise be
/// absent, so the trace always spans exactly [0, horizon).
Status write_job_trace_streaming(const ArrivalProcess& process,
                                 std::int64_t horizon,
                                 const std::string& path);
Result<std::vector<std::vector<std::int64_t>>> read_job_trace(const std::string& path,
                                                              std::size_t num_types);

/// A parsed job trace in batch form: slots[t] holds slot t's arrival
/// batches in file order (one per data row; duplicates stay separate).
struct ValuedJobTrace {
  JobTraceSchema schema = JobTraceSchema::kCounts;
  std::vector<std::vector<ArrivalBatch>> slots;  // spans [0, max slot in file]
};

/// Serializes per-slot batches to the v2 CSV format, one row per batch in
/// order. Every batch must carry concrete annotations (contract-checked):
/// resolve JobType defaults before writing — the sentinel "defer to type"
/// encodings (NaN, kTypeDefaultDeadline) have no file representation.
std::string valued_job_trace_to_csv(
    const std::vector<std::vector<ArrivalBatch>>& slots);

/// Parses either schema version into batch form (see the header comment):
/// v1 rows yield batches with deferred annotations, v2 rows carry their own.
Result<ValuedJobTrace> valued_job_trace_from_csv(std::string_view csv,
                                                 std::size_t num_types);

/// File variants of the valued writer/reader.
Status write_valued_job_trace(const std::string& path,
                              const std::vector<std::vector<ArrivalBatch>>& slots);
Result<ValuedJobTrace> read_valued_job_trace(const std::string& path,
                                             std::size_t num_types);

}  // namespace grefar
