// Job-trace CSV schema: persistence for arrival traces so experiments can be
// driven by recorded (or externally supplied) workloads, exactly as the
// paper drives its simulator with the Cosmos trace.
//
// Format (header required):
//   slot,type,count
//   0,0,3
//   0,1,1
//   ...
// Slots/type pairs may be omitted (count 0) and appear in any order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "workload/arrival_process.h"

namespace grefar {

/// Materializes an arrival process over [0, horizon) into a dense count
/// table (rows = slots, cols = job types).
std::vector<std::vector<std::int64_t>> materialize_arrivals(
    const ArrivalProcess& process, std::int64_t horizon);

/// Serializes a dense count table to the trace CSV format.
std::string job_trace_to_csv(const std::vector<std::vector<std::int64_t>>& counts);

/// Parses the trace CSV format into a dense table with `num_types` columns.
/// The table spans [0, max slot in file]. Fails on malformed rows or
/// out-of-range type ids.
Result<std::vector<std::vector<std::int64_t>>> job_trace_from_csv(
    std::string_view csv, std::size_t num_types);

/// Writes/reads a trace file on disk.
Status write_job_trace(const std::string& path,
                       const std::vector<std::vector<std::int64_t>>& counts);

/// Streams `process` over [0, horizon) straight to `path`, one slot at a
/// time — never materializes the table, so traces far larger than RAM can
/// be generated in O(1 slot) memory. Rows are sparse (zero counts skipped);
/// a zero-count row is emitted for the final slot if it would otherwise be
/// absent, so the trace always spans exactly [0, horizon).
Status write_job_trace_streaming(const ArrivalProcess& process,
                                 std::int64_t horizon,
                                 const std::string& path);
Result<std::vector<std::vector<std::int64_t>>> read_job_trace(const std::string& path,
                                                              std::size_t num_types);

}  // namespace grefar
