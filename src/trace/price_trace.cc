#include "trace/price_trace.h"

#include <fstream>
#include <sstream>

#include "trace/stream_csv.h"
#include "trace/trace_schema.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace grefar {

std::vector<std::vector<double>> materialize_prices(const PriceModel& model,
                                                    std::int64_t horizon) {
  GREFAR_CHECK(horizon >= 0);
  std::vector<std::vector<double>> out(model.num_data_centers());
  for (std::size_t dc = 0; dc < out.size(); ++dc) {
    out[dc].reserve(static_cast<std::size_t>(horizon));
    for (std::int64_t t = 0; t < horizon; ++t) out[dc].push_back(model.price(dc, t));
  }
  return out;
}

std::string price_trace_to_csv(const std::vector<std::vector<double>>& series) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"slot", "dc", "price"});
  if (series.empty()) return os.str();
  for (std::size_t t = 0; t < series.front().size(); ++t) {
    for (std::size_t dc = 0; dc < series.size(); ++dc) {
      writer.write_row(std::vector<std::string>{std::to_string(t), std::to_string(dc),
                                                format_fixed(series[dc][t], 6)});
    }
  }
  return os.str();
}

Result<std::vector<std::vector<double>>> price_trace_from_csv(std::string_view csv,
                                                              std::size_t num_dcs) {
  // Materializing wrapper over the one streaming parser.
  std::vector<std::vector<double>> series(num_dcs);
  std::vector<std::vector<bool>> seen(num_dcs);
  std::uint64_t rows_seen = 0;
  Status st = parse_csv(
      csv,
      [&series, &seen, &rows_seen, num_dcs](
          const std::vector<std::string>& fields, std::uint64_t row_index,
          const CsvPosition& row_start) -> Status {
        ++rows_seen;
        if (row_index == 0) return check_price_trace_header(fields, row_start);
        auto row = decode_price_trace_row(fields, num_dcs, row_index, row_start);
        if (!row.ok()) return row.error();
        auto d = row.value().dc;
        auto s = static_cast<std::size_t>(row.value().slot);
        if (series[d].size() <= s) {
          series[d].resize(s + 1, 0.0);
          seen[d].resize(s + 1, false);
        }
        series[d][s] = row.value().price;  // duplicates: last wins
        seen[d][s] = true;
        return {};
      });
  if (!st.ok()) return st.error();
  if (rows_seen == 0) return Error::make("empty price trace");
  for (std::size_t d = 0; d < num_dcs; ++d) {
    if (series[d].empty()) {
      return Error::make("price trace missing data for dc " + std::to_string(d));
    }
    for (std::size_t s = 0; s < seen[d].size(); ++s) {
      if (!seen[d][s]) {
        return Error::make("price trace has a gap at slot " + std::to_string(s) +
                           " for dc " + std::to_string(d));
      }
    }
  }
  return series;
}

Status write_price_trace(const std::string& path,
                         const std::vector<std::vector<double>>& series) {
  return write_file(path, price_trace_to_csv(series));
}

Status write_price_trace_streaming(const PriceModel& model,
                                   std::int64_t horizon,
                                   const std::string& path) {
  GREFAR_CHECK(horizon > 0);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error::make("cannot open file for writing: " + path);
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string>{"slot", "dc", "price"});
  std::vector<std::string> row(3);
  for (std::int64_t t = 0; t < horizon; ++t) {
    for (std::size_t dc = 0; dc < model.num_data_centers(); ++dc) {
      row[0] = std::to_string(t);
      row[1] = std::to_string(dc);
      row[2] = format_fixed(model.price(dc, t), 6);
      writer.write_row(row);
    }
  }
  if (!out) return Error::make("write failed: " + path);
  return {};
}

Result<std::vector<std::vector<double>>> read_price_trace(const std::string& path,
                                                          std::size_t num_dcs) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return price_trace_from_csv(content.value(), num_dcs);
}

}  // namespace grefar
