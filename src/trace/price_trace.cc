#include "trace/price_trace.h"

#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace grefar {

std::vector<std::vector<double>> materialize_prices(const PriceModel& model,
                                                    std::int64_t horizon) {
  GREFAR_CHECK(horizon >= 0);
  std::vector<std::vector<double>> out(model.num_data_centers());
  for (std::size_t dc = 0; dc < out.size(); ++dc) {
    out[dc].reserve(static_cast<std::size_t>(horizon));
    for (std::int64_t t = 0; t < horizon; ++t) out[dc].push_back(model.price(dc, t));
  }
  return out;
}

std::string price_trace_to_csv(const std::vector<std::vector<double>>& series) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"slot", "dc", "price"});
  if (series.empty()) return os.str();
  for (std::size_t t = 0; t < series.front().size(); ++t) {
    for (std::size_t dc = 0; dc < series.size(); ++dc) {
      writer.write_row(std::vector<std::string>{std::to_string(t), std::to_string(dc),
                                                format_fixed(series[dc][t], 6)});
    }
  }
  return os.str();
}

Result<std::vector<std::vector<double>>> price_trace_from_csv(std::string_view csv,
                                                              std::size_t num_dcs) {
  CsvReader reader;
  auto parsed = reader.parse(csv);
  if (!parsed.ok()) return parsed.error();
  const auto& rows = parsed.value();
  if (rows.empty()) return Error::make("empty price trace");
  if (rows.front() != std::vector<std::string>{"slot", "dc", "price"}) {
    return Error::make("price trace must start with header 'slot,dc,price'");
  }
  std::vector<std::vector<double>> series(num_dcs);
  std::vector<std::vector<bool>> seen(num_dcs);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 3) {
      return Error::make("price trace row " + std::to_string(r) + " needs 3 fields");
    }
    auto slot = parse_int(row[0]);
    auto dc = parse_int(row[1]);
    auto price = parse_double(row[2]);
    if (!slot.ok() || !dc.ok() || !price.ok()) {
      return Error::make("price trace row " + std::to_string(r) + " is malformed");
    }
    if (slot.value() < 0) {
      return Error::make("price trace row " + std::to_string(r) + " has negative slot");
    }
    if (dc.value() < 0 || static_cast<std::size_t>(dc.value()) >= num_dcs) {
      return Error::make("price trace row " + std::to_string(r) +
                         " has out-of-range dc id");
    }
    if (price.value() <= 0.0) {
      return Error::make("price trace row " + std::to_string(r) +
                         " has non-positive price");
    }
    auto d = static_cast<std::size_t>(dc.value());
    auto s = static_cast<std::size_t>(slot.value());
    if (series[d].size() <= s) {
      series[d].resize(s + 1, 0.0);
      seen[d].resize(s + 1, false);
    }
    series[d][s] = price.value();
    seen[d][s] = true;
  }
  for (std::size_t d = 0; d < num_dcs; ++d) {
    if (series[d].empty()) {
      return Error::make("price trace missing data for dc " + std::to_string(d));
    }
    for (std::size_t s = 0; s < seen[d].size(); ++s) {
      if (!seen[d][s]) {
        return Error::make("price trace has a gap at slot " + std::to_string(s) +
                           " for dc " + std::to_string(d));
      }
    }
  }
  return series;
}

Status write_price_trace(const std::string& path,
                         const std::vector<std::vector<double>>& series) {
  return write_file(path, price_trace_to_csv(series));
}

Result<std::vector<std::vector<double>>> read_price_trace(const std::string& path,
                                                          std::size_t num_dcs) {
  auto content = read_file(path);
  if (!content.ok()) return content.error();
  return price_trace_from_csv(content.value(), num_dcs);
}

}  // namespace grefar
