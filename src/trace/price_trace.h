// Price-trace CSV schema: hourly prices per data center, as published by
// markets like CAISO/FERC (paper refs [13][14]).
//
// Format (header required):
//   slot,dc,price
//   0,0,0.392
//   ...
// Every (slot, dc) must be present for slots [0, horizon).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "price/price_model.h"
#include "util/result.h"

namespace grefar {

/// Materializes a price model over [0, horizon) into series[dc][t].
std::vector<std::vector<double>> materialize_prices(const PriceModel& model,
                                                    std::int64_t horizon);

/// Serializes series[dc][t] to the price CSV format.
std::string price_trace_to_csv(const std::vector<std::vector<double>>& series);

/// Parses the price CSV format into series[dc][t] with `num_dcs` rows.
/// Fails on malformed rows, out-of-range dc ids, gaps, or non-positive prices.
Result<std::vector<std::vector<double>>> price_trace_from_csv(std::string_view csv,
                                                              std::size_t num_dcs);

Status write_price_trace(const std::string& path,
                         const std::vector<std::vector<double>>& series);

/// Streams `model` over [0, horizon) straight to `path` in O(1 slot)
/// memory (the price-trace analogue of write_job_trace_streaming).
Status write_price_trace_streaming(const PriceModel& model,
                                   std::int64_t horizon,
                                   const std::string& path);
Result<std::vector<std::vector<double>>> read_price_trace(const std::string& path,
                                                          std::size_t num_dcs);

}  // namespace grefar
