#include "trace/trace_schema.h"

#include <cmath>

#include "util/strings.h"

namespace grefar {
namespace {

const std::vector<std::string>& counts_header() {
  static const std::vector<std::string> h{"slot", "type", "count"};
  return h;
}

const std::vector<std::string>& valued_header() {
  static const std::vector<std::string> h{"slot",  "type",  "count",
                                          "value", "decay", "deadline"};
  return h;
}

std::string row_tag(const char* kind, std::uint64_t row_index,
                    const CsvPosition& row_start) {
  return std::string(kind) + " trace row " + std::to_string(row_index) +
         " at " + row_start.to_string();
}

}  // namespace

Status check_job_trace_header(const std::vector<std::string>& fields,
                              const CsvPosition& row_start) {
  if (fields != counts_header()) {
    return Error::make(
        "job trace must start with header 'slot,type,count' at " +
        row_start.to_string());
  }
  return {};
}

Result<JobTraceSchema> detect_job_trace_header(
    const std::vector<std::string>& fields, const CsvPosition& row_start) {
  if (fields == counts_header()) return JobTraceSchema::kCounts;
  if (fields == valued_header()) return JobTraceSchema::kValued;
  return Error::make(
      "job trace must start with header 'slot,type,count' (v1) or "
      "'slot,type,count,value,decay,deadline' (v2) at " +
      row_start.to_string());
}

Status check_price_trace_header(const std::vector<std::string>& fields,
                                const CsvPosition& row_start) {
  if (fields != std::vector<std::string>{"slot", "dc", "price"}) {
    return Error::make(
        "price trace must start with header 'slot,dc,price' at " +
        row_start.to_string());
  }
  return {};
}

Result<JobTraceRow> decode_job_trace_row(const std::vector<std::string>& fields,
                                         std::size_t num_types,
                                         std::uint64_t row_index,
                                         const CsvPosition& row_start) {
  if (fields.size() != 3) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " needs 3 fields");
  }
  auto slot = parse_int(fields[0]);
  auto type = parse_int(fields[1]);
  auto count = parse_int(fields[2]);
  if (!slot.ok() || !type.ok() || !count.ok()) {
    return Error::make(row_tag("job", row_index, row_start) + " is malformed");
  }
  if (slot.value() < 0 || count.value() < 0) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has negative value");
  }
  if (type.value() < 0 ||
      static_cast<std::size_t>(type.value()) >= num_types) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has out-of-range type id");
  }
  return JobTraceRow{slot.value(), static_cast<std::size_t>(type.value()),
                     count.value()};
}

Result<ValuedJobTraceRow> decode_valued_job_trace_row(
    const std::vector<std::string>& fields, std::size_t num_types,
    std::uint64_t row_index, const CsvPosition& row_start) {
  if (fields.size() != 6) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " needs 6 fields (v2 schema)");
  }
  auto slot = parse_int(fields[0]);
  auto type = parse_int(fields[1]);
  auto count = parse_int(fields[2]);
  auto value = parse_double(fields[3]);
  auto decay = parse_double(fields[4]);
  auto deadline = parse_int(fields[5]);
  if (!slot.ok() || !type.ok() || !count.ok() || !value.ok() || !decay.ok() ||
      !deadline.ok()) {
    return Error::make(row_tag("job", row_index, row_start) + " is malformed");
  }
  if (slot.value() < 0 || count.value() < 0) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has negative value");
  }
  if (type.value() < 0 ||
      static_cast<std::size_t>(type.value()) >= num_types) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has out-of-range type id");
  }
  if (!std::isfinite(value.value()) || value.value() < 0.0) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has a non-finite or negative job value");
  }
  if (!std::isfinite(decay.value()) || decay.value() < 0.0) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has a non-finite or negative decay rate");
  }
  if (deadline.value() < -1) {
    return Error::make(row_tag("job", row_index, row_start) +
                       " has a deadline below -1 (-1 means no deadline)");
  }
  return ValuedJobTraceRow{slot.value(),
                           static_cast<std::size_t>(type.value()),
                           count.value(),
                           value.value(),
                           decay.value(),
                           deadline.value()};
}

Result<PriceTraceRow> decode_price_trace_row(
    const std::vector<std::string>& fields, std::size_t num_dcs,
    std::uint64_t row_index, const CsvPosition& row_start) {
  if (fields.size() != 3) {
    return Error::make(row_tag("price", row_index, row_start) +
                       " needs 3 fields");
  }
  auto slot = parse_int(fields[0]);
  auto dc = parse_int(fields[1]);
  auto price = parse_double(fields[2]);
  if (!slot.ok() || !dc.ok() || !price.ok()) {
    return Error::make(row_tag("price", row_index, row_start) +
                       " is malformed");
  }
  if (slot.value() < 0) {
    return Error::make(row_tag("price", row_index, row_start) +
                       " has negative slot");
  }
  if (dc.value() < 0 || static_cast<std::size_t>(dc.value()) >= num_dcs) {
    return Error::make(row_tag("price", row_index, row_start) +
                       " has out-of-range dc id");
  }
  if (price.value() <= 0.0) {
    return Error::make(row_tag("price", row_index, row_start) +
                       " has non-positive price");
  }
  return PriceTraceRow{slot.value(), static_cast<std::size_t>(dc.value()),
                       price.value()};
}

}  // namespace grefar
