#include "trace/stream_csv.h"

#include <utility>

#include "util/check.h"

namespace grefar {

std::string CsvPosition::to_string() const {
  return "byte " + std::to_string(byte) + " (line " + std::to_string(line) +
         ", col " + std::to_string(column) + ")";
}

StreamCsvParser::StreamCsvParser(RowCallback on_row, CsvDialect dialect,
                                 CsvLimits limits)
    : on_row_(std::move(on_row)), dialect_(dialect), limits_(limits) {
  GREFAR_CHECK(static_cast<bool>(on_row_));
  GREFAR_CHECK(dialect_.separator != dialect_.quote);
  GREFAR_CHECK(dialect_.separator != '\n' && dialect_.quote != '\n');
}

Status StreamCsvParser::fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  return Error::make(error_);
}

Status StreamCsvParser::append_field_byte(char c) {
  if (limits_.max_field_bytes != 0 &&
      field_.size() >= limits_.max_field_bytes) {
    return fail("CSV field exceeds max_field_bytes=" +
                std::to_string(limits_.max_field_bytes) + " at " +
                pos_.to_string());
  }
  field_.push_back(c);
  return {};
}

Status StreamCsvParser::end_field() {
  if (limits_.max_fields_per_row != 0 &&
      row_width_ >= limits_.max_fields_per_row) {
    return fail("CSV row exceeds max_fields_per_row=" +
                std::to_string(limits_.max_fields_per_row) + " at " +
                pos_.to_string());
  }
  if (row_width_ < row_.size()) {
    row_[row_width_].swap(field_);
  } else {
    row_.push_back(std::move(field_));
  }
  field_.clear();
  ++row_width_;
  return {};
}

Status StreamCsvParser::end_row() {
  if (Status st = end_field(); !st.ok()) return st;
  if (limits_.max_rows != 0 && rows_emitted_ >= limits_.max_rows) {
    return fail("CSV document exceeds max_rows=" +
                std::to_string(limits_.max_rows) + " at " + pos_.to_string());
  }
  row_.resize(row_width_);
  if (Status st = on_row_(row_, rows_emitted_, row_start_); !st.ok()) {
    failed_ = true;
    error_ = st.error().message;
    return st;
  }
  ++rows_emitted_;
  row_width_ = 0;
  state_ = State::kRowStart;
  return {};
}

Status StreamCsvParser::feed(std::string_view chunk) {
  if (failed_) return Error::make(error_);
  if (finished_) return fail("StreamCsvParser::feed() after finish()");

  // advance() consumes the current byte's position; every byte of the input
  // passes through it exactly once, so byte/line/column stay exact across
  // arbitrary chunk boundaries.
  auto advance = [this](char c) {
    ++pos_.byte;
    if (c == '\n') {
      ++pos_.line;
      pos_.column = 1;
    } else {
      ++pos_.column;
    }
  };

  for (std::size_t i = 0; i < chunk.size(); ++i) {
    const char c = chunk[i];

    // A deferred '\r' (skip_bare_cr=false dialect) becomes a literal field
    // byte unless the byte after it is '\n'.
    if (cr_pending_) {
      cr_pending_ = false;
      if (c == '\n') {
        if (Status st = end_row(); !st.ok()) return st;
        advance(c);
        continue;
      }
      if (state_ == State::kQuoteEnd && dialect_.strict_quotes) {
        return fail("unexpected byte after closing quote at " +
                    cr_pos_.to_string());
      }
      if (state_ == State::kRowStart) row_start_ = cr_pos_;
      if (Status st = append_field_byte('\r'); !st.ok()) return st;
      state_ = State::kUnquoted;
      // fall through: `c` itself is processed below.
    }

    if (state_ == State::kRowStart) row_start_ = pos_;

    switch (state_) {
      case State::kRowStart:
      case State::kFieldStart:
        if (c == dialect_.quote) {
          quote_open_ = pos_;
          state_ = State::kQuoted;
        } else if (c == dialect_.separator) {
          if (Status st = end_field(); !st.ok()) return st;
          state_ = State::kFieldStart;
        } else if (c == '\n') {
          if (Status st = end_row(); !st.ok()) return st;
        } else if (c == '\r') {
          if (dialect_.skip_bare_cr) {
            // dropped; the row does not become dirty (kRowStart persists).
          } else {
            cr_pending_ = true;
            cr_pos_ = pos_;
          }
        } else {
          if (Status st = append_field_byte(c); !st.ok()) return st;
          state_ = State::kUnquoted;
        }
        break;

      case State::kUnquoted:
        if (c == dialect_.separator) {
          if (Status st = end_field(); !st.ok()) return st;
          state_ = State::kFieldStart;
        } else if (c == '\n') {
          if (Status st = end_row(); !st.ok()) return st;
        } else if (c == '\r') {
          if (dialect_.skip_bare_cr) {
            // dropped anywhere outside quotes (historical CsvReader rule).
          } else {
            cr_pending_ = true;
            cr_pos_ = pos_;
          }
        } else if (c == dialect_.quote && dialect_.strict_quotes) {
          return fail("quote opening mid-field at " + pos_.to_string());
        } else {
          if (Status st = append_field_byte(c); !st.ok()) return st;
        }
        break;

      case State::kQuoted:
        if (c == dialect_.quote) {
          state_ = State::kQuoteEnd;
        } else {
          if (Status st = append_field_byte(c); !st.ok()) return st;
        }
        break;

      case State::kQuoteEnd:
        if (c == dialect_.quote) {
          // Doubled quote: one literal quote byte, still inside the section.
          if (Status st = append_field_byte(c); !st.ok()) return st;
          state_ = State::kQuoted;
        } else if (c == dialect_.separator) {
          if (Status st = end_field(); !st.ok()) return st;
          state_ = State::kFieldStart;
        } else if (c == '\n') {
          if (Status st = end_row(); !st.ok()) return st;
        } else if (c == '\r') {
          if (dialect_.skip_bare_cr) {
            // dropped; still "just closed a quote".
          } else {
            cr_pending_ = true;
            cr_pos_ = pos_;
          }
        } else if (dialect_.strict_quotes) {
          return fail("unexpected byte after closing quote at " +
                      pos_.to_string());
        } else {
          // Lenient concatenation: "a"x parses as the field ax.
          if (Status st = append_field_byte(c); !st.ok()) return st;
          state_ = State::kUnquoted;
        }
        break;
    }
    advance(c);
  }
  return {};
}

Status StreamCsvParser::finish() {
  if (failed_) return Error::make(error_);
  if (finished_) return {};
  finished_ = true;

  if (cr_pending_) {
    cr_pending_ = false;
    if (state_ == State::kQuoteEnd && dialect_.strict_quotes) {
      return fail("unexpected byte after closing quote at " +
                  cr_pos_.to_string());
    }
    if (state_ == State::kRowStart) row_start_ = cr_pos_;
    if (Status st = append_field_byte('\r'); !st.ok()) return st;
    state_ = State::kUnquoted;
  }
  if (state_ == State::kQuoted) {
    return fail("unterminated quoted field opened at " +
                quote_open_.to_string());
  }
  // A final row without a trailing newline is emitted iff it consumed any
  // bytes (kRowStart means nothing since the last terminator).
  if (state_ != State::kRowStart) {
    if (Status st = end_row(); !st.ok()) return st;
  }
  return {};
}

Status parse_csv(std::string_view text,
                 const StreamCsvParser::RowCallback& on_row, CsvDialect dialect,
                 CsvLimits limits) {
  StreamCsvParser parser(on_row, dialect, limits);
  if (Status st = parser.feed(text); !st.ok()) return st;
  return parser.finish();
}

}  // namespace grefar
