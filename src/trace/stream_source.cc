#include "trace/stream_source.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "trace/trace_schema.h"
#include "util/check.h"

namespace grefar {

// ---------------------------------------------------------------------------
// StreamingJobTraceSource

StreamingJobTraceSource::StreamingJobTraceSource(
    std::unique_ptr<std::istream> in, std::size_t num_types,
    StreamSourceOptions options)
    : in_(std::move(in)), num_types_(num_types), options_(options) {
  GREFAR_CHECK(in_ != nullptr);
  GREFAR_CHECK(options_.reorder_window >= 0);
  GREFAR_CHECK(options_.chunk_bytes > 0);
  chunk_.resize(options_.chunk_bytes);
  parser_ = std::make_unique<StreamCsvParser>(
      [this](const std::vector<std::string>& fields, std::uint64_t row_index,
             const CsvPosition& row_start) {
        return on_row(fields, row_index, row_start);
      },
      CsvDialect{}, options_.limits);
  // Prime far enough to classify the header so schema() works immediately;
  // any error found here stays sticky and surfaces from the first pull.
  while (!eof_ && rows_total_ == 0 && !error_) {
    if (Status st = pump_chunk(); !st.ok()) {
      error_ = std::make_unique<Error>(st.error());
    }
  }
}

StreamingJobTraceSource::StreamingJobTraceSource(const std::string& path,
                                                 std::size_t num_types,
                                                 StreamSourceOptions options)
    : StreamingJobTraceSource(
          std::make_unique<std::ifstream>(path, std::ios::binary), num_types,
          options) {
  // The delegated constructor already primed the header, possibly reading a
  // small file to EOF (which sets failbit) — only a failed open is an error.
  if (!static_cast<std::ifstream*>(in_.get())->is_open()) {
    error_ = std::make_unique<Error>(Error::make("cannot open file: " + path));
  }
}

Status StreamingJobTraceSource::on_row(const std::vector<std::string>& fields,
                                       std::uint64_t row_index,
                                       const CsvPosition& row_start) {
  ++rows_total_;
  if (row_index == 0) {
    auto schema = detect_job_trace_header(fields, row_start);
    if (!schema.ok()) return schema.error();
    schema_ = schema.value();
    return {};
  }
  std::int64_t slot = 0;
  ArrivalBatch batch;
  if (schema_ == JobTraceSchema::kValued) {
    auto row = decode_valued_job_trace_row(fields, num_types_, row_index,
                                           row_start);
    if (!row.ok()) return row.error();
    slot = row.value().slot;
    batch.type = row.value().type;
    batch.count = row.value().count;
    batch.value = row.value().value;
    batch.decay_rate = row.value().decay;
    batch.deadline = row.value().deadline < 0 ? kNoDeadline : row.value().deadline;
  } else {
    auto row = decode_job_trace_row(fields, num_types_, row_index, row_start);
    if (!row.ok()) return row.error();
    slot = row.value().slot;
    batch.type = row.value().type;
    batch.count = row.value().count;
    // Annotations keep their "defer to the JobType" sentinels.
  }
  if (slot < next_) {
    return Error::make(
        "job trace row " + std::to_string(row_index) + " at " +
        row_start.to_string() + " is outside the reorder window (slot " +
        std::to_string(slot) + " already emitted, window " +
        std::to_string(options_.reorder_window) + ")");
  }
  max_seen_ = std::max(max_seen_, slot);
  auto [it, inserted] = pending_.try_emplace(slot);
  it->second.push_back(batch);
  if (inserted) high_water_ = std::max(high_water_, pending_.size());
  ++data_rows_;
  return {};
}

Status StreamingJobTraceSource::pump_chunk() {
  in_->read(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
  const std::streamsize got = in_->gcount();
  if (got > 0) {
    if (Status st = parser_->feed(
            std::string_view(chunk_.data(), static_cast<std::size_t>(got)));
        !st.ok()) {
      return st;
    }
  }
  if (in_->eof() || got == 0) {
    eof_ = true;
    return parser_->finish();
  }
  if (in_->bad()) return Error::make("read error in job trace stream");
  return {};
}

Result<bool> StreamingJobTraceSource::advance_to_next_slot() {
  if (error_) return *error_;
  // Pull bytes until slot `next_` is provably complete (a row beyond
  // next_ + window has been seen) or the input ends.
  while (!eof_ && max_seen_ <= next_ + options_.reorder_window) {
    if (Status st = pump_chunk(); !st.ok()) {
      error_ = std::make_unique<Error>(st.error());
      return *error_;
    }
  }
  if (eof_ && data_rows_ == 0) {
    error_ = std::make_unique<Error>(
        rows_total_ == 0 ? Error::make("empty job trace")
                         : Error::make("job trace has no data rows"));
    return *error_;
  }
  if (next_ > max_seen_) return false;  // clean end of stream
  return true;
}

Result<bool> StreamingJobTraceSource::next_slot_into(
    std::vector<std::int64_t>& counts) {
  GREFAR_CHECK_MSG(emit_style_ != EmitStyle::kBatches,
                   "cannot mix next_slot_into with next_slot_batches_into");
  emit_style_ = EmitStyle::kCounts;
  auto ready = advance_to_next_slot();
  if (!ready.ok() || !ready.value()) return ready;
  counts.assign(num_types_, 0);
  auto it = pending_.begin();
  if (it != pending_.end() && it->first == next_) {
    // Densify: duplicate (slot, type) rows accumulate, matching the
    // materializing reader bit-for-bit.
    for (const ArrivalBatch& b : it->second) counts[b.type] += b.count;
    pending_.erase(it);
  }
  ++next_;
  return true;
}

Result<bool> StreamingJobTraceSource::next_slot_batches_into(
    std::vector<ArrivalBatch>& batches) {
  GREFAR_CHECK_MSG(emit_style_ != EmitStyle::kCounts,
                   "cannot mix next_slot_batches_into with next_slot_into");
  emit_style_ = EmitStyle::kBatches;
  auto ready = advance_to_next_slot();
  if (!ready.ok() || !ready.value()) return ready;
  batches.clear();
  auto it = pending_.begin();
  if (it != pending_.end() && it->first == next_) {
    batches.assign(it->second.begin(), it->second.end());
    pending_.erase(it);
  }
  ++next_;
  return true;
}

// ---------------------------------------------------------------------------
// StreamingPriceTraceSource

StreamingPriceTraceSource::StreamingPriceTraceSource(
    std::unique_ptr<std::istream> in, std::size_t num_dcs,
    StreamSourceOptions options)
    : in_(std::move(in)), num_dcs_(num_dcs), options_(options) {
  GREFAR_CHECK(in_ != nullptr);
  GREFAR_CHECK(options_.reorder_window >= 0);
  GREFAR_CHECK(options_.chunk_bytes > 0);
  chunk_.resize(options_.chunk_bytes);
  parser_ = std::make_unique<StreamCsvParser>(
      [this](const std::vector<std::string>& fields, std::uint64_t row_index,
             const CsvPosition& row_start) {
        return on_row(fields, row_index, row_start);
      },
      CsvDialect{}, options_.limits);
}

StreamingPriceTraceSource::StreamingPriceTraceSource(
    const std::string& path, std::size_t num_dcs, StreamSourceOptions options)
    : StreamingPriceTraceSource(
          std::make_unique<std::ifstream>(path, std::ios::binary), num_dcs,
          options) {
  if (!*static_cast<std::ifstream*>(in_.get())) {
    error_ = std::make_unique<Error>(Error::make("cannot open file: " + path));
  }
}

Status StreamingPriceTraceSource::on_row(
    const std::vector<std::string>& fields, std::uint64_t row_index,
    const CsvPosition& row_start) {
  ++rows_total_;
  if (row_index == 0) return check_price_trace_header(fields, row_start);
  auto row = decode_price_trace_row(fields, num_dcs_, row_index, row_start);
  if (!row.ok()) return row.error();
  const std::int64_t slot = row.value().slot;
  if (slot < next_) {
    return Error::make(
        "price trace row " + std::to_string(row_index) + " at " +
        row_start.to_string() + " is outside the reorder window (slot " +
        std::to_string(slot) + " already emitted, window " +
        std::to_string(options_.reorder_window) + ")");
  }
  max_seen_ = std::max(max_seen_, slot);
  auto [it, inserted] = pending_.try_emplace(slot);
  if (inserted) {
    it->second.prices.assign(num_dcs_, 0.0);
    it->second.seen.assign(num_dcs_, false);
    high_water_ = std::max(high_water_, pending_.size());
  }
  const std::size_t d = row.value().dc;
  it->second.prices[d] = row.value().price;  // duplicates: last wins
  if (!it->second.seen[d]) {
    it->second.seen[d] = true;
    ++it->second.seen_count;
  }
  ++data_rows_;
  return {};
}

Status StreamingPriceTraceSource::pump_chunk() {
  in_->read(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
  const std::streamsize got = in_->gcount();
  if (got > 0) {
    if (Status st = parser_->feed(
            std::string_view(chunk_.data(), static_cast<std::size_t>(got)));
        !st.ok()) {
      return st;
    }
  }
  if (in_->eof() || got == 0) {
    eof_ = true;
    return parser_->finish();
  }
  if (in_->bad()) return Error::make("read error in price trace stream");
  return {};
}

Result<bool> StreamingPriceTraceSource::next_slot_into(
    std::vector<double>& prices) {
  if (error_) return *error_;
  while (!eof_ && max_seen_ <= next_ + options_.reorder_window) {
    if (Status st = pump_chunk(); !st.ok()) {
      error_ = std::make_unique<Error>(st.error());
      return *error_;
    }
  }
  if (eof_ && data_rows_ == 0 && num_dcs_ > 0) {
    error_ = std::make_unique<Error>(
        rows_total_ == 0
            ? Error::make("empty price trace")
            : Error::make("price trace missing data for dc 0"));
    return *error_;
  }
  if (next_ > max_seen_) return false;  // clean end of stream
  auto it = pending_.begin();
  if (it == pending_.end() || it->first != next_ ||
      it->second.seen_count != num_dcs_) {
    std::size_t missing_dc = 0;
    if (it != pending_.end() && it->first == next_) {
      while (missing_dc < num_dcs_ && it->second.seen[missing_dc]) {
        ++missing_dc;
      }
    }
    error_ = std::make_unique<Error>(Error::make(
        "price trace has a gap at slot " + std::to_string(next_) +
        " for dc " + std::to_string(missing_dc)));
    return *error_;
  }
  prices.assign(num_dcs_, 0.0);
  std::copy(it->second.prices.begin(), it->second.prices.end(),
            prices.begin());
  pending_.erase(it);
  ++next_;
  return true;
}

}  // namespace grefar
