// Streaming per-slot trace sources: pull arrivals / prices for one slot at a
// time from a CSV stream without ever materializing the horizon.
//
// Both sources wrap the one StreamCsvParser (stream_csv.h) + the shared
// schema decoders (trace_schema.h) and keep an O(reorder_window) buffer:
// input rows may appear out of slot order by at most `reorder_window` slots
// (0 = slot-sorted input; rows for the same slot may always repeat). Slot t
// is emitted once a row for a slot beyond t + window has been seen — or at
// end of input — so peak memory is O(window + one read chunk), independent
// of the trace length. A row for an already-emitted slot fails with its
// byte offset instead of being silently dropped.
//
// Semantics match the materializing readers bit-for-bit (golden-equivalence
// tested over every checked-in trace file):
//   - job traces: either schema version (trace_schema.h), detected from the
//     header; counts for duplicate (slot,type) rows accumulate; slots
//     absent from the file yield all-zero counts; the emitted range is
//     [0, max slot in file]; a header-only file is "no data rows".
//   - price traces: every (slot,dc) must be present for each emitted slot
//     (duplicates: last wins); gaps and non-positive prices are errors.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/stream_csv.h"
#include "trace/trace_schema.h"
#include "util/result.h"
#include "workload/arrival_process.h"

namespace grefar {

struct StreamSourceOptions {
  /// Rows may arrive out of slot order by at most this many slots.
  std::int64_t reorder_window = 0;
  /// Bytes per read(2)-style pull from the underlying stream.
  std::size_t chunk_bytes = 64 * 1024;
  /// Forwarded to the CSV parser (field/row/total resource limits).
  CsvLimits limits;
};

/// Streams a job trace (either schema version, detected from the header —
/// trace_schema.h) one slot at a time, as dense counts or as annotated
/// arrival batches. Not copyable/movable: the parser callback captures
/// `this`. The constructor reads ahead just far enough to classify the
/// header, so schema() is valid immediately (read errors stay sticky and
/// surface from the first next_slot call).
class StreamingJobTraceSource {
 public:
  /// Reads from an arbitrary stream (tests use std::istringstream).
  StreamingJobTraceSource(std::unique_ptr<std::istream> in,
                          std::size_t num_types,
                          StreamSourceOptions options = {});
  /// Opens `path`; open failures surface from the first next_slot_into().
  StreamingJobTraceSource(const std::string& path, std::size_t num_types,
                          StreamSourceOptions options = {});

  StreamingJobTraceSource(const StreamingJobTraceSource&) = delete;
  StreamingJobTraceSource& operator=(const StreamingJobTraceSource&) = delete;

  /// Emits the next slot's counts (sized num_types) into `counts`.
  /// Returns true on a slot, false on clean end of stream; errors are
  /// sticky. No allocation on the steady-state path once `counts` and the
  /// reorder buffer have reached capacity. Works for either schema (value
  /// annotations are simply dropped).
  Result<bool> next_slot_into(std::vector<std::int64_t>& counts);

  /// Emits the next slot's arrival batches (file order; one per data row)
  /// into `batches` — empty for slots absent from the file. v1 rows yield
  /// batches whose annotations defer to the JobType defaults. Same
  /// true/false/sticky-error contract as next_slot_into; the two emit
  /// styles may not be mixed on one source (contract-checked).
  Result<bool> next_slot_batches_into(std::vector<ArrivalBatch>& batches);

  /// Schema of the underlying trace (valid from construction; kCounts when
  /// the stream is empty or unreadable — the error surfaces on first pull).
  JobTraceSchema schema() const { return schema_; }
  /// Convenience: true when the trace carries value/deadline annotations.
  bool valued() const { return schema_ == JobTraceSchema::kValued; }

  std::size_t num_types() const { return num_types_; }
  /// Slot the next successful next_slot_into() call will emit.
  std::int64_t next_slot() const { return next_; }
  /// Peak number of slots simultaneously buffered (reorder diagnostics).
  std::size_t buffered_slots_high_water() const { return high_water_; }

 private:
  enum class EmitStyle { kUnset, kCounts, kBatches };

  Status on_row(const std::vector<std::string>& fields,
                std::uint64_t row_index, const CsvPosition& row_start);
  Status pump_chunk();
  /// Shared pull loop: pumps until slot next_ is provably complete, then
  /// reports ready (true), clean end (false), or the sticky error.
  Result<bool> advance_to_next_slot();

  std::unique_ptr<std::istream> in_;
  std::size_t num_types_;
  StreamSourceOptions options_;
  std::unique_ptr<StreamCsvParser> parser_;
  std::vector<char> chunk_;
  /// Buffered rows per pending slot, in file order (both schemas store
  /// batches; densification happens at emit time for next_slot_into).
  std::map<std::int64_t, std::vector<ArrivalBatch>> pending_;
  JobTraceSchema schema_ = JobTraceSchema::kCounts;
  EmitStyle emit_style_ = EmitStyle::kUnset;
  std::int64_t next_ = 0;
  std::int64_t max_seen_ = -1;
  std::uint64_t rows_total_ = 0;
  std::uint64_t data_rows_ = 0;
  std::size_t high_water_ = 0;
  bool eof_ = false;
  std::unique_ptr<Error> error_;  // sticky
};

/// Streams a "slot,dc,price" price trace one slot of per-DC prices at a
/// time. Same contract as StreamingJobTraceSource.
class StreamingPriceTraceSource {
 public:
  StreamingPriceTraceSource(std::unique_ptr<std::istream> in,
                            std::size_t num_dcs,
                            StreamSourceOptions options = {});
  StreamingPriceTraceSource(const std::string& path, std::size_t num_dcs,
                            StreamSourceOptions options = {});

  StreamingPriceTraceSource(const StreamingPriceTraceSource&) = delete;
  StreamingPriceTraceSource& operator=(const StreamingPriceTraceSource&) = delete;

  /// Emits the next slot's prices (sized num_dcs) into `prices`.
  Result<bool> next_slot_into(std::vector<double>& prices);

  std::size_t num_data_centers() const { return num_dcs_; }
  std::int64_t next_slot() const { return next_; }
  std::size_t buffered_slots_high_water() const { return high_water_; }

 private:
  struct PendingSlot {
    std::vector<double> prices;
    std::vector<bool> seen;
    std::size_t seen_count = 0;
  };

  Status on_row(const std::vector<std::string>& fields,
                std::uint64_t row_index, const CsvPosition& row_start);
  Status pump_chunk();

  std::unique_ptr<std::istream> in_;
  std::size_t num_dcs_;
  StreamSourceOptions options_;
  std::unique_ptr<StreamCsvParser> parser_;
  std::vector<char> chunk_;
  std::map<std::int64_t, PendingSlot> pending_;
  std::int64_t next_ = 0;
  std::int64_t max_seen_ = -1;
  std::uint64_t rows_total_ = 0;
  std::uint64_t data_rows_ = 0;
  std::size_t high_water_ = 0;
  bool eof_ = false;
  std::unique_ptr<Error> error_;  // sticky
};

}  // namespace grefar
