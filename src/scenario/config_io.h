// JSON (de)serialization for cluster and scheduler configuration.
//
// Lets deployments and experiments be described as data instead of code:
//
//   {
//     "server_types": [{"name": "gen-a", "speed": 1.0, "busy_power": 1.0}],
//     "data_centers": [{"name": "dc1", "installed": [120, 0, 0]}],
//     "accounts":     [{"name": "org1", "gamma": 0.4}],
//     "job_types":    [{"name": "org1-small", "work": 1.5,
//                       "eligible_dcs": [0, 1, 2], "account": 0}],
//     "grefar":       {"V": 7.5, "beta": 100}
//   }
//
// Parsing is strict: unknown fields are rejected so typos in experiment
// configs fail loudly rather than silently falling back to defaults.
#pragma once

#include <string>

#include "core/grefar.h"
#include "sim/cluster.h"
#include "util/json.h"
#include "util/result.h"

namespace grefar {

/// Parses a ClusterConfig from its JSON object form; validates the result.
Result<ClusterConfig> cluster_config_from_json(const JsonValue& json);

/// Serializes a ClusterConfig to its JSON object form (round-trips).
JsonValue cluster_config_to_json(const ClusterConfig& config);

/// Parses GreFarParams from a JSON object ({"V": 7.5, "beta": 100, ...});
/// missing fields keep their defaults, unknown fields fail.
Result<GreFarParams> grefar_params_from_json(const JsonValue& json);

/// Serializes GreFarParams.
JsonValue grefar_params_to_json(const GreFarParams& params);

/// Reads a document holding {"cluster": ..., "grefar": ...}. The "grefar"
/// key is optional (defaults apply).
struct ExperimentConfig {
  ClusterConfig cluster;
  GreFarParams grefar;
};
Result<ExperimentConfig> experiment_config_from_json(const JsonValue& json);
Result<ExperimentConfig> load_experiment_config(const std::string& path);

/// Writes {"cluster": ..., "grefar": ...} pretty-printed to `path`.
Status save_experiment_config(const std::string& path, const ExperimentConfig& config);

}  // namespace grefar
