// The admission-ablation scenario: a deliberately overloaded 2-DC cluster
// whose arrivals carry heterogeneous per-batch value densities, decay curves
// and deadlines — the regime where the admission policies of arXiv
// 1404.4865 / 1509.03699 earn their keep.
//
// Offered work averages ~1.8x the installed service capacity, and every job
// type decays and expires, so admit-all drowns: queues grow, delay eats the
// decayed value, and deadline expiry forfeits the rest. Value densities are
// drawn from a bimodal mixture (high ~[1.5, 4.0], low ~[0.1, 0.8] value per
// unit work) whose high half alone fits within capacity, so a density
// threshold near admission_scenario_theta() keeps the profitable work and
// realizes far more value than admitting everything.
//
// Arrivals are a pre-generated ValuedTableArrivals table, deterministic per
// seed via Rng::fork(slot) — bit-identical across runs, shards and replay
// order, per the DESIGN.md §11 contract.
#pragma once

#include <cstdint>

#include "core/admission.h"
#include "scenario/paper_scenario.h"

namespace grefar {

/// Slots in the pre-generated valued arrival table; longer horizons wrap
/// (ValuedTableArrivals semantics).
inline constexpr std::int64_t kAdmissionScenarioSlots = 512;

/// The deterministic value-density threshold that separates the scenario's
/// bimodal density mixture (the randomized policy hedges log-uniformly over
/// [theta/4, theta*4] around it — core/admission.h).
double admission_scenario_theta();

/// Builds the overloaded valued scenario with no admission policy attached
/// (scenario.admission == nullptr, i.e. admit-all). Deterministic per seed.
PaperScenario make_admission_scenario(std::uint64_t seed);

/// Same scenario with `kind` attached at the recommended theta, keyed on the
/// scenario seed — the form the ablation bench and smoke tests sweep over.
PaperScenario make_admission_scenario(std::uint64_t seed,
                                      AdmissionPolicyKind kind);

}  // namespace grefar
