// An ingest-bound scenario for serve-mode benchmarking (bench/serve_latency)
// and the service-loop tests: parameterized in data centers and job types so
// CSV ingest work (O(active types) rows per slot) and solve work (O(N x J))
// can be balanced against each other — the regime where pipelining ingest,
// solve and flush actually overlaps useful work.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/paper_scenario.h"
#include "util/result.h"

namespace grefar {

/// Builds a scenario with `num_dcs` data centers (one server generation
/// each, cycling three efficiency archetypes) and `num_types` job types
/// (all-DC eligible, four accounts), sized so total arrival work stays
/// below ~70% of worst-case capacity regardless of the dimensions.
/// Deterministic per seed.
PaperScenario make_serve_scenario(std::size_t num_dcs, std::size_t num_types,
                                  std::uint64_t seed);

/// Streams `horizon` slots of the scenario's arrivals and prices to
/// `<dir>/jobs.csv` and `<dir>/prices.csv` in O(1 slot) memory (so trace
/// generation does not distort a subsequent peak-RSS measurement).
/// Returns the two paths via out-params.
Status write_serve_traces(const PaperScenario& scenario, std::int64_t horizon,
                          const std::string& dir, std::string& jobs_path,
                          std::string& prices_path);

}  // namespace grefar
