#include "scenario/config_io.h"

#include <cmath>
#include <set>

#include "util/csv.h"

namespace grefar {

namespace {

/// Rejects object keys outside `allowed` (strict parsing).
Status check_keys(const JsonValue& obj, const std::set<std::string>& allowed,
                  const std::string& context) {
  if (!obj.is_object()) return Error::make(context + " must be a JSON object");
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (allowed.find(key) == allowed.end()) {
      return Error::make(context + ": unknown field '" + key + "'");
    }
  }
  return {};
}

Result<double> require_number(const JsonValue& obj, const std::string& key,
                              const std::string& context) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return Error::make(context + ": missing field '" + key + "'");
  if (!v->is_number()) return Error::make(context + ": '" + key + "' must be a number");
  return v->as_number();
}

Result<std::string> require_string(const JsonValue& obj, const std::string& key,
                                   const std::string& context) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return Error::make(context + ": missing field '" + key + "'");
  if (!v->is_string()) return Error::make(context + ": '" + key + "' must be a string");
  return v->as_string();
}

Result<const JsonArray*> require_array(const JsonValue& obj, const std::string& key,
                                       const std::string& context) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return Error::make(context + ": missing field '" + key + "'");
  if (!v->is_array()) return Error::make(context + ": '" + key + "' must be an array");
  return &v->as_array();
}

}  // namespace

Result<ClusterConfig> cluster_config_from_json(const JsonValue& json) {
  if (auto st = check_keys(
          json, {"server_types", "data_centers", "accounts", "job_types", "tariffs"},
          "cluster");
      !st.ok()) {
    return st.error();
  }
  ClusterConfig config;

  auto server_types = require_array(json, "server_types", "cluster");
  if (!server_types.ok()) return server_types.error();
  for (const auto& entry : *server_types.value()) {
    if (auto st = check_keys(entry, {"name", "speed", "busy_power"}, "server_type");
        !st.ok()) {
      return st.error();
    }
    ServerType st_out;
    auto name = require_string(entry, "name", "server_type");
    auto speed = require_number(entry, "speed", "server_type");
    auto power = require_number(entry, "busy_power", "server_type");
    if (!name.ok()) return name.error();
    if (!speed.ok()) return speed.error();
    if (!power.ok()) return power.error();
    st_out.name = name.value();
    st_out.speed = speed.value();
    st_out.busy_power = power.value();
    config.server_types.push_back(std::move(st_out));
  }

  auto data_centers = require_array(json, "data_centers", "cluster");
  if (!data_centers.ok()) return data_centers.error();
  for (const auto& entry : *data_centers.value()) {
    if (auto st = check_keys(entry, {"name", "installed"}, "data_center"); !st.ok()) {
      return st.error();
    }
    DataCenterConfig dc;
    auto name = require_string(entry, "name", "data_center");
    if (!name.ok()) return name.error();
    dc.name = name.value();
    auto installed = require_array(entry, "installed", "data_center");
    if (!installed.ok()) return installed.error();
    for (const auto& count : *installed.value()) {
      if (!count.is_number()) {
        return Error::make("data_center '" + dc.name + "': installed counts must be numbers");
      }
      dc.installed.push_back(static_cast<std::int64_t>(count.as_number()));
    }
    config.data_centers.push_back(std::move(dc));
  }

  auto accounts = require_array(json, "accounts", "cluster");
  if (!accounts.ok()) return accounts.error();
  for (const auto& entry : *accounts.value()) {
    if (auto st = check_keys(entry, {"name", "gamma"}, "account"); !st.ok()) {
      return st.error();
    }
    Account account;
    auto name = require_string(entry, "name", "account");
    auto gamma = require_number(entry, "gamma", "account");
    if (!name.ok()) return name.error();
    if (!gamma.ok()) return gamma.error();
    account.name = name.value();
    account.gamma = gamma.value();
    config.accounts.push_back(std::move(account));
  }

  auto job_types = require_array(json, "job_types", "cluster");
  if (!job_types.ok()) return job_types.error();
  for (const auto& entry : *job_types.value()) {
    if (auto st = check_keys(entry,
                             {"name", "work", "eligible_dcs", "account", "max_rate"},
                             "job_type");
        !st.ok()) {
      return st.error();
    }
    JobType jt;
    auto name = require_string(entry, "name", "job_type");
    auto work = require_number(entry, "work", "job_type");
    auto account = require_number(entry, "account", "job_type");
    if (!name.ok()) return name.error();
    if (!work.ok()) return work.error();
    if (!account.ok()) return account.error();
    jt.name = name.value();
    jt.work = work.value();
    jt.account = static_cast<AccountId>(account.value());
    if (const JsonValue* max_rate = entry.find("max_rate"); max_rate != nullptr) {
      if (!max_rate->is_number()) {
        return Error::make("job_type '" + jt.name + "': max_rate must be a number");
      }
      jt.max_rate = max_rate->as_number();
    }
    auto eligible = require_array(entry, "eligible_dcs", "job_type");
    if (!eligible.ok()) return eligible.error();
    for (const auto& dc : *eligible.value()) {
      if (!dc.is_number()) {
        return Error::make("job_type '" + jt.name + "': eligible_dcs must be numbers");
      }
      jt.eligible_dcs.push_back(static_cast<DataCenterId>(dc.as_number()));
    }
    config.job_types.push_back(std::move(jt));
  }

  if (const JsonValue* tariffs = json.find("tariffs"); tariffs != nullptr) {
    if (!tariffs->is_array()) return Error::make("cluster: 'tariffs' must be an array");
    for (const auto& entry : tariffs->as_array()) {
      if (!entry.is_array()) {
        return Error::make("tariffs: each data center's tariff must be a tier array");
      }
      std::vector<TieredTariff::Tier> tiers;
      for (const auto& tier_json : entry.as_array()) {
        if (auto st = check_keys(tier_json, {"upto", "rate"}, "tariff tier"); !st.ok()) {
          return st.error();
        }
        TieredTariff::Tier tier;
        auto rate = require_number(tier_json, "rate", "tariff tier");
        if (!rate.ok()) return rate.error();
        tier.rate = rate.value();
        if (const JsonValue* upto = tier_json.find("upto"); upto != nullptr) {
          if (!upto->is_number()) {
            return Error::make("tariff tier: 'upto' must be a number (omit for inf)");
          }
          tier.upto = upto->as_number();
        }
        tiers.push_back(tier);
      }
      try {
        config.tariffs.emplace_back(std::move(tiers));
      } catch (const ContractViolation& violation) {
        return Error::make(std::string("invalid tariff: ") + violation.what());
      }
    }
  }

  try {
    config.validate();
  } catch (const ContractViolation& violation) {
    return Error::make(std::string("invalid cluster config: ") + violation.what());
  }
  return config;
}

JsonValue cluster_config_to_json(const ClusterConfig& config) {
  JsonObject root;
  JsonArray server_types;
  for (const auto& st : config.server_types) {
    JsonObject entry;
    entry["name"] = st.name;
    entry["speed"] = st.speed;
    entry["busy_power"] = st.busy_power;
    server_types.emplace_back(std::move(entry));
  }
  root["server_types"] = std::move(server_types);

  JsonArray data_centers;
  for (const auto& dc : config.data_centers) {
    JsonObject entry;
    entry["name"] = dc.name;
    JsonArray installed;
    for (auto count : dc.installed) installed.emplace_back(count);
    entry["installed"] = std::move(installed);
    data_centers.emplace_back(std::move(entry));
  }
  root["data_centers"] = std::move(data_centers);

  JsonArray accounts;
  for (const auto& account : config.accounts) {
    JsonObject entry;
    entry["name"] = account.name;
    entry["gamma"] = account.gamma;
    accounts.emplace_back(std::move(entry));
  }
  root["accounts"] = std::move(accounts);

  JsonArray job_types;
  for (const auto& jt : config.job_types) {
    JsonObject entry;
    entry["name"] = jt.name;
    entry["work"] = jt.work;
    entry["account"] = static_cast<std::int64_t>(jt.account);
    if (std::isfinite(jt.max_rate)) entry["max_rate"] = jt.max_rate;
    JsonArray eligible;
    for (auto dc : jt.eligible_dcs) eligible.emplace_back(static_cast<std::int64_t>(dc));
    entry["eligible_dcs"] = std::move(eligible);
    job_types.emplace_back(std::move(entry));
  }
  root["job_types"] = std::move(job_types);

  if (!config.tariffs.empty()) {
    JsonArray tariffs;
    for (const auto& tariff : config.tariffs) {
      JsonArray tiers;
      for (const auto& tier : tariff.tiers()) {
        JsonObject entry;
        if (std::isfinite(tier.upto)) entry["upto"] = tier.upto;
        entry["rate"] = tier.rate;
        tiers.emplace_back(std::move(entry));
      }
      tariffs.emplace_back(std::move(tiers));
    }
    root["tariffs"] = std::move(tariffs);
  }
  return root;
}

Result<GreFarParams> grefar_params_from_json(const JsonValue& json) {
  if (auto st = check_keys(json,
                           {"V", "beta", "r_max", "h_max", "clamp_to_queue",
                            "process_after_routing"},
                           "grefar");
      !st.ok()) {
    return st.error();
  }
  GreFarParams params;
  params.V = json.number_or("V", params.V);
  params.beta = json.number_or("beta", params.beta);
  params.r_max = json.number_or("r_max", params.r_max);
  params.h_max = json.number_or("h_max", params.h_max);
  params.clamp_to_queue = json.bool_or("clamp_to_queue", params.clamp_to_queue);
  params.process_after_routing =
      json.bool_or("process_after_routing", params.process_after_routing);
  if (params.V < 0.0 || params.beta < 0.0 || params.r_max < 0.0 || params.h_max < 0.0) {
    return Error::make("grefar: V/beta/r_max/h_max must be >= 0");
  }
  return params;
}

JsonValue grefar_params_to_json(const GreFarParams& params) {
  JsonObject obj;
  obj["V"] = params.V;
  obj["beta"] = params.beta;
  obj["r_max"] = params.r_max;
  obj["h_max"] = params.h_max;
  obj["clamp_to_queue"] = params.clamp_to_queue;
  obj["process_after_routing"] = params.process_after_routing;
  return obj;
}

Result<ExperimentConfig> experiment_config_from_json(const JsonValue& json) {
  if (auto st = check_keys(json, {"cluster", "grefar"}, "experiment"); !st.ok()) {
    return st.error();
  }
  const JsonValue* cluster = json.find("cluster");
  if (cluster == nullptr) return Error::make("experiment: missing field 'cluster'");
  auto parsed_cluster = cluster_config_from_json(*cluster);
  if (!parsed_cluster.ok()) return parsed_cluster.error();

  ExperimentConfig config;
  config.cluster = std::move(parsed_cluster).value();
  if (const JsonValue* grefar = json.find("grefar"); grefar != nullptr) {
    auto parsed_params = grefar_params_from_json(*grefar);
    if (!parsed_params.ok()) return parsed_params.error();
    config.grefar = parsed_params.value();
  }
  return config;
}

Result<ExperimentConfig> load_experiment_config(const std::string& path) {
  auto json = parse_json_file(path);
  if (!json.ok()) return json.error();
  return experiment_config_from_json(json.value());
}

Status save_experiment_config(const std::string& path, const ExperimentConfig& config) {
  JsonObject root;
  root["cluster"] = cluster_config_to_json(config.cluster);
  root["grefar"] = grefar_params_to_json(config.grefar);
  return write_file(path, JsonValue(std::move(root)).dump(2) + "\n");
}

}  // namespace grefar
