#include "scenario/large_scale.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {

ZipfArrivals::ZipfArrivals(std::size_t num_job_types, std::size_t draws_per_slot,
                           double exponent, std::uint64_t seed)
    : draws_per_slot_(static_cast<std::int64_t>(draws_per_slot)), seed_(seed) {
  GREFAR_CHECK_MSG(num_job_types > 0, "need at least one job type");
  GREFAR_CHECK_MSG(exponent > 0.0, "Zipf exponent must be positive");
  // The a_j^max bound is signed; a draws_per_slot beyond int64 wrapped
  // negative before this check existed.
  GREFAR_CHECK_MSG(draws_per_slot_ >= 0,
                   "draws_per_slot overflows the signed arrival bound");
  cumulative_.resize(num_job_types);
  double sum = 0.0;
  for (std::size_t j = 0; j < num_job_types; ++j) {
    sum += std::pow(static_cast<double>(j + 1), -exponent);
    cumulative_[j] = sum;
  }
}

std::size_t ZipfArrivals::sample(double u) const {
  // Smallest j with cumulative_[j] > u * total.
  const double target = u * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) --it;  // u ~ 1.0 edge
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::vector<std::int64_t> ZipfArrivals::arrivals(std::int64_t t) const {
  std::vector<std::int64_t> out;
  arrivals_into(t, out);
  return out;
}

void ZipfArrivals::arrivals_into(std::int64_t t,
                                 std::vector<std::int64_t>& out) const {
  out.assign(cumulative_.size(), 0);
  // Pure function of (seed, t): fork() derives the slot stream from the
  // parent state and the slot index, so any access order replays.
  Rng slot_rng = Rng(seed_).fork(static_cast<std::uint64_t>(t));
  for (std::int64_t k = 0; k < draws_per_slot_; ++k) {
    out[sample(slot_rng.uniform())] += 1;
  }
}

std::int64_t ZipfArrivals::max_arrivals(JobTypeId j) const {
  GREFAR_CHECK(j < cumulative_.size());
  // Every draw could land on one type; a loose but valid a_j^max.
  return draws_per_slot_;
}

GreFarParams large_scale_grefar_params(double V, double beta) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.r_max = 64.0;
  p.h_max = 64.0;
  p.clamp_to_queue = true;  // required for the sparse per-slot regime
  return p;
}

LargeScaleScenario make_large_scale_scenario(const LargeScaleOptions& options) {
  GREFAR_CHECK_MSG(options.num_dcs > 0, "need at least one data center");
  GREFAR_CHECK_MSG(options.account_level < options.branching.size(),
                   "account_level " << options.account_level << " outside the "
                                    << options.branching.size() << "-level tree");
  GREFAR_CHECK_MSG(options.draws_per_slot > 0, "need at least one draw per slot");

  LargeScaleScenario s{AccountTree::balanced(options.branching, options.seed),
                       nullptr, nullptr, nullptr, nullptr, options};
  const std::size_t leaves = s.tree.num_leaves();
  const std::size_t N = options.num_dcs;

  // Built in place and moved into the shared handle at the end: the single
  // alive copy is the point (see LargeScaleScenario::config).
  ClusterConfig config;

  // -- hardware: two server classes, fleets sized so total capacity clears
  // the mean offered load (draws_per_slot jobs x mean work ~1.0) with slack.
  config.server_types = {{"std", 1.0, 1.0}, {"eco", 0.75, 0.6}};
  const auto std_fleet =
      static_cast<std::int64_t>((options.draws_per_slot + N - 1) / N);
  for (std::size_t i = 0; i < N; ++i) {
    config.data_centers.push_back(
        {"dc" + std::to_string(i + 1), {std_fleet, std_fleet}});
  }

  // -- accounts: the chosen tree level, leaf job types mapped to ancestors --
  config.accounts = s.tree.accounts_at_level(options.account_level);

  config.job_types.resize(leaves);
  for (std::size_t j = 0; j < leaves; ++j) {
    JobType& jt = config.job_types[j];
    // Names stay empty at this scale (a million strings would dominate the
    // config footprint); errors print the type index instead.
    jt.work = 0.5 + 0.5 * static_cast<double>(j % 3);  // 0.5 / 1.0 / 1.5
    if (j % 7 == 0) {
      jt.eligible_dcs.resize(N);
      for (std::size_t i = 0; i < N; ++i) jt.eligible_dcs[i] = i;
    } else {
      jt.eligible_dcs = {j % N};
    }
    jt.account = s.tree.ancestor_of_leaf(j, options.account_level);
  }

  // -- dynamics: diurnal prices offset per DC, full availability, Zipf
  // activity over the leaf types.
  std::vector<DiurnalOuParams> price_params(N);
  for (std::size_t i = 0; i < N; ++i) {
    price_params[i].mean = 0.40 + 0.05 * static_cast<double>(i);
    price_params[i].peak_hour = 14.0 + 4.0 * static_cast<double>(i % 3);
  }
  s.prices = std::make_shared<DiurnalOuPriceModel>(std::move(price_params),
                                                   options.seed ^ 0x9e37u);
  s.availability = std::make_shared<FullAvailability>(config.data_centers);
  s.arrivals = std::make_shared<ZipfArrivals>(leaves, options.draws_per_slot,
                                              options.zipf_exponent,
                                              options.seed ^ 0x51f15u);

  config.validate();
  s.config = std::make_shared<const ClusterConfig>(std::move(config));
  return s;
}

}  // namespace grefar
