#include "scenario/paper_scenario.h"

#include <cmath>

#include "check/invariant_auditor.h"
#include "util/check.h"

namespace grefar {

namespace {

/// Mean of the Cosmos burst/weekend modulation, used to convert a desired
/// long-run arrival rate into the generator's base_rate.
double modulation_mean(const CosmosTypeParams& p) {
  double on = p.burst_on_prob, off = p.burst_off_prob;
  double active = on + off > 0.0 ? on / (on + off) : 0.0;
  double burst = active * p.burst_multiplier + (1.0 - active) * p.idle_multiplier;
  double weekend = (5.0 + 2.0 * p.weekend_multiplier) / 7.0;
  return burst * weekend;
}

CosmosTypeParams cosmos_type(double mean_jobs_per_slot, double peak_hour) {
  CosmosTypeParams p;
  p.diurnal_amplitude = 0.6;
  p.peak_hour = peak_hour;
  p.burst_on_prob = 0.08;
  p.burst_off_prob = 0.25;
  p.burst_multiplier = 3.0;
  p.idle_multiplier = 0.35;
  p.weekend_multiplier = 0.5;
  p.base_rate = mean_jobs_per_slot / modulation_mean(p);
  p.a_max = static_cast<std::int64_t>(std::ceil(p.base_rate * 3.0 * 1.6 + 5.0));
  return p;
}

}  // namespace

PaperScenario make_paper_scenario(std::uint64_t seed) {
  PaperScenario s;
  s.seed = seed;

  // -- Table I server types; each DC operates one generation ----------------
  s.config.server_types = {
      {"gen-a", 1.00, 1.00},  // DC #1
      {"gen-b", 0.75, 0.60},  // DC #2 (cheapest energy per unit work)
      {"gen-c", 1.15, 1.20},  // DC #3 (most expensive)
  };
  // The paper does not disclose fleet sizes; we size DC3 (the most expensive
  // per unit work) largest, so price-blind scheduling lands much of the load
  // there — matching the paper's large Always-vs-GreFar energy gap — while
  // the cheap DC2 alone cannot absorb the average load.
  s.config.data_centers = {
      {"dc1", {120, 0, 0}},  // capacity 120 work/slot at full availability
      {"dc2", {0, 130, 0}},  // capacity 97.5
      {"dc3", {0, 0, 160}},  // capacity 184
  };

  // -- 4 organizations, fairness weights 40/30/15/15 -------------------------
  s.config.accounts = {
      {"org1", 0.40}, {"org2", 0.30}, {"org3", 0.15}, {"org4", 0.15}};

  // -- Job types: small (d=2) and large (d=5) per organization ---------------
  // Eligible sets vary (where each type's input data lives), exercising D_j.
  s.config.job_types = {
      {"org1-small", 1.5, {0, 1, 2}, 0}, {"org1-large", 3.5, {0, 1}, 0},
      {"org2-small", 1.5, {0, 1, 2}, 1}, {"org2-large", 3.5, {1, 2}, 1},
      {"org3-small", 1.5, {0, 1}, 2},    {"org3-large", 3.5, {0, 2}, 2},
      {"org4-small", 1.5, {1, 2}, 3},    {"org4-large", 3.5, {0, 1, 2}, 3},
  };
  s.config.validate();

  // -- Arrivals: per-org mean work/slot of 31.2/23.4/11.7/11.7 (total ~78
  //    mean envelope; the realized mean lands near 90 with the burst mix),
  //    split evenly between the small and large class of each org.
  auto jobs_per_slot = [](double work_per_slot, double d) { return work_per_slot / d; };
  std::vector<CosmosTypeParams> params = {
      cosmos_type(jobs_per_slot(15.6, 1.5), 13.0),  // org1-small
      cosmos_type(jobs_per_slot(15.6, 3.5), 13.0),  // org1-large
      cosmos_type(jobs_per_slot(11.7, 1.5), 15.0),  // org2-small
      cosmos_type(jobs_per_slot(11.7, 3.5), 15.0),  // org2-large
      cosmos_type(jobs_per_slot(5.85, 1.5), 11.0),  // org3-small
      cosmos_type(jobs_per_slot(5.85, 3.5), 11.0),  // org3-large
      cosmos_type(jobs_per_slot(5.85, 1.5), 17.0),  // org4-small
      cosmos_type(jobs_per_slot(5.85, 3.5), 17.0),  // org4-large
  };
  s.arrivals = std::make_shared<CosmosLikeArrivals>(std::move(params), seed ^ 0xA11CEULL);

  // -- Prices: Table-I-calibrated diurnal + OU model --------------------------
  s.prices = make_paper_price_model(seed ^ 0x9121CE5ULL);

  // -- Availability: random 75-100% of installed, keeping slack above load ----
  s.availability = std::make_shared<RandomFractionAvailability>(
      s.config.data_centers, 0.75, seed ^ 0xA4A1ULL);

  return s;
}

GreFarParams paper_grefar_params(double V, double beta) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.r_max = 1e6;
  p.h_max = 1e6;
  p.clamp_to_queue = true;
  return p;
}

PaperScenario make_small_scenario(std::uint64_t seed) {
  PaperScenario s;
  s.seed = seed;
  s.config.server_types = {{"fast", 1.0, 1.0}, {"efficient", 0.5, 0.3}};
  s.config.data_centers = {{"east", {20, 10}}, {"west", {10, 20}}};
  s.config.accounts = {{"team-a", 0.6}, {"team-b", 0.4}};
  s.config.job_types = {
      {"a-job", 1.0, {0, 1}, 0},
      {"b-job", 2.0, {0, 1}, 1},
  };
  s.config.validate();
  s.arrivals = std::make_shared<PoissonArrivals>(
      std::vector<double>{4.0, 2.0}, std::vector<std::int64_t>{12, 6},
      seed ^ 0xB0B5ULL);
  std::vector<DiurnalOuParams> price_params(2);
  price_params[0] = {.mean = 0.40, .diurnal_amplitude = 0.12, .peak_hour = 15.0,
                     .reversion = 0.3, .volatility = 0.02, .floor = 0.05};
  price_params[1] = {.mean = 0.50, .diurnal_amplitude = 0.16, .peak_hour = 17.0,
                     .reversion = 0.3, .volatility = 0.03, .floor = 0.05};
  s.prices = std::make_shared<DiurnalOuPriceModel>(std::move(price_params),
                                                   seed ^ 0x9E1CEULL);
  s.availability = std::make_shared<FullAvailability>(s.config.data_centers);
  return s;
}

std::unique_ptr<SimulationEngine> make_scenario_engine(
    const PaperScenario& scenario, std::shared_ptr<Scheduler> scheduler,
    EngineOptions options, AuditMode audit) {
  auto engine = std::make_unique<SimulationEngine>(
      scenario.config, scenario.prices, scenario.availability, scenario.arrivals,
      std::move(scheduler), options);
  if (scenario.admission != nullptr) {
    engine->set_admission_policy(scenario.admission);
  }
  if (audit == AuditMode::kAuto) {
#ifdef NDEBUG
    audit = AuditMode::kOff;
#else
    audit = AuditMode::kThrow;
#endif
  }
  if (audit != AuditMode::kOff) {
    InvariantAuditorOptions auditor_options;
    auditor_options.throw_on_violation = audit == AuditMode::kThrow;
    engine->set_inspector(
        std::make_shared<InvariantAuditor>(scenario.config, auditor_options));
  }
  return engine;
}

std::unique_ptr<SimulationEngine> run_scenario(const PaperScenario& scenario,
                                               std::shared_ptr<Scheduler> scheduler,
                                               std::int64_t horizon,
                                               EngineOptions options, AuditMode audit) {
  auto engine = make_scenario_engine(scenario, std::move(scheduler), options, audit);
  engine->run(horizon);
  return engine;
}

}  // namespace grefar
