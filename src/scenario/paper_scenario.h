// The paper's evaluation scenario (§VI-A), fully assembled:
//
//   * 3 data centers with the normalized server types of Table I
//     (speed/power 1.00/1.00, 0.75/0.60, 1.15/1.20);
//   * electricity prices calibrated so long-run averages match Table I
//     (0.392 / 0.433 / 0.548) with Fig.-1-like diurnal swings;
//   * 4 organizations with fairness weights 40/30/15/15%;
//   * 8 job types (small/large per organization, varied eligible sets)
//     driven by the Cosmos-like non-stationary arrival generator;
//   * random server availability sized so the slackness conditions hold.
//
// Everything is deterministic given `seed`. Benches, examples and the
// integration tests all build on this single definition.
#pragma once

#include <cstdint>
#include <memory>

#include "core/grefar.h"
#include "price/price_model.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "workload/admission.h"
#include "workload/arrival_process.h"
#include "workload/cosmos_like.h"

namespace grefar {

struct PaperScenario {
  ClusterConfig config;
  std::shared_ptr<const PriceModel> prices;
  std::shared_ptr<const AvailabilityModel> availability;
  std::shared_ptr<const ArrivalProcess> arrivals;
  /// Optional admission-control stage ahead of routing (workload/admission.h);
  /// nullptr = admit everything (the paper's behavior). Honored by
  /// make_scenario_engine.
  std::shared_ptr<AdmissionPolicy> admission;
  std::uint64_t seed = 0;
};

/// Builds the full paper scenario. Deterministic per seed.
PaperScenario make_paper_scenario(std::uint64_t seed);

/// GreFar parameters as used in §VI (generous r_max/h_max; clamped queues).
GreFarParams paper_grefar_params(double V, double beta);

/// A small 2-DC / 2-type / 2-account scenario with light deterministic-ish
/// load — cheap enough for property tests and the Theorem-1 LP comparison.
PaperScenario make_small_scenario(std::uint64_t seed);

/// Whether scenario engines carry the per-slot InvariantAuditor
/// (check/invariant_auditor.h).
///   * kAuto  — kThrow in Debug builds (NDEBUG undefined), kOff otherwise:
///              every Debug/CI simulation is machine-checked for free while
///              Release benches keep the bare hot path;
///   * kOff   — no auditing;
///   * kThrow — audit every slot, abort on the first violation;
///   * kRecord— audit every slot, accumulate violation records (retrieve the
///              auditor via SimulationEngine::inspector()).
enum class AuditMode { kAuto, kOff, kThrow, kRecord };

/// Builds (but does not run) a job-level engine for `scenario` + `scheduler`
/// — the form the parallel sweep runner wants (it drives run() itself).
std::unique_ptr<SimulationEngine> make_scenario_engine(
    const PaperScenario& scenario, std::shared_ptr<Scheduler> scheduler,
    EngineOptions options = {}, AuditMode audit = AuditMode::kAuto);

/// Runs `scheduler` on `scenario` for `horizon` slots on the job-level
/// engine and returns the engine (metrics inside).
std::unique_ptr<SimulationEngine> run_scenario(const PaperScenario& scenario,
                                               std::shared_ptr<Scheduler> scheduler,
                                               std::int64_t horizon,
                                               EngineOptions options = {},
                                               AuditMode audit = AuditMode::kAuto);

}  // namespace grefar
