#include "scenario/admission_scenario.h"

#include <utility>
#include <vector>

#include "util/rng.h"

namespace grefar {

namespace {

/// Mean arriving jobs per slot per type. With the works below this offers
/// ~40 work units/slot against 22.5 installed — the ~1.8x overload that
/// makes admission control decisive.
constexpr double kMeanJobs[4] = {8.0, 4.0, 6.0, 2.5};

std::vector<std::vector<ArrivalBatch>> generate_batches(
    std::uint64_t seed, const std::vector<JobType>& types) {
  std::vector<std::vector<ArrivalBatch>> slots(
      static_cast<std::size_t>(kAdmissionScenarioSlots));
  const Rng root(seed ^ 0xAD0115D0ULL);
  for (std::int64_t t = 0; t < kAdmissionScenarioSlots; ++t) {
    // Pure function of (seed, slot): the table replays bit-identically no
    // matter how callers interleave slot reads.
    Rng r = root.fork(static_cast<std::uint64_t>(t));
    auto& slot = slots[static_cast<std::size_t>(t)];
    for (std::size_t j = 0; j < types.size(); ++j) {
      std::int64_t remaining = r.poisson(kMeanJobs[j]);
      // Split each type's arrivals into up to two batches with independent
      // density draws, so one slot mixes keep-worthy and reject-worthy work.
      while (remaining > 0) {
        ArrivalBatch b;
        b.type = j;
        b.count = remaining > 1 ? r.uniform_int(1, remaining) : 1;
        remaining -= b.count;
        // Bimodal value density (value per unit work): the high mode alone
        // fits within capacity; theta = 1.0 separates the modes exactly.
        const double density = r.bernoulli(0.5) ? r.uniform(1.5, 4.0)
                                                : r.uniform(0.1, 0.8);
        b.value = density * types[j].work;
        // decay_rate stays NaN (defer to the type's curve); a third of the
        // batches carry an explicit tighter deadline to exercise the
        // per-batch override path.
        if (r.bernoulli(1.0 / 3.0)) b.deadline = r.uniform_int(10, 30);
        slot.push_back(b);
      }
    }
  }
  return slots;
}

}  // namespace

double admission_scenario_theta() { return 1.0; }

PaperScenario make_admission_scenario(std::uint64_t seed) {
  PaperScenario s;
  s.seed = seed;
  s.config.server_types = {{"fast", 1.0, 1.0}, {"efficient", 0.5, 0.3}};
  // 12.5 + 10 = 22.5 work units/slot installed, fully available (capacity is
  // deterministic so the overload factor is exact).
  s.config.data_centers = {{"east", {10, 5}}, {"west", {5, 10}}};
  s.config.accounts = {{"batch", 0.6}, {"svc", 0.4}};
  // All types decay and expire: lingering in an overloaded queue always
  // costs value, so admit-all has nowhere to hide.
  s.config.job_types = {
      {.name = "batch-small", .work = 1.0, .eligible_dcs = {0, 1}, .account = 0,
       .decay = DecayKind::kExponential, .decay_rate = 0.02, .deadline = 40},
      {.name = "batch-large", .work = 4.0, .eligible_dcs = {0, 1}, .account = 0,
       .decay = DecayKind::kExponential, .decay_rate = 0.02, .deadline = 60},
      {.name = "svc-small", .work = 1.0, .eligible_dcs = {0, 1}, .account = 1,
       .decay = DecayKind::kLinear, .decay_rate = 0.015, .deadline = 30},
      {.name = "svc-large", .work = 4.0, .eligible_dcs = {0, 1}, .account = 1,
       .decay = DecayKind::kLinear, .decay_rate = 0.01, .deadline = 60},
  };
  s.config.validate();
  s.arrivals = std::make_shared<ValuedTableArrivals>(
      generate_batches(seed, s.config.job_types), s.config.job_types.size());
  std::vector<DiurnalOuParams> price_params(2);
  price_params[0] = {.mean = 0.40, .diurnal_amplitude = 0.12, .peak_hour = 15.0,
                     .reversion = 0.3, .volatility = 0.02, .floor = 0.05};
  price_params[1] = {.mean = 0.50, .diurnal_amplitude = 0.16, .peak_hour = 17.0,
                     .reversion = 0.3, .volatility = 0.03, .floor = 0.05};
  s.prices = std::make_shared<DiurnalOuPriceModel>(std::move(price_params),
                                                   seed ^ 0x9E1CEULL);
  s.availability = std::make_shared<FullAvailability>(s.config.data_centers);
  return s;
}

PaperScenario make_admission_scenario(std::uint64_t seed,
                                      AdmissionPolicyKind kind) {
  PaperScenario s = make_admission_scenario(seed);
  s.admission = make_admission_policy(kind, admission_scenario_theta(), seed);
  return s;
}

}  // namespace grefar
