// The million-account scale-out scenario (DESIGN.md §12).
//
// A full org -> team -> user AccountTree with up to 10^6 leaves, one job
// type per leaf user, and Zipf-distributed per-slot activity: each slot a
// fixed number of arrival draws lands on job types sampled from a Zipf law
// over type ids, so only ~`draws_per_slot` of the million types are active
// in any slot while the popular head types recur. Every piece is a pure
// function of (seed, slot) — arrivals are randomly accessible and replay
// byte-identically at any evaluation order.
//
// This is the scale proof for the sparse per-slot fairness machinery: the
// same GreFar scheduler that runs the paper's 4-account scenario runs here
// with M = 10^6 accounts, and the per-slot solve cost tracks the active
// set, not M (see bench/large_scale_smoke.cc and BENCH_baseline.json).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/grefar.h"
#include "price/price_model.h"
#include "sim/account_tree.h"
#include "sim/availability.h"
#include "sim/cluster.h"
#include "workload/arrival_process.h"

namespace grefar {

/// Zipf-activity arrivals: `draws_per_slot` independent draws per slot from
/// P(j) proportional to 1/(j+1)^exponent over J job types, each draw adding
/// one job. Random access per slot: slot t uses an Rng forked from (seed, t)
/// via the base generator, so arrivals(t) is a pure function of (seed, t).
class ZipfArrivals final : public ArrivalProcess {
 public:
  ZipfArrivals(std::size_t num_job_types, std::size_t draws_per_slot,
               double exponent, std::uint64_t seed);

  std::vector<std::int64_t> arrivals(std::int64_t t) const override;
  void arrivals_into(std::int64_t t, std::vector<std::int64_t>& out) const override;
  std::size_t num_job_types() const override { return cumulative_.size(); }
  std::int64_t max_arrivals(JobTypeId j) const override;

  /// Inverse-CDF sample: smallest j with cumulative_[j] > u * total, for
  /// u in [0, 1). u = 0 maps to type 0 and u -> 1 to the last type (exposed
  /// so the boundary behavior is directly testable).
  std::size_t sample(double u) const;

 private:
  std::vector<double> cumulative_;  // prefix sums of 1/(j+1)^s
  /// Signed from construction (validated to fit) so max_arrivals — the
  /// paper's int64 a_j^max — needs no per-call narrowing cast.
  std::int64_t draws_per_slot_;
  std::uint64_t seed_;
};

struct LargeScaleOptions {
  /// Tree shape: branching factors per level (defaults: 10 orgs x 100 teams
  /// x 1000 users = 10^6 leaves). One job type per leaf.
  std::vector<std::size_t> branching{10, 100, 1000};
  /// The tree level whose nodes become the ClusterConfig accounts (and the
  /// fairness-solver granularity). Defaults to the leaves.
  std::size_t account_level = 2;
  std::size_t num_dcs = 2;
  /// Zipf activity: expected distinct active types per slot is bounded by
  /// draws_per_slot (duplicates collapse onto popular head types).
  std::size_t draws_per_slot = 1000;
  double zipf_exponent = 1.1;
  std::uint64_t seed = 20260807;
};

struct LargeScaleScenario {
  AccountTree tree;
  /// Shared immutable config: at 10^6 accounts a ClusterConfig weighs ~10^2
  /// MB, so the engine, scheduler and auditor must all alias this one
  /// instance (every component has a shared_ptr ctor overload) instead of
  /// taking value copies — that is most of the DESIGN.md §12 memory budget.
  std::shared_ptr<const ClusterConfig> config;
  std::shared_ptr<const PriceModel> prices;
  std::shared_ptr<const AvailabilityModel> availability;
  std::shared_ptr<const ArrivalProcess> arrivals;
  LargeScaleOptions options;
};

/// Builds the scenario. Deterministic per options.seed.
LargeScaleScenario make_large_scale_scenario(const LargeScaleOptions& options = {});

/// GreFar parameters sized for the scenario (clamped queues — required for
/// the sparse per-slot regime — and intra-slot sharding left to the caller).
GreFarParams large_scale_grefar_params(double V, double beta);

}  // namespace grefar
