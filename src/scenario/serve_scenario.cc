#include "scenario/serve_scenario.h"

#include <cmath>
#include <vector>

#include "trace/job_trace.h"
#include "trace/price_trace.h"
#include "util/check.h"

namespace grefar {

PaperScenario make_serve_scenario(std::size_t num_dcs, std::size_t num_types,
                                  std::uint64_t seed) {
  GREFAR_CHECK(num_dcs > 0);
  GREFAR_CHECK(num_types > 0);
  PaperScenario s;
  s.seed = seed;

  // Three Table-I-like efficiency archetypes; DC i operates archetype i % 3.
  s.config.server_types = {
      {"gen-a", 1.00, 1.00},
      {"gen-b", 0.75, 0.60},
      {"gen-c", 1.15, 1.20},
  };
  double total_capacity = 0.0;  // work/slot at full availability
  s.config.data_centers.reserve(num_dcs);
  for (std::size_t i = 0; i < num_dcs; ++i) {
    std::vector<std::int64_t> installed(s.config.server_types.size(), 0);
    std::size_t archetype = i % s.config.server_types.size();
    // 100 +/- a bit so DCs are not interchangeable.
    std::int64_t count = 100 + static_cast<std::int64_t>(7 * (i % 5));
    installed[archetype] = count;
    total_capacity +=
        static_cast<double>(count) * s.config.server_types[archetype].speed;
    s.config.data_centers.push_back(
        {"dc" + std::to_string(i + 1), std::move(installed)});
  }

  s.config.accounts = {
      {"org1", 0.40}, {"org2", 0.30}, {"org3", 0.15}, {"org4", 0.15}};

  static constexpr double kWorks[] = {1.0, 1.5, 2.5, 3.5};
  s.config.job_types.reserve(num_types);
  std::vector<std::size_t> all_dcs(num_dcs);
  for (std::size_t d = 0; d < num_dcs; ++d) all_dcs[d] = d;
  for (std::size_t j = 0; j < num_types; ++j) {
    JobType type;
    type.name = "type" + std::to_string(j);
    type.work = kWorks[j % (sizeof(kWorks) / sizeof(kWorks[0]))];
    type.eligible_dcs = all_dcs;
    type.account = j % s.config.accounts.size();
    s.config.job_types.push_back(std::move(type));
  }
  s.config.validate();

  // Mean total work ~55% of worst-case capacity (availability floor 0.75),
  // split evenly across types, independent of the chosen dimensions.
  double target_work = 0.55 * 0.75 * total_capacity;
  std::vector<double> rates(num_types);
  std::vector<std::int64_t> a_max(num_types);
  for (std::size_t j = 0; j < num_types; ++j) {
    rates[j] = target_work / (static_cast<double>(num_types) *
                              s.config.job_types[j].work);
    a_max[j] = static_cast<std::int64_t>(std::ceil(rates[j] * 4.0 + 5.0));
  }
  s.arrivals = std::make_shared<PoissonArrivals>(std::move(rates),
                                                 std::move(a_max),
                                                 seed ^ 0x5E12FEEDULL);

  std::vector<DiurnalOuParams> price_params(num_dcs);
  for (std::size_t d = 0; d < num_dcs; ++d) {
    price_params[d] = {.mean = 0.35 + 0.05 * static_cast<double>(d % 6),
                       .diurnal_amplitude = 0.10 + 0.02 * static_cast<double>(d % 4),
                       .peak_hour = 11.0 + 2.0 * static_cast<double>(d % 5),
                       .reversion = 0.3,
                       .volatility = 0.02,
                       .floor = 0.05};
  }
  s.prices = std::make_shared<DiurnalOuPriceModel>(std::move(price_params),
                                                   seed ^ 0x5E12C0DEULL);

  s.availability = std::make_shared<RandomFractionAvailability>(
      s.config.data_centers, 0.75, seed ^ 0x5E12A4A1ULL);
  return s;
}

Status write_serve_traces(const PaperScenario& scenario, std::int64_t horizon,
                          const std::string& dir, std::string& jobs_path,
                          std::string& prices_path) {
  GREFAR_CHECK(horizon > 0);
  jobs_path = dir + "/jobs.csv";
  prices_path = dir + "/prices.csv";
  Status st = write_job_trace_streaming(*scenario.arrivals, horizon, jobs_path);
  if (!st.ok()) return st;
  return write_price_trace_streaming(*scenario.prices, horizon, prices_path);
}

}  // namespace grefar
