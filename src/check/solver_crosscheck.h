// Brute-force cross-checks for the per-slot solvers.
//
// On small instances (num_vars <= 6 or so) the CappedBoxPolytope can be
// swept with a regular grid, giving an independent oracle for eq. (14)'s
// h-part: any correct solver must (a) return a feasible point and (b) reach
// an objective value no worse than the best grid point, up to its own
// convergence tolerance. A "solver" that silently drops a constraint or
// optimizes the wrong sign is caught immediately, with the same structured
// InvariantViolation records the per-slot auditor emits.
#pragma once

#include <string>
#include <vector>

#include "check/invariant_auditor.h"
#include "core/drift_penalty.h"
#include "core/per_slot_solvers.h"

namespace grefar {

struct SolverCrosscheckOptions {
  int points_per_dim = 5;     // grid resolution per variable
  double feasibility_tol = 1e-6;
  /// Allowed objective excess over the brute-force grid optimum (absolute,
  /// plus the same amount relative to |optimum|). Exact solvers (greedy, LP
  /// at beta = 0) pass with tight values; first-order solvers (FW, PGD) need
  /// their convergence tolerance here.
  double objective_tol = 1e-6;
};

/// Checks an arbitrary candidate solution `u` for `problem` against the
/// brute-force oracle. `solver_name` labels the violation records. Returns
/// an empty vector when `u` is feasible and grid-optimal within tolerance.
std::vector<InvariantViolation> crosscheck_solution(
    const PerSlotProblem& problem, const std::vector<double>& u,
    const std::string& solver_name, const SolverCrosscheckOptions& options = {});

/// Runs `solver` on `problem` and cross-checks its output.
std::vector<InvariantViolation> crosscheck_per_slot_solver(
    const PerSlotProblem& problem, PerSlotSolver solver,
    const SolverCrosscheckOptions& options = {});

}  // namespace grefar
