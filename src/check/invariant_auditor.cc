#include "check/invariant_auditor.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace grefar {

namespace {
/// Null-checks the shared config before the member-init list dereferences it.
std::shared_ptr<const ClusterConfig> require_config(
    std::shared_ptr<const ClusterConfig> config) {
  GREFAR_CHECK_MSG(config != nullptr, "InvariantAuditor needs a cluster config");
  return config;
}
}  // namespace

std::string to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kActionShape: return "action-shape";
    case InvariantKind::kNonFinite: return "non-finite";
    case InvariantKind::kNegativeDecision: return "negative-decision";
    case InvariantKind::kEligibility: return "eligibility";
    case InvariantKind::kRoutingBound: return "routing-bound";
    case InvariantKind::kCapacityChain: return "capacity-chain";
    case InvariantKind::kQueueRecurrence: return "queue-recurrence";
    case InvariantKind::kNegativeQueue: return "negative-queue";
    case InvariantKind::kWorkConservation: return "work-conservation";
    case InvariantKind::kEnergyAccounting: return "energy-accounting";
    case InvariantKind::kFairnessAccounting: return "fairness-accounting";
    case InvariantKind::kSchedulerContract: return "scheduler-contract";
    case InvariantKind::kSolverOptimality: return "solver-optimality";
    case InvariantKind::kAdmissionAccounting: return "admission-accounting";
    case InvariantKind::kDeadlineFeasibility: return "deadline-feasibility";
    case InvariantKind::kValueConservation: return "value-conservation";
  }
  return "unknown";
}

std::string InvariantViolation::to_string() const {
  std::ostringstream os;
  os << "slot " << slot << " [" << grefar::to_string(kind) << "]";
  if (dc != kNoIndex) os << " dc=" << dc;
  if (job_type != kNoIndex) os << " job=" << job_type;
  os << ": observed " << observed << " vs bound " << bound;
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

InvariantAuditor::InvariantAuditor(ClusterConfig config, InvariantAuditorOptions options)
    : InvariantAuditor(std::make_shared<const ClusterConfig>(std::move(config)),
                       options) {}

InvariantAuditor::InvariantAuditor(std::shared_ptr<const ClusterConfig> config,
                                   InvariantAuditorOptions options)
    : config_(require_config(std::move(config))),
      options_(options),
      fairness_fn_(config_->gammas()) {
  config_->validate();
  GREFAR_CHECK_MSG(options_.tolerance >= 0.0, "auditor tolerance must be >= 0");
}

bool InvariantAuditor::leq(double a, double b) const {
  return a <= b + options_.tolerance * std::max(1.0, std::abs(b));
}

bool InvariantAuditor::near(double a, double b) const {
  return std::abs(a - b) <= options_.tolerance * std::max(1.0, std::abs(b));
}

void InvariantAuditor::add(InvariantKind kind, std::int64_t slot, std::size_t dc,
                           std::size_t job_type, double observed, double bound,
                           std::string detail) {
  InvariantViolation v;
  v.kind = kind;
  v.slot = slot;
  v.dc = dc;
  v.job_type = job_type;
  v.observed = observed;
  v.bound = bound;
  v.detail = std::move(detail);
  ++total_violations_;
  if (options_.throw_on_violation) {
    throw ContractViolation("invariant violation: " + v.to_string());
  }
  if (violations_.size() < options_.max_violations) violations_.push_back(std::move(v));
}

void InvariantAuditor::reset() {
  violations_.clear();
  total_violations_ = 0;
  slots_audited_ = 0;
  ledger_initialized_ = false;
  initial_queued_work_ = 0.0;
  arrived_work_ = 0.0;
  served_work_ = 0.0;
  abandoned_work_ = 0.0;
  value_ledger_initialized_ = false;
  prev_queued_value_ = 0.0;
}

std::string InvariantAuditor::report() const {
  std::ostringstream os;
  os << "InvariantAuditor: audited " << slots_audited_ << " slots: ";
  if (ok()) {
    os << "clean";
    return os.str();
  }
  os << total_violations_ << " violation(s)";
  const std::size_t show = std::min<std::size_t>(violations_.size(), 8);
  for (std::size_t v = 0; v < show; ++v) os << "\n  " << violations_[v].to_string();
  if (total_violations_ > show) {
    os << "\n  ... and " << (total_violations_ - show) << " more";
  }
  return os.str();
}

void InvariantAuditor::inspect(const SlotRecord& record) {
  const std::size_t N = config_->num_data_centers();
  const std::size_t J = config_->num_job_types();
  const std::size_t K = config_->num_server_types();
  const std::int64_t t = record.slot;
  constexpr std::size_t kNone = InvariantViolation::kNoIndex;

  GREFAR_CHECK_MSG(record.obs != nullptr && record.action != nullptr &&
                       record.routed != nullptr && record.served_work != nullptr &&
                       record.dc_capacity != nullptr && record.dc_energy_cost != nullptr &&
                       record.account_work != nullptr && record.arrivals != nullptr &&
                       record.central_after != nullptr && record.dc_after != nullptr,
                   "SlotRecord is missing fields");
  const SlotObservation& obs = *record.obs;
  const SlotAction& action = *record.action;
  const MatrixD& routed = *record.routed;
  const MatrixD& served = *record.served_work;

  ++slots_audited_;

  // -- A. shapes ------------------------------------------------------------
  if (action.route.rows() != N || action.route.cols() != J ||
      action.process.rows() != N || action.process.cols() != J ||
      routed.rows() != N || routed.cols() != J || served.rows() != N ||
      served.cols() != J || obs.central_queue.size() != J ||
      obs.dc_queue.rows() != N || obs.dc_queue.cols() != J ||
      record.central_after->size() != J || record.dc_after->rows() != N ||
      record.dc_after->cols() != J || record.dc_capacity->size() != N ||
      record.dc_energy_cost->size() != N ||
      record.account_work->size() != config_->num_accounts() ||
      record.arrivals->size() != J) {
    add(InvariantKind::kActionShape, t, kNone, kNone, 0.0, 0.0,
        "record matrices/vectors do not match the cluster's N x J x M shape");
    return;  // nothing else is index-safe
  }

  // -- A. finiteness, negativity, eligibility -------------------------------
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      const double r_ask = action.route(i, j);
      const double h_ask = action.process(i, j);
      const double r_got = routed(i, j);
      const double w_got = served(i, j);
      if (!std::isfinite(r_ask) || !std::isfinite(h_ask)) {
        add(InvariantKind::kNonFinite, t, i, j, std::isfinite(r_ask) ? h_ask : r_ask,
            0.0, "scheduler action contains NaN/Inf");
        continue;
      }
      if (!std::isfinite(r_got) || !std::isfinite(w_got)) {
        add(InvariantKind::kNonFinite, t, i, j, std::isfinite(r_got) ? w_got : r_got,
            0.0, "engine routed/served value is NaN/Inf");
        continue;
      }
      if (r_ask < -options_.tolerance || h_ask < -options_.tolerance ||
          r_got < -options_.tolerance || w_got < -options_.tolerance) {
        add(InvariantKind::kNegativeDecision, t, i, j,
            std::min(std::min(r_ask, h_ask), std::min(r_got, w_got)), 0.0,
            "negative routing/processing value");
      }
      if (!config_->job_types[j].eligible(i)) {
        const double worst = std::max(std::max(r_ask, h_ask), std::max(r_got, w_got));
        if (worst > options_.tolerance) {
          add(InvariantKind::kEligibility, t, i, j, worst, 0.0,
              "work assigned to a DC outside D_j for job type '" +
                  config_->job_types[j].name + "'");
        }
      }
    }
  }

  // -- B. routing bounds ----------------------------------------------------
  for (std::size_t j = 0; j < J; ++j) {
    const double central = obs.central_queue[j];
    double moved = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
      const double r = routed(i, j);
      moved += r;
      if (std::abs(r - std::round(r)) > options_.tolerance) {
        add(InvariantKind::kRoutingBound, t, i, j, r, std::round(r),
            "routed job count is not integral");
      }
      if (!leq(r, central)) {
        add(InvariantKind::kRoutingBound, t, i, j, r, central,
            "routed_{i,j} exceeds the central queue Q_j");
      }
      // llround of the ask is the engine's cap on jobs actually moved.
      if (r > std::round(action.route(i, j)) + options_.tolerance) {
        add(InvariantKind::kRoutingBound, t, i, j, r, std::round(action.route(i, j)),
            "engine moved more jobs than the scheduler asked for");
      }
      // Integer-routing contract (sim/scheduler.h): the ask itself must be
      // integral up to float noise, independent of the auditor's tolerance.
      const double ask = action.route(i, j);
      if (std::isfinite(ask) && std::abs(ask - std::round(ask)) > 1e-6) {
        add(InvariantKind::kSchedulerContract, t, i, j, ask, std::round(ask),
            "routing ask is fractional (integer-routing contract)");
      }
    }
    if (!leq(moved, central)) {
      add(InvariantKind::kRoutingBound, t, kNone, j, moved, central,
          "sum_i routed_{i,j} exceeds the central queue Q_j");
    }
  }

  // -- C. capacity chain ----------------------------------------------------
  avail_scratch_.resize(K);
  for (std::size_t i = 0; i < N; ++i) {
    double installed_capacity = 0.0;  // sum_k n_{i,k} s_k
    for (std::size_t k = 0; k < K; ++k) {
      avail_scratch_[k] = obs.availability(i, k);
      installed_capacity +=
          static_cast<double>(obs.availability(i, k)) * config_->server_types[k].speed;
    }
    if (!near((*record.dc_capacity)[i], installed_capacity)) {
      add(InvariantKind::kCapacityChain, t, i, kNone, (*record.dc_capacity)[i],
          installed_capacity, "recorded DC capacity != sum_k n_{i,k} s_k");
    }
    const double dc_served = served.row_sum(i);
    if (!leq(dc_served, installed_capacity)) {
      add(InvariantKind::kCapacityChain, t, i, kNone, dc_served, installed_capacity,
          "served work exceeds available capacity sum_k n_{i,k} s_k");
    }
    // Re-derive the busy-server allocation b_{i,k} from the minimum-energy
    // curve and check sum_j h d <= sum_k b s <= sum_k n s with b_k <= n_k.
    curve_scratch_.rebuild(config_->server_types, avail_scratch_);
    busy_scratch_.assign(K, 0.0);
    double left = std::min(dc_served, curve_scratch_.capacity());
    double busy_capacity = 0.0;  // sum_k b_{i,k} s_k
    for (const auto& segment : curve_scratch_.segments()) {
      const double fill = std::min(left, segment.capacity);
      if (fill <= 0.0) break;
      busy_scratch_[segment.type] += fill / segment.speed;  // servers busy
      busy_capacity += fill;
      left -= fill;
    }
    for (std::size_t k = 0; k < K; ++k) {
      if (!leq(busy_scratch_[k], static_cast<double>(obs.availability(i, k)))) {
        add(InvariantKind::kCapacityChain, t, i, kNone, busy_scratch_[k],
            static_cast<double>(obs.availability(i, k)),
            "busy servers b_{i,k} exceed availability n_{i,k} for type '" +
                config_->server_types[k].name + "'");
      }
    }
    if (!leq(dc_served, busy_capacity)) {
      add(InvariantKind::kCapacityChain, t, i, kNone, dc_served, busy_capacity,
          "served work sum_j h_{i,j} d_j exceeds busy-server capacity "
          "sum_k b_{i,k} s_k");
    }
    if (!leq(busy_capacity, installed_capacity)) {
      add(InvariantKind::kCapacityChain, t, i, kNone, busy_capacity, installed_capacity,
          "busy-server capacity exceeds installed capacity");
    }

    // -- F. energy accounting ----------------------------------------------
    const double billed = (*record.dc_energy_cost)[i];
    const double expected =
        obs.prices[i] * config_->tariff(i).cost(curve_scratch_.energy_for_work(dc_served));
    if (!near(billed, expected)) {
      add(InvariantKind::kEnergyAccounting, t, i, kNone, billed, expected,
          "billed energy != price * tariff(curve(served work))");
    }
  }

  // -- D. queue recurrence + non-negativity ---------------------------------
  for (std::size_t j = 0; j < J; ++j) {
    const double expected =
        std::max(obs.central_queue[j] - routed.col_sum(j), 0.0) +
        static_cast<double>((*record.arrivals)[j]);
    const double got = (*record.central_after)[j];
    if (!near(got, expected)) {
      add(InvariantKind::kQueueRecurrence, t, kNone, j, got, expected,
          "Q_j(t+1) != max[Q_j - sum_i routed, 0] + a_j");
    }
    if (got < -options_.tolerance) {
      add(InvariantKind::kNegativeQueue, t, kNone, j, got, 0.0,
          "central queue went negative");
    }
    for (std::size_t i = 0; i < N; ++i) {
      const double d = config_->job_types[j].work;
      const double expected_dc =
          std::max(obs.dc_queue(i, j) + routed(i, j) - served(i, j) / d, 0.0);
      const double got_dc = (*record.dc_after)(i, j);
      if (!near(got_dc, expected_dc)) {
        add(InvariantKind::kQueueRecurrence, t, i, j, got_dc, expected_dc,
            "q_{i,j}(t+1) != max[q + routed - served/d_j, 0]");
      }
      if (got_dc < -options_.tolerance) {
        add(InvariantKind::kNegativeQueue, t, i, j, got_dc, 0.0,
            "DC queue went negative");
      }
    }
  }

  // -- E. work conservation -------------------------------------------------
  double slot_served = 0.0;
  for (std::size_t i = 0; i < N; ++i) slot_served += served.row_sum(i);
  double account_total = 0.0;
  for (double w : *record.account_work) account_total += w;
  if (!near(account_total, slot_served)) {
    add(InvariantKind::kWorkConservation, t, kNone, kNone, account_total, slot_served,
        "per-account served work does not sum to total served work");
  }
  const bool first_audited_slot = !ledger_initialized_;
  if (!ledger_initialized_) {
    // Queued work at the start of the first audited slot, from the pre-action
    // observation (jobs x d_j).
    initial_queued_work_ = 0.0;
    for (std::size_t j = 0; j < J; ++j) {
      initial_queued_work_ += obs.central_queue[j] * config_->job_types[j].work;
      for (std::size_t i = 0; i < N; ++i) {
        initial_queued_work_ += obs.dc_queue(i, j) * config_->job_types[j].work;
      }
    }
    ledger_initialized_ = true;
  }
  for (std::size_t j = 0; j < J; ++j) {
    arrived_work_ +=
        static_cast<double>((*record.arrivals)[j]) * config_->job_types[j].work;
  }
  served_work_ += slot_served;
  // Deadline expiry runs before the slot's observation, so the first audited
  // slot's abandoned work left the queues before the ledger's opening
  // snapshot — counting it would double-subtract.
  if (!first_audited_slot) abandoned_work_ += record.abandoned_work;
  double queued_now = 0.0;
  for (std::size_t j = 0; j < J; ++j) {
    queued_now += (*record.central_after)[j] * config_->job_types[j].work;
    for (std::size_t i = 0; i < N; ++i) {
      queued_now += (*record.dc_after)(i, j) * config_->job_types[j].work;
    }
  }
  const double inflow = initial_queued_work_ + arrived_work_;
  const double outflow = served_work_ + abandoned_work_ + queued_now;
  if (!near(inflow, outflow)) {
    add(InvariantKind::kWorkConservation, t, kNone, kNone, outflow, inflow,
        "cumulative arrived work != served + abandoned + still-queued work");
  }

  // -- G. admission / deadline / value accounting ---------------------------
  if (record.offered != nullptr) {
    if (record.offered->size() != J) {
      add(InvariantKind::kAdmissionAccounting, t, kNone, kNone,
          static_cast<double>(record.offered->size()), static_cast<double>(J),
          "offered-arrivals vector does not match the job-type count");
    } else {
      for (std::size_t j = 0; j < J; ++j) {
        const auto offered = (*record.offered)[j];
        const auto admitted = (*record.arrivals)[j];
        if (offered < 0) {
          add(InvariantKind::kAdmissionAccounting, t, kNone, j,
              static_cast<double>(offered), 0.0, "negative offered arrival count");
        }
        // A rejected job must never enter a queue: what was admitted into
        // the central queue can never exceed what was offered.
        if (admitted > offered) {
          add(InvariantKind::kAdmissionAccounting, t, kNone, j,
              static_cast<double>(admitted), static_cast<double>(offered),
              "admitted arrivals exceed offered arrivals");
        }
      }
    }
  }
  if (record.deadline_violations != 0) {
    add(InvariantKind::kDeadlineFeasibility, t, kNone, kNone,
        static_cast<double>(record.deadline_violations), 0.0,
        "jobs completed after their deadline (must be abandoned before service)");
  }
  const double value_scalars[] = {record.admitted_value,  record.rejected_value,
                                  record.realized_value,  record.decay_loss,
                                  record.abandoned_jobs,  record.abandoned_work,
                                  record.abandoned_value, record.queued_value_after};
  bool values_finite = true;
  for (double v : value_scalars) {
    if (!std::isfinite(v)) {
      add(InvariantKind::kValueConservation, t, kNone, kNone, v, 0.0,
          "non-finite value/abandonment scalar in the slot record");
      values_finite = false;
    } else if (v < -options_.tolerance) {
      add(InvariantKind::kValueConservation, t, kNone, kNone, v, 0.0,
          "negative value/abandonment scalar in the slot record");
      values_finite = false;
    }
  }
  if (values_finite) {
    if (value_ledger_initialized_) {
      // Exact per-slot value recurrence (base values): abandonment happens
      // before service, admission after, but all within this slot's record.
      const double expected_value = prev_queued_value_ + record.admitted_value -
                                    (record.realized_value + record.decay_loss) -
                                    record.abandoned_value;
      if (!near(record.queued_value_after, expected_value)) {
        add(InvariantKind::kValueConservation, t, kNone, kNone,
            record.queued_value_after, expected_value,
            "queued value != previous + admitted - completed - abandoned");
      }
    }
    prev_queued_value_ = record.queued_value_after;
    value_ledger_initialized_ = true;
  }

  // -- F. fairness accounting -----------------------------------------------
  double total_resource = 0.0;
  for (double c : *record.dc_capacity) total_resource += c;
  const double expected_f =
      total_resource > 0.0 ? fairness_fn_.score(*record.account_work, total_resource)
                           : 0.0;
  if (!near(record.fairness, expected_f)) {
    add(InvariantKind::kFairnessAccounting, t, kNone, kNone, record.fairness,
        expected_f, "recorded fairness != eq. (3) recomputed from account work");
  }

  // -- strict scheduler-contract checks (opt-in) ----------------------------
  const bool has_r_max = std::isfinite(options_.r_max);
  const bool has_h_max = std::isfinite(options_.h_max);
  if (has_r_max || has_h_max || options_.expect_queue_bounded_ask) {
    for (std::size_t j = 0; j < J; ++j) {
      double ask_total = 0.0;
      for (std::size_t i = 0; i < N; ++i) {
        const double r_ask = action.route(i, j);
        const double h_ask = action.process(i, j);
        ask_total += r_ask;
        if (has_r_max && !leq(r_ask, options_.r_max)) {
          add(InvariantKind::kSchedulerContract, t, i, j, r_ask, options_.r_max,
              "routing ask exceeds r_max");
        }
        if (has_h_max && !leq(h_ask, options_.h_max)) {
          add(InvariantKind::kSchedulerContract, t, i, j, h_ask, options_.h_max,
              "processing ask exceeds h_max");
        }
        if (options_.expect_queue_bounded_ask &&
            !leq(h_ask, obs.dc_queue(i, j) + r_ask)) {
          add(InvariantKind::kSchedulerContract, t, i, j, h_ask,
              obs.dc_queue(i, j) + r_ask,
              "processing ask exceeds post-routing queue q_{i,j} + r_{i,j}");
        }
      }
      if (options_.expect_queue_bounded_ask && !leq(ask_total, obs.central_queue[j])) {
        add(InvariantKind::kSchedulerContract, t, kNone, j, ask_total,
            obs.central_queue[j], "routing ask exceeds the central queue Q_j");
      }
    }
  }
}

}  // namespace grefar
