// InvariantAuditor: machine-checked per-slot feasibility for every scheduler.
//
// GreFar's guarantees (Theorem 1) only hold if each per-slot decision is
// feasible; a solver or engine bug that quietly violates a queue bound or the
// capacity chain corrupts every figure the harness regenerates. The auditor
// attaches to the SimulationEngine as a SlotInspector and re-derives, from
// first principles, for every slot:
//
//   A. action sanity     — finite values, correct shapes, no negatives,
//                          nothing assigned to ineligible (i,j) pairs;
//   B. routing bounds    — routed jobs are integral, routed_{i,j} <= Q_j(t),
//                          sum_i routed_{i,j} <= Q_j(t), routed never exceeds
//                          the scheduler's ask;
//   C. capacity chain    — per DC, served work sum_j h_{i,j} d_j fits the
//                          busy-server allocation: sum_j h d <= sum_k b_{i,k}
//                          s_k <= sum_k n_{i,k}(t) s_k, with b re-derived
//                          from the minimum-energy curve and b_k <= n_k;
//   D. queue recurrence  — the exact Lyapunov updates
//                          Q_j(t+1) = max[Q_j - sum_i routed, 0] + a_j and
//                          q_{i,j}(t+1) = max[q + routed - served/d_j, 0],
//                          plus non-negativity of every post-slot queue;
//   E. conservation      — per-account served work sums to total served
//                          work, and cumulatively arrived work equals served
//                          plus still-queued work;
//   F. accounting        — the billed energy equals price x tariff(curve(W))
//                          recomputed independently, and the fairness score
//                          matches eq. (3) on the per-account work;
//   G. admission/value   — admitted counts never exceed offered counts (a
//                          rejected job must never enter a queue), no job
//                          completes after its deadline (the engine abandons
//                          overdue jobs before serving), the work ledger in E
//                          extends with abandoned work, and queued value
//                          follows the exact per-slot value ledger
//                          V(t+1) = V(t) + admitted - completed - abandoned
//                          (base values; completed = realized + decay loss).
//
// Optional strict "scheduler contract" checks validate the *ask* (not just
// the clamped outcome) against r_max / h_max / queue bounds — for schedulers
// that promise clamped decisions (GreFar with clamp_to_queue).
//
// Violations are reported as structured InvariantViolation records (kind,
// slot, indices, observed vs bound, rendered detail) instead of silent
// drift; in kThrow mode the first violation aborts the simulation with a
// ContractViolation carrying the same description.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/energy.h"
#include "sim/fairness.h"
#include "sim/slot_inspector.h"

namespace grefar {

/// Which invariant family a violation belongs to.
enum class InvariantKind {
  kActionShape,        // action/record matrices have wrong dimensions
  kNonFinite,          // NaN/Inf in a decision or derived quantity
  kNegativeDecision,   // negative route/process/served value
  kEligibility,        // work assigned to a DC outside D_j
  kRoutingBound,       // routed jobs exceed Q_j, the ask, or integrality
  kCapacityChain,      // served work does not fit the busy-server allocation
  kQueueRecurrence,    // post-slot queue deviates from the exact update
  kNegativeQueue,      // a queue length went negative
  kWorkConservation,   // account/work flow bookkeeping disagrees
  kEnergyAccounting,   // billed energy != price * tariff(curve(work))
  kFairnessAccounting, // recorded fairness != eq. (3) recomputed
  kSchedulerContract,  // strict-mode ask violates r_max/h_max/queue bounds
  kSolverOptimality,   // solver output beat by the brute-force oracle
  kAdmissionAccounting, // admitted exceeds offered / negative admission stats
  kDeadlineFeasibility, // a job completed after its deadline (invariant G)
  kValueConservation,  // queued value deviates from the per-slot value ledger
};

std::string to_string(InvariantKind kind);

/// One structured violation record.
struct InvariantViolation {
  static constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

  InvariantKind kind = InvariantKind::kActionShape;
  std::int64_t slot = 0;
  std::size_t dc = kNoIndex;        // data center index, if applicable
  std::size_t job_type = kNoIndex;  // job type index, if applicable
  double observed = 0.0;            // the offending value
  double bound = 0.0;               // the bound it broke
  std::string detail;               // human-readable description

  /// "slot 17 [capacity-chain] dc=2: served 12.5 exceeds capacity 10.0 — ..."
  std::string to_string() const;
};

struct InvariantAuditorOptions {
  /// Comparison slack: a <= b passes when a <= b + tolerance * max(1, |b|).
  double tolerance = 1e-6;
  /// Throw ContractViolation on the first violation (Debug/CI mode) instead
  /// of recording and continuing.
  bool throw_on_violation = false;
  /// Stop *recording* (never checking) beyond this many violations.
  std::size_t max_violations = 64;
  /// Strict scheduler-contract bounds on the raw ask; +infinity disables.
  double r_max = std::numeric_limits<double>::infinity();
  double h_max = std::numeric_limits<double>::infinity();
  /// When true, also require the ask itself to respect queue contents
  /// (GreFar's clamp_to_queue contract): sum_i route_{i,j} <= Q_j and
  /// process_{i,j} <= q_{i,j} + route_{i,j}.
  bool expect_queue_bounded_ask = false;
};

class InvariantAuditor final : public SlotInspector {
 public:
  explicit InvariantAuditor(ClusterConfig config, InvariantAuditorOptions options = {});
  /// Shared-config overload (DESIGN.md §12): the auditor re-derives every
  /// invariant from the same immutable config the engine/scheduler hold, so
  /// at million-account scale it must not keep a third value copy.
  explicit InvariantAuditor(std::shared_ptr<const ClusterConfig> config,
                            InvariantAuditorOptions options = {});

  /// Checks every invariant against `record`; records/throws on violations.
  void inspect(const SlotRecord& record) override;

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  std::int64_t slots_audited() const { return slots_audited_; }
  std::size_t total_violations() const { return total_violations_; }

  /// Human summary: "audited 2000 slots: clean" or the first few violations.
  std::string report() const;

  /// Clears violations and the cumulative conservation ledger.
  void reset();

 private:
  void add(InvariantKind kind, std::int64_t slot, std::size_t dc, std::size_t job_type,
           double observed, double bound, std::string detail);
  bool leq(double a, double b) const;   // a <= b within tolerance
  bool near(double a, double b) const;  // |a - b| within tolerance

  std::shared_ptr<const ClusterConfig> config_;  // immutable, shareable
  InvariantAuditorOptions options_;
  FairnessFunction fairness_fn_;

  std::vector<InvariantViolation> violations_;
  std::size_t total_violations_ = 0;
  std::int64_t slots_audited_ = 0;

  // Cumulative work ledger for invariant E (work units). Abandoned work
  // (deadline expiry) leaves the queues without being served and is a third
  // outflow term.
  bool ledger_initialized_ = false;
  double initial_queued_work_ = 0.0;
  double arrived_work_ = 0.0;
  double served_work_ = 0.0;
  double abandoned_work_ = 0.0;

  // Per-slot value ledger for invariant G. The observation carries no value
  // information, so the ledger anchors on the first audited slot's
  // queued_value_after and checks the exact recurrence from the second slot
  // on (reset() re-anchors).
  bool value_ledger_initialized_ = false;
  double prev_queued_value_ = 0.0;

  // Reused scratch (one auditor serves one engine; single-threaded).
  EnergyCostCurve curve_scratch_;
  std::vector<std::int64_t> avail_scratch_;
  std::vector<double> busy_scratch_;
};

}  // namespace grefar
