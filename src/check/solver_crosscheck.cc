#include "check/solver_crosscheck.h"

#include <cmath>
#include <sstream>

#include "solver/brute_force.h"
#include "util/check.h"

namespace grefar {

namespace {

InvariantViolation make_violation(InvariantKind kind, std::size_t dc,
                                  std::size_t job_type, double observed, double bound,
                                  std::string detail) {
  InvariantViolation v;
  v.kind = kind;
  v.slot = 0;
  v.dc = dc;
  v.job_type = job_type;
  v.observed = observed;
  v.bound = bound;
  v.detail = std::move(detail);
  return v;
}

}  // namespace

std::vector<InvariantViolation> crosscheck_solution(
    const PerSlotProblem& problem, const std::vector<double>& u,
    const std::string& solver_name, const SolverCrosscheckOptions& options) {
  constexpr std::size_t kNone = InvariantViolation::kNoIndex;
  const std::size_t J = problem.config().num_job_types();
  std::vector<InvariantViolation> violations;

  if (u.size() != problem.num_vars()) {
    violations.push_back(make_violation(
        InvariantKind::kActionShape, kNone, kNone, static_cast<double>(u.size()),
        static_cast<double>(problem.num_vars()),
        solver_name + ": solution has the wrong dimension"));
    return violations;
  }
  for (std::size_t v = 0; v < u.size(); ++v) {
    if (!std::isfinite(u[v])) {
      violations.push_back(make_violation(InvariantKind::kNonFinite, v / J, v % J,
                                          u[v], 0.0,
                                          solver_name + ": NaN/Inf in solution"));
      return violations;
    }
  }
  if (!problem.polytope().contains(u, options.feasibility_tol)) {
    // Pin down which bound broke for the record.
    const auto& ub = problem.polytope().upper_bounds();
    for (std::size_t v = 0; v < u.size(); ++v) {
      if (u[v] < -options.feasibility_tol || u[v] > ub[v] + options.feasibility_tol) {
        violations.push_back(make_violation(
            InvariantKind::kCapacityChain, v / J, v % J, u[v], ub[v],
            solver_name + ": variable outside its [0, ub] box"));
      }
    }
    if (violations.empty()) {
      violations.push_back(make_violation(
          InvariantKind::kCapacityChain, kNone, kNone, 0.0, 0.0,
          solver_name + ": solution violates a per-DC capacity group cap"));
    }
    return violations;
  }

  // Grid over a tightened copy of the polytope: queue-clamped upper bounds
  // can far exceed the DC capacity cap, and a coarse grid over [0, ub] would
  // then step straight over the feasible interior (leaving all-zeros as the
  // only grid point — a useless oracle). No group member can exceed its cap.
  const std::size_t N = problem.config().num_data_centers();
  std::vector<double> grid_ub = problem.polytope().upper_bounds();
  for (std::size_t i = 0; i < N; ++i) {
    const double cap = problem.curve(i).capacity();
    for (std::size_t j = 0; j < J; ++j) {
      const std::size_t v = problem.index(i, j);
      grid_ub[v] = std::min(grid_ub[v], cap);
    }
  }
  CappedBoxPolytope grid(std::move(grid_ub));
  for (std::size_t i = 0; i < N; ++i) {
    std::vector<std::size_t> members;
    members.reserve(J);
    for (std::size_t j = 0; j < J; ++j) members.push_back(problem.index(i, j));
    grid.add_group(std::move(members), problem.curve(i).capacity());
  }
  const auto brute = minimize_brute_force(
      [&problem](const std::vector<double>& x) { return problem.value(x); },
      grid, options.points_per_dim);
  const double achieved = problem.value(u);
  const double slack =
      options.objective_tol * (1.0 + std::abs(brute.objective));
  if (achieved > brute.objective + slack) {
    std::ostringstream os;
    os << solver_name << ": objective " << achieved
       << " is beaten by the brute-force grid optimum " << brute.objective << " ("
       << brute.evaluated << " feasible grid points, " << options.points_per_dim
       << " per dim) by more than " << slack;
    violations.push_back(make_violation(InvariantKind::kSolverOptimality, kNone, kNone,
                                        achieved, brute.objective, os.str()));
  }
  return violations;
}

std::vector<InvariantViolation> crosscheck_per_slot_solver(
    const PerSlotProblem& problem, PerSlotSolver solver,
    const SolverCrosscheckOptions& options) {
  const std::vector<double> u = solve_per_slot(problem, solver);
  return crosscheck_solution(problem, u, to_string(solver), options);
}

}  // namespace grefar
