file(REMOVE_RECURSE
  "CMakeFiles/grefar_test.dir/core/grefar_test.cc.o"
  "CMakeFiles/grefar_test.dir/core/grefar_test.cc.o.d"
  "grefar_test"
  "grefar_test.pdb"
  "grefar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
