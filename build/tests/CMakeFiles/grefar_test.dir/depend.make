# Empty dependencies file for grefar_test.
# This may be replaced when dependencies are built.
