# Empty dependencies file for tariff_test.
# This may be replaced when dependencies are built.
