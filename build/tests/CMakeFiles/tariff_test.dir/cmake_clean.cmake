file(REMOVE_RECURSE
  "CMakeFiles/tariff_test.dir/sim/tariff_test.cc.o"
  "CMakeFiles/tariff_test.dir/sim/tariff_test.cc.o.d"
  "tariff_test"
  "tariff_test.pdb"
  "tariff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tariff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
