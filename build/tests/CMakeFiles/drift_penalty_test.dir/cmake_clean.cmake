file(REMOVE_RECURSE
  "CMakeFiles/drift_penalty_test.dir/core/drift_penalty_test.cc.o"
  "CMakeFiles/drift_penalty_test.dir/core/drift_penalty_test.cc.o.d"
  "drift_penalty_test"
  "drift_penalty_test.pdb"
  "drift_penalty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_penalty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
