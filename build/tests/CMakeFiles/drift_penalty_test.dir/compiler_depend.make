# Empty compiler generated dependencies file for drift_penalty_test.
# This may be replaced when dependencies are built.
