# Empty dependencies file for tariff_solver_test.
# This may be replaced when dependencies are built.
