file(REMOVE_RECURSE
  "CMakeFiles/tariff_solver_test.dir/core/tariff_solver_test.cc.o"
  "CMakeFiles/tariff_solver_test.dir/core/tariff_solver_test.cc.o.d"
  "tariff_solver_test"
  "tariff_solver_test.pdb"
  "tariff_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tariff_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
