file(REMOVE_RECURSE
  "CMakeFiles/summary_table_test.dir/stats/summary_table_test.cc.o"
  "CMakeFiles/summary_table_test.dir/stats/summary_table_test.cc.o.d"
  "summary_table_test"
  "summary_table_test.pdb"
  "summary_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
