# Empty compiler generated dependencies file for summary_table_test.
# This may be replaced when dependencies are built.
