file(REMOVE_RECURSE
  "CMakeFiles/lookahead_test.dir/lookahead/lookahead_test.cc.o"
  "CMakeFiles/lookahead_test.dir/lookahead/lookahead_test.cc.o.d"
  "lookahead_test"
  "lookahead_test.pdb"
  "lookahead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
