file(REMOVE_RECURSE
  "CMakeFiles/capped_box_test.dir/solver/capped_box_test.cc.o"
  "CMakeFiles/capped_box_test.dir/solver/capped_box_test.cc.o.d"
  "capped_box_test"
  "capped_box_test.pdb"
  "capped_box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capped_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
