# Empty compiler generated dependencies file for capped_box_test.
# This may be replaced when dependencies are built.
