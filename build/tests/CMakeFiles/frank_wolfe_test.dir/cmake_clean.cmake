file(REMOVE_RECURSE
  "CMakeFiles/frank_wolfe_test.dir/solver/frank_wolfe_test.cc.o"
  "CMakeFiles/frank_wolfe_test.dir/solver/frank_wolfe_test.cc.o.d"
  "frank_wolfe_test"
  "frank_wolfe_test.pdb"
  "frank_wolfe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frank_wolfe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
