# Empty dependencies file for frank_wolfe_test.
# This may be replaced when dependencies are built.
