# Empty dependencies file for per_slot_solver_test.
# This may be replaced when dependencies are built.
