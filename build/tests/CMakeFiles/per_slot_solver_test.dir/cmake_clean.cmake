file(REMOVE_RECURSE
  "CMakeFiles/per_slot_solver_test.dir/core/per_slot_solver_test.cc.o"
  "CMakeFiles/per_slot_solver_test.dir/core/per_slot_solver_test.cc.o.d"
  "per_slot_solver_test"
  "per_slot_solver_test.pdb"
  "per_slot_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_slot_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
