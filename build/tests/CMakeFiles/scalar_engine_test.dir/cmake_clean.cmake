file(REMOVE_RECURSE
  "CMakeFiles/scalar_engine_test.dir/sim/scalar_engine_test.cc.o"
  "CMakeFiles/scalar_engine_test.dir/sim/scalar_engine_test.cc.o.d"
  "scalar_engine_test"
  "scalar_engine_test.pdb"
  "scalar_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
