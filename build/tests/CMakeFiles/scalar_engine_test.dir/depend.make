# Empty dependencies file for scalar_engine_test.
# This may be replaced when dependencies are built.
