# Empty compiler generated dependencies file for pgd_test.
# This may be replaced when dependencies are built.
