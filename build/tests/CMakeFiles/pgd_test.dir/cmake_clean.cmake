file(REMOVE_RECURSE
  "CMakeFiles/pgd_test.dir/solver/pgd_test.cc.o"
  "CMakeFiles/pgd_test.dir/solver/pgd_test.cc.o.d"
  "pgd_test"
  "pgd_test.pdb"
  "pgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
