
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace/trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/grefar_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/lookahead/CMakeFiles/grefar_lookahead.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/grefar_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/grefar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/grefar_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/grefar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grefar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/grefar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/price/CMakeFiles/grefar_price.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/grefar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grefar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
