# Empty compiler generated dependencies file for ablation_prices.
# This may be replaced when dependencies are built.
