file(REMOVE_RECURSE
  "../bench/ablation_prices"
  "../bench/ablation_prices.pdb"
  "CMakeFiles/ablation_prices.dir/ablation_prices.cc.o"
  "CMakeFiles/ablation_prices.dir/ablation_prices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
