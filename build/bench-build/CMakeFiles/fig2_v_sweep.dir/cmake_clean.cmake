file(REMOVE_RECURSE
  "../bench/fig2_v_sweep"
  "../bench/fig2_v_sweep.pdb"
  "CMakeFiles/fig2_v_sweep.dir/fig2_v_sweep.cc.o"
  "CMakeFiles/fig2_v_sweep.dir/fig2_v_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_v_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
