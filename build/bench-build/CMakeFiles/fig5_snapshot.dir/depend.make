# Empty dependencies file for fig5_snapshot.
# This may be replaced when dependencies are built.
