file(REMOVE_RECURSE
  "../bench/fig5_snapshot"
  "../bench/fig5_snapshot.pdb"
  "CMakeFiles/fig5_snapshot.dir/fig5_snapshot.cc.o"
  "CMakeFiles/fig5_snapshot.dir/fig5_snapshot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
