file(REMOVE_RECURSE
  "../bench/fig3_fairness"
  "../bench/fig3_fairness.pdb"
  "CMakeFiles/fig3_fairness.dir/fig3_fairness.cc.o"
  "CMakeFiles/fig3_fairness.dir/fig3_fairness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
