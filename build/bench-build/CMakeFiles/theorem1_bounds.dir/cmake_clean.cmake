file(REMOVE_RECURSE
  "../bench/theorem1_bounds"
  "../bench/theorem1_bounds.pdb"
  "CMakeFiles/theorem1_bounds.dir/theorem1_bounds.cc.o"
  "CMakeFiles/theorem1_bounds.dir/theorem1_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
