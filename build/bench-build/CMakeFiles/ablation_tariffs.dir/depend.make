# Empty dependencies file for ablation_tariffs.
# This may be replaced when dependencies are built.
