file(REMOVE_RECURSE
  "../bench/ablation_tariffs"
  "../bench/ablation_tariffs.pdb"
  "CMakeFiles/ablation_tariffs.dir/ablation_tariffs.cc.o"
  "CMakeFiles/ablation_tariffs.dir/ablation_tariffs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tariffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
