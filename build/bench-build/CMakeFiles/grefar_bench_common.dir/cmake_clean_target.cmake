file(REMOVE_RECURSE
  "libgrefar_bench_common.a"
)
