file(REMOVE_RECURSE
  "CMakeFiles/grefar_bench_common.dir/common/experiment.cc.o"
  "CMakeFiles/grefar_bench_common.dir/common/experiment.cc.o.d"
  "libgrefar_bench_common.a"
  "libgrefar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
