# Empty compiler generated dependencies file for grefar_bench_common.
# This may be replaced when dependencies are built.
