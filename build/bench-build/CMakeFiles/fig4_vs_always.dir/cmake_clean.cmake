file(REMOVE_RECURSE
  "../bench/fig4_vs_always"
  "../bench/fig4_vs_always.pdb"
  "CMakeFiles/fig4_vs_always.dir/fig4_vs_always.cc.o"
  "CMakeFiles/fig4_vs_always.dir/fig4_vs_always.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vs_always.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
