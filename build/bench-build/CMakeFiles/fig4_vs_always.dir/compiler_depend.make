# Empty compiler generated dependencies file for fig4_vs_always.
# This may be replaced when dependencies are built.
