file(REMOVE_RECURSE
  "../bench/intext_work_distribution"
  "../bench/intext_work_distribution.pdb"
  "CMakeFiles/intext_work_distribution.dir/intext_work_distribution.cc.o"
  "CMakeFiles/intext_work_distribution.dir/intext_work_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intext_work_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
