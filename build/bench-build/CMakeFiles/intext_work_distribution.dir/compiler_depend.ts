# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for intext_work_distribution.
