# Empty compiler generated dependencies file for intext_work_distribution.
# This may be replaced when dependencies are built.
