file(REMOVE_RECURSE
  "../bench/perf_scheduler"
  "../bench/perf_scheduler.pdb"
  "CMakeFiles/perf_scheduler.dir/perf_scheduler.cc.o"
  "CMakeFiles/perf_scheduler.dir/perf_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
