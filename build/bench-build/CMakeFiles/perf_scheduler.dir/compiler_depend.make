# Empty compiler generated dependencies file for perf_scheduler.
# This may be replaced when dependencies are built.
