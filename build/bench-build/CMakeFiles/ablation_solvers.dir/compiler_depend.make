# Empty compiler generated dependencies file for ablation_solvers.
# This may be replaced when dependencies are built.
