file(REMOVE_RECURSE
  "../bench/scheduler_landscape"
  "../bench/scheduler_landscape.pdb"
  "CMakeFiles/scheduler_landscape.dir/scheduler_landscape.cc.o"
  "CMakeFiles/scheduler_landscape.dir/scheduler_landscape.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
