# Empty dependencies file for scheduler_landscape.
# This may be replaced when dependencies are built.
