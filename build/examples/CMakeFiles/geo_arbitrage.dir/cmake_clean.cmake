file(REMOVE_RECURSE
  "CMakeFiles/geo_arbitrage.dir/geo_arbitrage.cpp.o"
  "CMakeFiles/geo_arbitrage.dir/geo_arbitrage.cpp.o.d"
  "geo_arbitrage"
  "geo_arbitrage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_arbitrage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
