# Empty dependencies file for geo_arbitrage.
# This may be replaced when dependencies are built.
