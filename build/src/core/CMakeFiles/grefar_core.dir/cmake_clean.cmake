file(REMOVE_RECURSE
  "CMakeFiles/grefar_core.dir/drift_penalty.cc.o"
  "CMakeFiles/grefar_core.dir/drift_penalty.cc.o.d"
  "CMakeFiles/grefar_core.dir/grefar.cc.o"
  "CMakeFiles/grefar_core.dir/grefar.cc.o.d"
  "CMakeFiles/grefar_core.dir/per_slot_solvers.cc.o"
  "CMakeFiles/grefar_core.dir/per_slot_solvers.cc.o.d"
  "libgrefar_core.a"
  "libgrefar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
