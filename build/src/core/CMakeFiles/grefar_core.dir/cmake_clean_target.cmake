file(REMOVE_RECURSE
  "libgrefar_core.a"
)
