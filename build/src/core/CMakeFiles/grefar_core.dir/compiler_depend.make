# Empty compiler generated dependencies file for grefar_core.
# This may be replaced when dependencies are built.
