# Empty dependencies file for grefar_baselines.
# This may be replaced when dependencies are built.
