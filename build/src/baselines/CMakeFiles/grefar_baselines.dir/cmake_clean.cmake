file(REMOVE_RECURSE
  "CMakeFiles/grefar_baselines.dir/baselines.cc.o"
  "CMakeFiles/grefar_baselines.dir/baselines.cc.o.d"
  "libgrefar_baselines.a"
  "libgrefar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
