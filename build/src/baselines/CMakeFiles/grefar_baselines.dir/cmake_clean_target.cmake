file(REMOVE_RECURSE
  "libgrefar_baselines.a"
)
