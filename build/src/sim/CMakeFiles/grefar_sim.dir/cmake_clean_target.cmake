file(REMOVE_RECURSE
  "libgrefar_sim.a"
)
