
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/availability.cc" "src/sim/CMakeFiles/grefar_sim.dir/availability.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/availability.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/grefar_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/grefar_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/fairness.cc" "src/sim/CMakeFiles/grefar_sim.dir/fairness.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/fairness.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/grefar_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/queue.cc" "src/sim/CMakeFiles/grefar_sim.dir/queue.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/queue.cc.o.d"
  "/root/repo/src/sim/scalar_engine.cc" "src/sim/CMakeFiles/grefar_sim.dir/scalar_engine.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/scalar_engine.cc.o.d"
  "/root/repo/src/sim/tariff.cc" "src/sim/CMakeFiles/grefar_sim.dir/tariff.cc.o" "gcc" "src/sim/CMakeFiles/grefar_sim.dir/tariff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grefar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/grefar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/price/CMakeFiles/grefar_price.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/grefar_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
