# Empty dependencies file for grefar_sim.
# This may be replaced when dependencies are built.
