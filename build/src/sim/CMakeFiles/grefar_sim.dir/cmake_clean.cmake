file(REMOVE_RECURSE
  "CMakeFiles/grefar_sim.dir/availability.cc.o"
  "CMakeFiles/grefar_sim.dir/availability.cc.o.d"
  "CMakeFiles/grefar_sim.dir/energy.cc.o"
  "CMakeFiles/grefar_sim.dir/energy.cc.o.d"
  "CMakeFiles/grefar_sim.dir/engine.cc.o"
  "CMakeFiles/grefar_sim.dir/engine.cc.o.d"
  "CMakeFiles/grefar_sim.dir/fairness.cc.o"
  "CMakeFiles/grefar_sim.dir/fairness.cc.o.d"
  "CMakeFiles/grefar_sim.dir/metrics.cc.o"
  "CMakeFiles/grefar_sim.dir/metrics.cc.o.d"
  "CMakeFiles/grefar_sim.dir/queue.cc.o"
  "CMakeFiles/grefar_sim.dir/queue.cc.o.d"
  "CMakeFiles/grefar_sim.dir/scalar_engine.cc.o"
  "CMakeFiles/grefar_sim.dir/scalar_engine.cc.o.d"
  "CMakeFiles/grefar_sim.dir/tariff.cc.o"
  "CMakeFiles/grefar_sim.dir/tariff.cc.o.d"
  "libgrefar_sim.a"
  "libgrefar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
