file(REMOVE_RECURSE
  "CMakeFiles/grefar_trace.dir/job_trace.cc.o"
  "CMakeFiles/grefar_trace.dir/job_trace.cc.o.d"
  "CMakeFiles/grefar_trace.dir/price_trace.cc.o"
  "CMakeFiles/grefar_trace.dir/price_trace.cc.o.d"
  "libgrefar_trace.a"
  "libgrefar_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
