# Empty dependencies file for grefar_trace.
# This may be replaced when dependencies are built.
