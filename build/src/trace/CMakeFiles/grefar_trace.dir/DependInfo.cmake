
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/job_trace.cc" "src/trace/CMakeFiles/grefar_trace.dir/job_trace.cc.o" "gcc" "src/trace/CMakeFiles/grefar_trace.dir/job_trace.cc.o.d"
  "/root/repo/src/trace/price_trace.cc" "src/trace/CMakeFiles/grefar_trace.dir/price_trace.cc.o" "gcc" "src/trace/CMakeFiles/grefar_trace.dir/price_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grefar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/grefar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/price/CMakeFiles/grefar_price.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
