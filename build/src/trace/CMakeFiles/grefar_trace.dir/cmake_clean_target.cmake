file(REMOVE_RECURSE
  "libgrefar_trace.a"
)
