file(REMOVE_RECURSE
  "libgrefar_solver.a"
)
