# Empty compiler generated dependencies file for grefar_solver.
# This may be replaced when dependencies are built.
