
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/brute_force.cc" "src/solver/CMakeFiles/grefar_solver.dir/brute_force.cc.o" "gcc" "src/solver/CMakeFiles/grefar_solver.dir/brute_force.cc.o.d"
  "/root/repo/src/solver/capped_box.cc" "src/solver/CMakeFiles/grefar_solver.dir/capped_box.cc.o" "gcc" "src/solver/CMakeFiles/grefar_solver.dir/capped_box.cc.o.d"
  "/root/repo/src/solver/frank_wolfe.cc" "src/solver/CMakeFiles/grefar_solver.dir/frank_wolfe.cc.o" "gcc" "src/solver/CMakeFiles/grefar_solver.dir/frank_wolfe.cc.o.d"
  "/root/repo/src/solver/lp.cc" "src/solver/CMakeFiles/grefar_solver.dir/lp.cc.o" "gcc" "src/solver/CMakeFiles/grefar_solver.dir/lp.cc.o.d"
  "/root/repo/src/solver/projected_gradient.cc" "src/solver/CMakeFiles/grefar_solver.dir/projected_gradient.cc.o" "gcc" "src/solver/CMakeFiles/grefar_solver.dir/projected_gradient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grefar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
