file(REMOVE_RECURSE
  "CMakeFiles/grefar_solver.dir/brute_force.cc.o"
  "CMakeFiles/grefar_solver.dir/brute_force.cc.o.d"
  "CMakeFiles/grefar_solver.dir/capped_box.cc.o"
  "CMakeFiles/grefar_solver.dir/capped_box.cc.o.d"
  "CMakeFiles/grefar_solver.dir/frank_wolfe.cc.o"
  "CMakeFiles/grefar_solver.dir/frank_wolfe.cc.o.d"
  "CMakeFiles/grefar_solver.dir/lp.cc.o"
  "CMakeFiles/grefar_solver.dir/lp.cc.o.d"
  "CMakeFiles/grefar_solver.dir/projected_gradient.cc.o"
  "CMakeFiles/grefar_solver.dir/projected_gradient.cc.o.d"
  "libgrefar_solver.a"
  "libgrefar_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
