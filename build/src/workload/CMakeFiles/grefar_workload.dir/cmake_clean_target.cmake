file(REMOVE_RECURSE
  "libgrefar_workload.a"
)
