
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_process.cc" "src/workload/CMakeFiles/grefar_workload.dir/arrival_process.cc.o" "gcc" "src/workload/CMakeFiles/grefar_workload.dir/arrival_process.cc.o.d"
  "/root/repo/src/workload/cosmos_like.cc" "src/workload/CMakeFiles/grefar_workload.dir/cosmos_like.cc.o" "gcc" "src/workload/CMakeFiles/grefar_workload.dir/cosmos_like.cc.o.d"
  "/root/repo/src/workload/pareto_types.cc" "src/workload/CMakeFiles/grefar_workload.dir/pareto_types.cc.o" "gcc" "src/workload/CMakeFiles/grefar_workload.dir/pareto_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grefar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
