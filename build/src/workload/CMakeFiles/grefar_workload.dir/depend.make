# Empty dependencies file for grefar_workload.
# This may be replaced when dependencies are built.
