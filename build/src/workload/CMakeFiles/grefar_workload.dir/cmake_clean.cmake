file(REMOVE_RECURSE
  "CMakeFiles/grefar_workload.dir/arrival_process.cc.o"
  "CMakeFiles/grefar_workload.dir/arrival_process.cc.o.d"
  "CMakeFiles/grefar_workload.dir/cosmos_like.cc.o"
  "CMakeFiles/grefar_workload.dir/cosmos_like.cc.o.d"
  "CMakeFiles/grefar_workload.dir/pareto_types.cc.o"
  "CMakeFiles/grefar_workload.dir/pareto_types.cc.o.d"
  "libgrefar_workload.a"
  "libgrefar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
