file(REMOVE_RECURSE
  "libgrefar_util.a"
)
