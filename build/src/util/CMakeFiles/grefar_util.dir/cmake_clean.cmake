file(REMOVE_RECURSE
  "CMakeFiles/grefar_util.dir/ascii_chart.cc.o"
  "CMakeFiles/grefar_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/grefar_util.dir/cli.cc.o"
  "CMakeFiles/grefar_util.dir/cli.cc.o.d"
  "CMakeFiles/grefar_util.dir/csv.cc.o"
  "CMakeFiles/grefar_util.dir/csv.cc.o.d"
  "CMakeFiles/grefar_util.dir/json.cc.o"
  "CMakeFiles/grefar_util.dir/json.cc.o.d"
  "CMakeFiles/grefar_util.dir/rng.cc.o"
  "CMakeFiles/grefar_util.dir/rng.cc.o.d"
  "CMakeFiles/grefar_util.dir/strings.cc.o"
  "CMakeFiles/grefar_util.dir/strings.cc.o.d"
  "CMakeFiles/grefar_util.dir/svg_chart.cc.o"
  "CMakeFiles/grefar_util.dir/svg_chart.cc.o.d"
  "libgrefar_util.a"
  "libgrefar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
