# Empty compiler generated dependencies file for grefar_util.
# This may be replaced when dependencies are built.
