file(REMOVE_RECURSE
  "libgrefar_scenario.a"
)
