file(REMOVE_RECURSE
  "CMakeFiles/grefar_scenario.dir/config_io.cc.o"
  "CMakeFiles/grefar_scenario.dir/config_io.cc.o.d"
  "CMakeFiles/grefar_scenario.dir/paper_scenario.cc.o"
  "CMakeFiles/grefar_scenario.dir/paper_scenario.cc.o.d"
  "libgrefar_scenario.a"
  "libgrefar_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
