# Empty compiler generated dependencies file for grefar_scenario.
# This may be replaced when dependencies are built.
