file(REMOVE_RECURSE
  "libgrefar_stats.a"
)
