file(REMOVE_RECURSE
  "CMakeFiles/grefar_stats.dir/histogram.cc.o"
  "CMakeFiles/grefar_stats.dir/histogram.cc.o.d"
  "CMakeFiles/grefar_stats.dir/p2_quantile.cc.o"
  "CMakeFiles/grefar_stats.dir/p2_quantile.cc.o.d"
  "CMakeFiles/grefar_stats.dir/running_stats.cc.o"
  "CMakeFiles/grefar_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/grefar_stats.dir/summary_table.cc.o"
  "CMakeFiles/grefar_stats.dir/summary_table.cc.o.d"
  "CMakeFiles/grefar_stats.dir/time_series.cc.o"
  "CMakeFiles/grefar_stats.dir/time_series.cc.o.d"
  "libgrefar_stats.a"
  "libgrefar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
