# Empty dependencies file for grefar_stats.
# This may be replaced when dependencies are built.
