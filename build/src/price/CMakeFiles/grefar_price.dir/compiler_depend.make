# Empty compiler generated dependencies file for grefar_price.
# This may be replaced when dependencies are built.
