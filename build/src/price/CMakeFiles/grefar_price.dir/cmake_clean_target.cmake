file(REMOVE_RECURSE
  "libgrefar_price.a"
)
