file(REMOVE_RECURSE
  "CMakeFiles/grefar_price.dir/price_model.cc.o"
  "CMakeFiles/grefar_price.dir/price_model.cc.o.d"
  "libgrefar_price.a"
  "libgrefar_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
