file(REMOVE_RECURSE
  "CMakeFiles/grefar_lookahead.dir/lookahead.cc.o"
  "CMakeFiles/grefar_lookahead.dir/lookahead.cc.o.d"
  "CMakeFiles/grefar_lookahead.dir/mpc.cc.o"
  "CMakeFiles/grefar_lookahead.dir/mpc.cc.o.d"
  "libgrefar_lookahead.a"
  "libgrefar_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grefar_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
