file(REMOVE_RECURSE
  "libgrefar_lookahead.a"
)
