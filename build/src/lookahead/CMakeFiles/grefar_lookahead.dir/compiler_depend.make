# Empty compiler generated dependencies file for grefar_lookahead.
# This may be replaced when dependencies are built.
