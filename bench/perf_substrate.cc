// google-benchmark microbenchmarks for the substrates: simplex LP, the
// capped-box oracles, the energy curve, and a full simulation step.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "sim/engine.h"
#include "sim/fairness.h"
#include "solver/capped_box.h"
#include "solver/lp.h"
#include "util/rng.h"

namespace grefar {
namespace {

LinearProgram random_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  LinearProgram lp(vars);
  for (std::size_t j = 0; j < vars; ++j) lp.set_objective(j, rng.uniform(-1.0, 1.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> coeffs(vars);
    for (auto& c : coeffs) c = rng.uniform(0.0, 1.0);
    lp.add_constraint(std::move(coeffs), ConstraintSense::kLessEqual,
                      rng.uniform(1.0, 5.0));
  }
  for (std::size_t j = 0; j < vars; ++j) lp.add_upper_bound(j, 2.0);
  return lp;
}

void BM_SimplexSolve(benchmark::State& state) {
  auto lp = random_lp(static_cast<std::size_t>(state.range(0)),
                      static_cast<std::size_t>(state.range(1)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexSolve)->Args({10, 5})->Args({30, 15})->Args({80, 40});

/// The warm-start benchmark LP: random_lp plus a handful of >= rows, so a
/// cold solve cannot start from the slack basis and must drive artificials
/// out in phase 1 (the frame/window LPs have this shape — their queue
/// dynamics rows are equalities).
LinearProgram warm_bench_lp(std::size_t vars, std::size_t rows) {
  auto lp = random_lp(vars, rows, 11);
  Rng rng(23);
  for (std::size_t r = 0; r < 8; ++r) {
    std::vector<double> coeffs(vars);
    for (auto& c : coeffs) c = rng.uniform(0.0, 1.0);
    lp.add_constraint(std::move(coeffs), ConstraintSense::kGreaterEqual,
                      rng.uniform(0.5, 1.5));
  }
  return lp;
}

void BM_SimplexWarmStart(benchmark::State& state) {
  // The FW/LMO pattern: fixed polytope, new objective every call, each solve
  // re-entering phase 2 from the previous optimal basis. Cycle a pool of
  // pre-generated objectives so the solver never sees the same one twice in
  // a row. Compare against BM_SimplexColdRecost, which runs the identical
  // loop without the basis.
  auto lp = warm_bench_lp(static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(1)));
  Rng rng(17);
  std::vector<double> base(lp.num_vars());
  for (std::size_t j = 0; j < base.size(); ++j) base[j] = rng.uniform(-1.0, 1.0);
  std::vector<std::vector<double>> objectives(16);
  for (auto& c : objectives) {
    c.resize(lp.num_vars());
    for (std::size_t j = 0; j < c.size(); ++j) {
      c[j] = base[j] + rng.uniform(-0.05, 0.05);
    }
  }
  SimplexBasis basis = solve_lp(lp).basis;
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto& c = objectives[cursor];
    cursor = (cursor + 1) % objectives.size();
    for (std::size_t j = 0; j < c.size(); ++j) lp.set_objective(j, c[j]);
    LpSolution sol = solve_lp(lp, basis);
    basis = std::move(sol.basis);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexWarmStart)->Args({80, 40});

void BM_SimplexColdRecost(benchmark::State& state) {
  // Control for BM_SimplexWarmStart: the same objective-cycling loop on the
  // same LP, but every solve is from scratch.
  auto lp = warm_bench_lp(static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(1)));
  Rng rng(17);
  std::vector<double> base(lp.num_vars());
  for (std::size_t j = 0; j < base.size(); ++j) base[j] = rng.uniform(-1.0, 1.0);
  std::vector<std::vector<double>> objectives(16);
  for (auto& c : objectives) {
    c.resize(lp.num_vars());
    for (std::size_t j = 0; j < c.size(); ++j) {
      c[j] = base[j] + rng.uniform(-0.05, 0.05);
    }
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto& c = objectives[cursor];
    cursor = (cursor + 1) % objectives.size();
    for (std::size_t j = 0; j < c.size(); ++j) lp.set_objective(j, c[j]);
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexColdRecost)->Args({80, 40});

void BM_CappedBoxProject(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  CappedBoxPolytope polytope(std::vector<double>(n, 2.0));
  std::vector<std::size_t> group(n);
  for (std::size_t j = 0; j < n; ++j) group[j] = j;
  polytope.add_group(std::move(group), static_cast<double>(n) / 3.0);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.uniform(-1.0, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(polytope.project(y));
  }
}
BENCHMARK(BM_CappedBoxProject)->Arg(8)->Arg(64)->Arg(512);

void BM_CappedBoxLmo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  CappedBoxPolytope polytope(std::vector<double>(n, 2.0));
  std::vector<std::size_t> group(n);
  for (std::size_t j = 0; j < n; ++j) group[j] = j;
  polytope.add_group(std::move(group), static_cast<double>(n) / 3.0);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(polytope.minimize_linear(c));
  }
}
BENCHMARK(BM_CappedBoxLmo)->Arg(8)->Arg(64)->Arg(512);

/// Sparse-fairness kernels at account scale (DESIGN.md §12). The dense score
/// walks all M accounts; the active-set score walks only the ~10^3 that
/// received work. Both produce bitwise-identical values (sim/fairness.h);
/// this pair exists to record the cost gap, so the args are {M, active}.
FairnessFunction fairness_for(std::size_t m) {
  std::vector<double> gamma(m, 1.0 / static_cast<double>(m));
  return FairnessFunction(std::move(gamma));
}

void BM_FairnessScore(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto active = static_cast<std::size_t>(state.range(1));
  FairnessFunction f = fairness_for(m);
  Rng rng(31);
  std::vector<double> r(m, 0.0);
  for (std::size_t a = 0; a < active; ++a) {
    r[(m / active) * a] = rng.uniform(0.0, 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.score(r, 1000.0));
  }
}
BENCHMARK(BM_FairnessScore)->Args({100000, 1000})->Args({1000000, 1000});

void BM_FairnessScoreActive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto active = static_cast<std::size_t>(state.range(1));
  FairnessFunction f = fairness_for(m);
  Rng rng(31);
  std::vector<std::uint32_t> ids;
  std::vector<double> r_active;
  for (std::size_t a = 0; a < active; ++a) {
    ids.push_back(static_cast<std::uint32_t>((m / active) * a));
    r_active.push_back(rng.uniform(0.0, 2.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.score_active(ids.data(), r_active.data(), ids.size(), 1000.0));
  }
}
BENCHMARK(BM_FairnessScoreActive)->Args({100000, 1000})->Args({1000000, 1000});

void BM_EnergyCurve(benchmark::State& state) {
  std::vector<ServerType> types;
  std::vector<std::int64_t> avail;
  Rng rng(5);
  for (int k = 0; k < 8; ++k) {
    types.push_back({"t", rng.uniform(0.5, 1.5), rng.uniform(0.3, 1.5)});
    avail.push_back(rng.uniform_int(10, 100));
  }
  for (auto _ : state) {
    EnergyCostCurve curve(types, avail);
    benchmark::DoNotOptimize(curve.energy_for_work(0.5 * curve.capacity()));
  }
}
BENCHMARK(BM_EnergyCurve);

void BM_SimulationStepGreFar(benchmark::State& state) {
  auto scenario = make_paper_scenario(9);
  auto scheduler = std::make_shared<GreFarScheduler>(scenario.config,
                                                     paper_grefar_params(7.5, 0.0));
  SimulationEngine engine(scenario.config, scenario.prices, scenario.availability,
                          scenario.arrivals, scheduler);
  for (auto _ : state) {
    engine.step();
  }
}
BENCHMARK(BM_SimulationStepGreFar);

void BM_SimulationStepAlways(benchmark::State& state) {
  auto scenario = make_paper_scenario(10);
  auto scheduler = std::make_shared<AlwaysScheduler>(scenario.config);
  SimulationEngine engine(scenario.config, scenario.prices, scenario.availability,
                          scenario.arrivals, scheduler);
  for (auto _ : state) {
    engine.step();
  }
}
BENCHMARK(BM_SimulationStepAlways);

}  // namespace
}  // namespace grefar

#include "common/benchmark_main.h"
