// Fig. 1 — "Three-day trace of electricity prices and total work of arrived
// jobs".
//
// Top panel: hourly electricity price per data center over 72 h.
// Bottom panel: total work of arrived jobs per organization over 72 h,
// showing the diurnal, bursty, non-stationary pattern of the Cosmos-like
// generator (work roughly in the paper's 0-100 range).
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "core/grefar.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("fig1_trace", "reproduce Fig. 1 (3-day price and work trace)");
  add_common_options(cli, /*default_horizon=*/"72");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto csv_dir = cli.get_string("csv-dir");
  const auto svg_dir = cli.get_string("svg-dir");
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Fig. 1: three-day trace", "Ren, He, Xu (ICDCS'12), Fig. 1", seed,
               horizon);

  PaperScenario scenario = make_paper_scenario(seed);

  // -- prices ---------------------------------------------------------------
  std::vector<TimeSeries> prices;
  for (std::size_t dc = 0; dc < 3; ++dc) {
    TimeSeries s("DC #" + std::to_string(dc + 1));
    for (std::int64_t t = 0; t < horizon; ++t) s.add(scenario.prices->price(dc, t));
    prices.push_back(std::move(s));
  }
  std::cout << render_chart("Electricity price", "price", prices, horizon) << "\n";

  // -- per-organization arrived work -----------------------------------------
  std::vector<TimeSeries> work;
  for (std::size_t m = 0; m < scenario.config.num_accounts(); ++m) {
    work.emplace_back("Organization #" + std::to_string(m + 1));
  }
  TimeSeries total("total work");
  for (std::int64_t t = 0; t < horizon; ++t) {
    auto counts = scenario.arrivals->arrivals(t);
    std::vector<double> per_org(scenario.config.num_accounts(), 0.0);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      per_org[scenario.config.job_types[j].account] +=
          static_cast<double>(counts[j]) * scenario.config.job_types[j].work;
    }
    double sum = 0.0;
    for (std::size_t m = 0; m < per_org.size(); ++m) {
      work[m].add(per_org[m]);
      sum += per_org[m];
    }
    total.add(sum);
  }
  std::cout << render_chart("Total work of arrived jobs", "work", work, horizon)
            << "\n";
  std::cout << "mean total work/slot: " << format_fixed(total.mean(), 2)
            << "  (paper's Fig. 1 shows 0-100 with diurnal peaks)\n";

  maybe_write_csv(csv_dir, "fig1_prices", prices);
  maybe_write_csv(csv_dir, "fig1_work", work);
  maybe_write_svg(svg_dir, "fig1_prices", "Electricity price", "price", prices, horizon);
  maybe_write_svg(svg_dir, "fig1_work", "Total work of arrived jobs", "work", work,
                  horizon);

  // Fig. 1 itself only samples the input models; with any observability flag
  // set, additionally run the paper's GreFar reference configuration over the
  // same horizon so --trace/--counters/--profile have a simulation to watch.
  if (obs.any()) {
    std::cout << "\nrunning traced GreFar reference simulation (" << horizon
              << " slots)...\n";
    auto engine = make_scenario_engine(
        scenario,
        std::make_shared<GreFarScheduler>(scenario.config,
                                          paper_grefar_params(7.5, 0.0)),
        {}, audit);
    obs.attach_tracer(*engine);
    engine->run(horizon);
  }
  obs.finish();
  return 0;
}
