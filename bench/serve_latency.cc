// Serve-mode latency/throughput bench (DESIGN.md §14): generates an
// ingest-bound scenario trace on disk (streamed, so generation itself stays
// O(1) in memory), then replays it through the ServiceLoop twice — serial
// ingest→solve→flush vs the three-stage pipeline — and reports slots/sec,
// p50/p99/max solve-stage latency, backpressure counters and getrusage peak
// RSS. The two legs must agree bitwise on every per-slot metric (the
// pipeline determinism contract); the process exits nonzero otherwise, or
// when the optional --max-rss-mb / --p99-slo-ms gates are violated — which
// is how the CI serve smoke asserts bounded memory and the latency SLO on a
// trace ~10x the ingest buffer.
#include <sys/resource.h>

#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>

#include "check/invariant_auditor.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "obs/trace_sink.h"
#include "obs/tracing_inspector.h"
#include "scenario/paper_scenario.h"
#include "scenario/serve_scenario.h"
#include "serve/service_loop.h"

namespace {

using namespace grefar;

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

bool runs_bitwise_equal(const SimMetrics& a, const SimMetrics& b) {
  bool ok = a.slots() == b.slots();
  for (std::size_t t = 0; ok && t < a.slots(); ++t) {
    ok = a.energy_cost.values()[t] == b.energy_cost.values()[t] &&
         a.fairness.values()[t] == b.fairness.values()[t] &&
         a.total_queue_jobs.values()[t] == b.total_queue_jobs.values()[t];
    if (!ok) std::cerr << "metric divergence at slot " << t << "\n";
  }
  if (ok && a.account_work_total.size() != b.account_work_total.size()) ok = false;
  for (std::size_t m = 0; ok && m < a.account_work_total.size(); ++m) {
    ok = a.account_work_total[m] == b.account_work_total[m];
    if (!ok) std::cerr << "account work divergence at account " << m << "\n";
  }
  return ok;
}

struct Leg {
  ServiceStats stats;
  SimMetrics metrics;
};

void print_leg(const char* label, const Leg& leg) {
  std::cout << label << ": " << leg.stats.slots << " slots in "
            << leg.stats.wall_seconds << " s (" << leg.stats.slots_per_second
            << " slots/s), latency p50 " << leg.stats.latency_p50_ms
            << " ms, p99 " << leg.stats.latency_p99_ms << " ms, max "
            << leg.stats.latency_max_ms << " ms\n"
            << "  ingest stalls " << leg.stats.ingest_stalls
            << ", backpressure blocks " << leg.stats.backpressure_blocks
            << ", queue high-water input " << leg.stats.input_queue_high_water
            << " / flush " << leg.stats.flush_queue_high_water << ", peak RSS "
            << peak_rss_mb() << " MB\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar::bench;

  CliParser cli("serve_latency",
                "serve-mode pipeline bench: serial vs pipelined ServiceLoop "
                "over a streamed on-disk trace, bitwise-compared");
  add_common_options(cli, /*default_horizon=*/"4000");
  cli.add_option("mode", "both", "both | serial | pipelined");
  cli.add_option("dcs", "8", "data centers in the serve scenario");
  cli.add_option("types", "96", "job types in the serve scenario");
  cli.add_option("queue-depth", "4", "pipeline queue depth (buffered slots)");
  cli.add_option("V", "4.0", "GreFar cost-delay parameter");
  cli.add_option("beta", "0.5", "GreFar energy-fairness parameter");
  cli.add_option("trace-dir", "",
                 "directory for the generated trace CSVs (default: a fresh "
                 "directory under /tmp; reused files are overwritten)");
  cli.add_option("slot-log", "on",
                 "on | off: persist every slot as JSONL via a flush-stage "
                 "TracingInspector (the serve deployment's slot record log; "
                 "this is the flush work the pipeline overlaps with solve)");
  cli.add_option("max-rss-mb", "0",
                 "fail if getrusage peak RSS exceeds this (0 = no gate)");
  cli.add_option("p99-slo-ms", "0",
                 "fail if pipelined p99 slot latency exceeds this (0 = no gate)");
  cli.add_option("min-speedup", "0",
                 "fail if pipelined/serial throughput falls below this "
                 "(0 = no gate; needs >= 3 cores to be meaningful — the "
                 "three stages are CPU-bound, so on fewer cores they can "
                 "only time-slice)");
  parse_or_exit(cli, argc, argv);

  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto num_dcs = static_cast<std::size_t>(cli.get_int("dcs"));
  const auto num_types = static_cast<std::size_t>(cli.get_int("types"));
  const std::string mode = cli.get_string("mode");
  if (mode != "both" && mode != "serial" && mode != "pipelined") {
    std::cerr << "unknown --mode '" << mode << "'\n";
    return 1;
  }
  AuditMode audit = audit_from_cli(cli);
  if (audit == AuditMode::kAuto) {
#ifdef NDEBUG
    audit = AuditMode::kOff;
#else
    audit = AuditMode::kThrow;
#endif
  }

  ObsSession obs(cli);
  print_header("Serve-mode pipeline latency", "DESIGN.md §14 serve SLO", seed,
               horizon);

  PaperScenario scenario = make_serve_scenario(num_dcs, num_types, seed);
  auto config = std::make_shared<const ClusterConfig>(scenario.config);
  std::cout << "scenario: " << num_dcs << " DCs, " << num_types
            << " job types, 4 accounts, horizon " << horizon << "\n";

  std::string dir = cli.get_string("trace-dir");
  if (dir.empty()) dir = "/tmp/grefar_serve_latency";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "cannot create trace dir " << dir << ": " << ec.message() << "\n";
    return 1;
  }
  std::string jobs_path, prices_path;
  const auto gen_start = std::chrono::steady_clock::now();
  if (Status st = write_serve_traces(scenario, horizon, dir, jobs_path, prices_path);
      !st.ok()) {
    std::cerr << "trace generation failed: " << st.error().message << "\n";
    return 1;
  }
  const double gen_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - gen_start)
                            .count();
  std::cout << "traces: " << jobs_path << " ("
            << std::filesystem::file_size(jobs_path) / 1024 << " KiB), "
            << prices_path << " ("
            << std::filesystem::file_size(prices_path) / 1024
            << " KiB), generated in " << gen_ms << " ms\n";

  GreFarParams params = paper_grefar_params(cli.get_double("V"), cli.get_double("beta"));
  const auto queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth"));

  const bool slot_log = cli.get_string("slot-log") == "on";

  // Each leg rebuilds the whole stack (scheduler state is per-run) and is
  // destroyed before the next builds, so peak RSS reflects one live loop.
  auto run_leg = [&](bool pipelined) -> std::optional<Leg> {
    auto scheduler = std::make_shared<GreFarScheduler>(config, params);
    auto jobs = std::make_unique<StreamingJobTraceSource>(jobs_path, num_types);
    auto prices = std::make_unique<StreamingPriceTraceSource>(prices_path, num_dcs);
    ServiceLoopOptions options;
    options.queue_depth = queue_depth;
    options.pipelined = pipelined;
    ServiceLoop loop(config, scenario.availability, std::move(scheduler),
                     std::move(jobs), std::move(prices), options);
    if (audit != AuditMode::kOff) {
      InvariantAuditorOptions audit_opts;
      audit_opts.throw_on_violation = audit == AuditMode::kThrow;
      loop.add_flush_inspector(
          std::make_shared<InvariantAuditor>(*config, audit_opts));
    }
    if (slot_log) {
      // Both legs write the same log (the pipelined leg overwrites the
      // serial leg's file), so the flush work compared is identical.
      obs::TraceSink::Options sink_opts;
      sink_opts.path = dir + "/slots.jsonl";
      loop.add_flush_inspector(std::make_shared<obs::TracingInspector>(
          std::make_shared<obs::TraceSink>(sink_opts)));
    }
    auto stats = loop.run();
    if (!stats.ok()) {
      std::cerr << (pipelined ? "pipelined" : "serial")
                << " leg failed: " << stats.error().message << "\n";
      return std::nullopt;
    }
    return Leg{stats.value(), loop.metrics()};
  };

  std::optional<Leg> serial, pipelined;
  if (mode != "pipelined") {
    serial = run_leg(/*pipelined=*/false);
    if (!serial.has_value()) return 1;
    print_leg("serial   ", *serial);
  }
  if (mode != "serial") {
    pipelined = run_leg(/*pipelined=*/true);
    if (!pipelined.has_value()) return 1;
    print_leg("pipelined", *pipelined);
  }

  const unsigned cores = std::thread::hardware_concurrency();
  if (serial.has_value() && pipelined.has_value()) {
    if (!runs_bitwise_equal(serial->metrics, pipelined->metrics)) {
      std::cout << "SERVE BENCH FAILED: pipelined metrics diverge from serial\n";
      return 1;
    }
    const double speedup =
        pipelined->stats.slots_per_second / serial->stats.slots_per_second;
    std::cout << "speedup: " << speedup
              << "x pipelined vs serial (bitwise-identical metrics) on "
              << cores << " cores\n";
    if (cores < 3) {
      std::cout << "note: < 3 cores — the stages time-slice instead of "
                   "overlapping, so no throughput win is expected here\n";
    }
    const double min_speedup = cli.get_double("min-speedup");
    if (min_speedup > 0.0 && speedup < min_speedup) {
      std::cout << "SERVE BENCH FAILED: speedup " << speedup
                << "x below gate " << min_speedup << "x\n";
      return 1;
    }
  }

  const double rss = peak_rss_mb();
  const double max_rss = cli.get_double("max-rss-mb");
  if (max_rss > 0.0 && rss > max_rss) {
    std::cout << "SERVE BENCH FAILED: peak RSS " << rss << " MB exceeds gate "
              << max_rss << " MB\n";
    return 1;
  }
  const double slo = cli.get_double("p99-slo-ms");
  if (slo > 0.0 && pipelined.has_value() &&
      pipelined->stats.latency_p99_ms > slo) {
    std::cout << "SERVE BENCH FAILED: pipelined p99 "
              << pipelined->stats.latency_p99_ms << " ms exceeds SLO " << slo
              << " ms\n";
    return 1;
  }
  std::cout << "serve bench OK\n";
  obs.finish();
  return 0;
}
