// Ablation: usage-dependent (convex) electricity billing — the paper's
// §III-A2 extension. Each DC bills through a tiered tariff whose rate rises
// once the slot's energy draw crosses a threshold (demand-charge style).
//
// Compares, under the tariffed meter:
//   * Always (price- and tariff-blind),
//   * GreFar that believes billing is linear (tariff-blind decisions),
//   * GreFar with the tariff in its objective (tariff-aware decisions).
// The aware scheduler should spread work to stay inside cheap tiers and pay
// the least.
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "sim/engine.h"
#include "stats/summary_table.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("ablation_tariffs", "tiered-billing extension (paper Sec. III-A2)");
  add_common_options(cli, /*default_horizon=*/"1000");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("tier-start", "60", "energy units where the expensive tier begins");
  cli.add_option("tier-rate", "2.0", "rate multiplier inside the expensive tier");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");
  const double tier_start = cli.get_double("tier-start");
  const double tier_rate = cli.get_double("tier-rate");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Ablation: tiered (convex) electricity billing",
               "Ren, He, Xu (ICDCS'12), Sec. III-A2 extension", seed, horizon);

  // All runs are *billed* under the tariffed cluster; only the scheduler's
  // belief about billing differs. The sweep materializes the tariffed
  // scenario once; the tariff-blind schedulers are built on a fresh
  // untariffed config so their objective stays linear.
  const std::vector<std::string> labels = {
      "Always (tariff-blind)", "GreFar (tariff-blind)", "GreFar (tariff-aware)"};
  sweep::SweepSpec spec;
  spec.axes = {{.name = "scheduler",
                .labels = {"always", "grefar-blind", "grefar-aware"}}};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint&) {
    PaperScenario scenario = make_paper_scenario(seed);
    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < scenario.config.num_data_centers(); ++i) {
      scenario.config.tariffs.emplace_back(
          std::vector<TieredTariff::Tier>{{tier_start, 1.0}, {inf, tier_rate}});
    }
    return scenario;
  };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(seed) + "/tariffed";
    if (p.leg == 2) {
      // Tariff-aware: built on the artifacts' (tariffed) config.
      plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(V, 0.0), {}};
      return plan;
    }
    plan.make_scheduler =
        [&, leg = p.leg](const sweep::ScenarioArtifacts&) -> std::shared_ptr<Scheduler> {
      ClusterConfig untariffed = make_paper_scenario(seed).config;
      if (leg == 0) return std::make_shared<AlwaysScheduler>(untariffed);
      return std::make_shared<GreFarScheduler>(untariffed,
                                               paper_grefar_params(V, 0.0));
    };
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  SummaryTable table({"scheduler", "avg energy cost", "overall delay", "p95 delay"});
  for (std::size_t leg = 0; leg < labels.size(); ++leg) {
    const auto& m = sweep_results[leg].metrics;
    table.add_row(labels[leg],
                  {m.final_average_energy_cost(), m.mean_delay(), m.delay_p95()});
  }
  std::cout << table.render()
            << "\nexpected: the tariff penalizes the deep drain bursts that plain\n"
               "GreFar uses at price troughs; the tariff-aware variant flattens its\n"
               "draw to stay inside the cheap tier and pays the least.\n";
  obs.finish();
  return 0;
}
