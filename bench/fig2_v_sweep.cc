// Fig. 2 — "GreFar: minimize energy cost without fairness consideration
// (beta = 0)".
//
//  (a) running-average energy cost for V in {0.1, 2.5, 7.5, 20};
//  (b) running-average delay of jobs finishing in DC #1;
//  (c) running-average delay of jobs finishing in DC #2.
//
// Expected shape (paper): larger V => lower energy cost, higher delay.
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("fig2_v_sweep", "reproduce Fig. 2 (V sweep, beta = 0)");
  add_common_options(cli);
  cli.add_option("V", "0.1,2.5,7.5,20", "cost-delay parameters to sweep");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto csv_dir = cli.get_string("csv-dir");
  const auto svg_dir = cli.get_string("svg-dir");
  const auto v_values = cli.get_double_list("V");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Fig. 2: energy cost and delay vs V (beta = 0)",
               "Ren, He, Xu (ICDCS'12), Fig. 2(a)-(c)", seed, horizon);

  // One leg per V on the shared-artifact sweep engine: the paper scenario is
  // materialized once and shared read-only by every leg; each worker reuses
  // one persistent engine/scheduler across its legs (DESIGN.md §16).
  sweep::SweepSpec spec;
  spec.axes = {{.name = "V", .values = v_values}};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint&) { return make_paper_scenario(seed); };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(seed);
    plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(p.value(0), 0.0), {}};
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  std::vector<TimeSeries> energy, delay_dc1, delay_dc2, delay_dc3;
  SummaryTable summary({"V", "avg energy cost", "avg delay DC1", "avg delay DC2",
                        "avg delay DC3", "overall delay"});

  for (std::size_t leg = 0; leg < v_values.size(); ++leg) {
    const auto& m = sweep_results[leg].metrics;
    std::string label = "V=" + format_fixed(v_values[leg], 1);
    energy.push_back(named(m.average_energy_cost(), label));
    delay_dc1.push_back(named(m.average_dc_delay(0), label));
    delay_dc2.push_back(named(m.average_dc_delay(1), label));
    delay_dc3.push_back(named(m.average_dc_delay(2), label));
    summary.add_row(label, {m.final_average_energy_cost(), m.final_average_dc_delay(0),
                            m.final_average_dc_delay(1), m.final_average_dc_delay(2),
                            m.mean_delay()});
  }

  std::cout << render_chart("(a) Average energy cost", "cost", energy, horizon)
            << "\n"
            << render_chart("(b) Average delay in DC #1", "slots", delay_dc1, horizon)
            << "\n"
            << render_chart("(c) Average delay in DC #2", "slots", delay_dc2, horizon)
            << "\n"
            << summary.render()
            << "\npaper shape: energy cost decreases with V (opportunistic use of\n"
               "cheap prices) while queueing delay increases — the O(1/V) vs O(V)\n"
               "tradeoff of Theorem 1.\n";

  maybe_write_csv(csv_dir, "fig2a_energy", energy);
  maybe_write_csv(csv_dir, "fig2b_delay_dc1", delay_dc1);
  maybe_write_csv(csv_dir, "fig2c_delay_dc2", delay_dc2);
  maybe_write_csv(csv_dir, "fig2_delay_dc3", delay_dc3);
  maybe_write_svg(svg_dir, "fig2a_energy", "(a) Average energy cost", "cost", energy,
                  horizon);
  maybe_write_svg(svg_dir, "fig2b_delay_dc1", "(b) Average delay in DC #1", "slots",
                  delay_dc1, horizon);
  maybe_write_svg(svg_dir, "fig2c_delay_dc2", "(c) Average delay in DC #2", "slots",
                  delay_dc2, horizon);
  obs.finish();
  return 0;
}
