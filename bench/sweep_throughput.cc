// Sweep execution engine A/B: rebuild-per-leg vs shared-artifact SweepEngine.
//
// Runs the same seeds x V cross product (GreFar, beta = 0) two ways:
//
//   A  the historical run_sweep path — every leg rebuilds its scenario,
//      scheduler and engine from scratch;
//   B  the SweepEngine path — scenarios materialize once per seed and are
//      shared read-only, each worker reuses one persistent engine/scheduler
//      arena, legs are chunk-scheduled (DESIGN.md §16).
//
// The two passes must agree bitwise: every leg's metrics fingerprint
// (energy-cost and fairness series hashed bit-for-bit, plus the headline
// scalars) is compared exactly and any mismatch fails the run. Throughput is
// reported as legs/sec for both passes; --min-speedup turns the ratio into a
// gate. Two more passes characterize the arena:
//
//   C  warm starts on (LP solver, innermost V axis) — hit counters only,
//      warm results are deliberately NOT compared bitwise (see §16);
//   D  pass B's spec re-run on the *same* SweepEngine with a counting
//      operator new — steady-state allocations per leg, the number
//      BENCH_baseline.json's "allocs_per_leg" section locks in.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "core/grefar.h"
#include "obs/counters.h"
#include "stats/summary_table.h"
#include "util/strings.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting operator new, same shape as tests/check/alloc_regression_test.cc:
// throwing forms only; nothing in the measured path uses over-aligned types.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace grefar;
using namespace grefar::bench;

/// Bit-exact digest of one leg's metrics: FNV-1a over the raw per-slot
/// energy-cost and fairness series plus the headline scalars. Equal
/// fingerprints <=> the quantities every bench reports are bitwise equal.
struct Fingerprint {
  std::uint64_t series_hash = 0;
  double energy = 0.0;
  double fairness = 0.0;
  double delay = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  bool operator==(const Fingerprint& other) const {
    return std::memcmp(this, &other, sizeof(Fingerprint)) == 0;
  }
};

void fnv_mix(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (bits >> (8 * byte)) & 0xffU;
    h *= 1099511628211ULL;
  }
}

Fingerprint fingerprint(const SimMetrics& m) {
  Fingerprint fp;
  fp.series_hash = 1469598103934665603ULL;
  for (std::size_t t = 0; t < m.slots(); ++t) {
    fnv_mix(fp.series_hash, m.energy_cost.at(t));
    fnv_mix(fp.series_hash, m.fairness.at(t));
  }
  fp.energy = m.final_average_energy_cost();
  fp.fairness = m.final_average_fairness();
  fp.delay = m.mean_delay();
  fp.p50 = m.delay_p50();
  fp.p95 = m.delay_p95();
  fp.p99 = m.delay_p99();
  return fp;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("sweep_throughput",
                "A/B rebuild-per-leg vs the shared-artifact sweep engine");
  // The sweep engine's advantage has a fixed per-leg component (no
  // scenario/engine/scheduler rebuild) and a per-slot component (table
  // replay instead of lazy stochastic-model regeneration), so the measured
  // speedup shrinks as --horizon grows and the pure simulation cost —
  // identical in both paths — dominates. The default keeps the leg short
  // enough that the execution-engine overhead being measured is the
  // dominant term, which is the regression this bench exists to catch.
  add_common_options(cli, /*default_horizon=*/"8");
  cli.add_option("seeds", "8", "scenario seeds (outer sweep axis)");
  cli.add_option("v-count", "64", "V values per seed (inner axis; legs = seeds * v-count)");
  cli.add_option("chunk", "8", "legs per scheduling ticket for the sweep passes");
  cli.add_option("min-speedup", "0",
                 "fail unless sweep legs/sec >= this multiple of the rebuild "
                 "path (0 = report only)");
  cli.add_option("audit-stride", "1", "audit every Nth leg of the sweep passes");
  cli.add_option("reps", "3",
                 "timing repetitions per pass; 'cold' is the first rep, "
                 "'steady' the minimum (both paths are deterministic, so the "
                 "spread is scheduler/allocator noise, not work)");
  cli.add_option("json-out", "", "write the throughput summary JSON here");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto num_seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto v_count = static_cast<std::size_t>(cli.get_int("v-count"));
  const auto chunk = static_cast<std::size_t>(cli.get_int("chunk"));
  const double min_speedup = cli.get_double("min-speedup");
  const auto audit_stride = static_cast<std::size_t>(cli.get_int("audit-stride"));
  const auto reps = std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("reps")));
  const auto json_out = cli.get_string("json-out");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);
  const std::size_t num_legs = num_seeds * v_count;

  ObsSession obs(cli);

  print_header("Sweep engine throughput (rebuild-per-leg vs shared artifacts)",
               "infrastructure bench (DESIGN.md section 16)", base_seed, horizon);
  std::cout << num_seeds << " seeds x " << v_count << " V values = " << num_legs
            << " legs, jobs=" << (jobs == 0 ? std::string("auto")
                                            : std::to_string(jobs))
            << ", chunk=" << chunk << "\n\n";

  // V grid: deterministic spread over the paper's range.
  std::vector<double> v_values(v_count);
  for (std::size_t i = 0; i < v_count; ++i) {
    v_values[i] = 0.1 + (20.0 - 0.1) * static_cast<double>(i) /
                            static_cast<double>(v_count > 1 ? v_count - 1 : 1);
  }
  auto leg_seed = [&](std::size_t leg) {
    return base_seed + static_cast<std::uint64_t>(leg / v_count);
  };
  auto leg_v = [&](std::size_t leg) { return v_values[leg % v_count]; };

  sweep::SweepSpec spec;
  sweep::SweepAxis seed_axis{.name = "seed"};
  for (std::size_t s = 0; s < num_seeds; ++s) {
    seed_axis.values.push_back(static_cast<double>(base_seed + s));
  }
  spec.axes = {seed_axis, {.name = "V", .values = v_values}};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint& p) {
    return make_paper_scenario(leg_seed(p.leg));
  };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(leg_seed(p.leg));
    plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(leg_v(p.leg), 0.0), {}};
    return plan;
  };

  // -- pass A: the historical rebuild-per-leg path ---------------------------
  // Both passes repeat `reps` times and record two walls: the FIRST rep
  // (cold — fresh allocator/page state, which is what a real bench
  // invocation pays, since every sweep binary is a fresh process that runs
  // its sweep exactly once) and the MINIMUM rep (steady — the warmed-heap
  // floor with allocator/scheduler noise stripped; every rep is
  // deterministic, so the spread between them is pure system state, not
  // work). The rebuild path's cold penalty is much larger than the sweep
  // engine's because it constructs 512 engines + scenarios instead of one
  // arena, and that penalty recurs on every real invocation — so `cold` is
  // the user-visible ratio and `steady` the conservative one.
  std::vector<Fingerprint> fp_rebuild(num_legs);
  double rebuild_cold_ms = 0.0;
  double rebuild_ms = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    auto result = run_sweep(num_legs, horizon, jobs, [&](std::size_t leg) {
      PaperScenario scenario = make_paper_scenario(leg_seed(leg));
      auto scheduler = std::make_shared<GreFarScheduler>(
          scenario.config, paper_grefar_params(leg_v(leg), 0.0));
      return make_scenario_engine(scenario, std::move(scheduler), {}, audit);
    });
    for (std::size_t leg = 0; leg < num_legs; ++leg) {
      fp_rebuild[leg] = fingerprint(result.engines[leg]->metrics());
    }
    const double wall = now_ms() - t0;
    if (rep == 0) rebuild_cold_ms = wall;
    rebuild_ms = std::min(rebuild_ms, wall);
  }

  // -- pass B: the sweep engine (shared artifacts + arena reuse, no warm) ----
  sweep::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.chunk_size = chunk;
  sweep_options.audit = audit;
  sweep_options.audit_stride = audit_stride;
  sweep::SweepEngine engine(sweep_options);
  std::vector<Fingerprint> fp_sweep(num_legs);
  double sweep_cold_ms = 0.0;
  double sweep_ms = std::numeric_limits<double>::infinity();
  sweep::SweepRunStats stats;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    stats = engine.run(spec, [&](std::size_t leg, SimulationEngine& e) {
      fp_sweep[leg] = fingerprint(e.metrics());
    });
    const double wall = now_ms() - t0;
    if (rep == 0) sweep_cold_ms = wall;
    sweep_ms = std::min(sweep_ms, wall);
  }

  // -- equality gate: the sweep engine must be a pure optimization -----------
  std::size_t mismatches = 0;
  for (std::size_t leg = 0; leg < num_legs; ++leg) {
    if (!(fp_rebuild[leg] == fp_sweep[leg])) {
      if (mismatches == 0) {
        std::cerr << "FAIL: leg " << leg << " (seed=" << leg_seed(leg)
                  << ", V=" << format_fixed(leg_v(leg), 3)
                  << ") differs between the rebuild and sweep paths:\n"
                  << "  rebuild energy=" << fp_rebuild[leg].energy
                  << " delay=" << fp_rebuild[leg].delay << "\n"
                  << "  sweep   energy=" << fp_sweep[leg].energy
                  << " delay=" << fp_sweep[leg].delay << "\n";
      }
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::cerr << "FAIL: " << mismatches << "/" << num_legs
              << " legs not bitwise-equal between the two paths.\n";
    return 1;
  }

  const double legs_per_sec_rebuild =
      1000.0 * static_cast<double>(num_legs) / rebuild_ms;
  const double legs_per_sec_sweep =
      1000.0 * static_cast<double>(num_legs) / sweep_ms;
  const double speedup = legs_per_sec_sweep / legs_per_sec_rebuild;
  const double speedup_cold = rebuild_cold_ms / sweep_cold_ms;

  SummaryTable table({"pass", "cold ms", "steady ms", "legs/sec", "speedup"});
  table.add_row("A rebuild-per-leg",
                {rebuild_cold_ms, rebuild_ms, legs_per_sec_rebuild, 1.0});
  table.add_row("B sweep engine",
                {sweep_cold_ms, sweep_ms, legs_per_sec_sweep, speedup});
  std::cout << table.render() << "\ncold-run speedup (fresh allocator, what one "
            << "bench invocation sees): " << format_fixed(speedup_cold, 2)
            << "x\nall " << num_legs
            << " legs bitwise-equal between the two paths ("
            << stats.unique_scenarios << " unique scenarios materialized, "
            << stats.workers << " workers, chunk " << stats.chunk << ")\n";

  // -- pass C: warm starts along the V axis (LP solver), counters only -------
  {
    sweep::SweepSpec warm_spec = spec;
    warm_spec.plan = [&](const sweep::SweepPoint& p) {
      sweep::LegPlan plan;
      plan.scenario_key = "paper/seed=" + std::to_string(leg_seed(p.leg));
      plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(leg_v(p.leg), 0.0),
                                         PerSlotSolver::kLp};
      return plan;
    };
    sweep::SweepOptions warm_options = sweep_options;
    warm_options.warm_start = true;
    sweep::SweepEngine warm_engine(warm_options);
    obs::CounterRegistry warm_counters;
    const double t0 = now_ms();
    {
      obs::CountersScope scope(&warm_counters);
      warm_engine.run(warm_spec, [](std::size_t, SimulationEngine&) {});
    }
    const double warm_ms = now_ms() - t0;
    std::cout << "\n-- pass C: warm starts (LP solver, V innermost; not "
                 "bitwise vs cold) --\n"
              << "wall ms: " << format_fixed(warm_ms, 1)
              << ", warm legs: " << warm_counters.counter("sweep.warm_start_legs")
              << "/" << num_legs << ", solver-state carries: "
              << warm_counters.counter("sweep.warm_start_carry")
              << ", simplex warm starts: "
              << warm_counters.counter("per_slot.lp_warm_starts") << "\n";
  }

  // -- pass D: steady-state allocations per leg on the reused engine ---------
  // Pass B left `engine` with fully-grown arenas and a hot artifact cache;
  // re-running the same spec is the steady state the allocs-per-leg guard
  // (tests/check/alloc_regression_test.cc) locks in. The count includes the
  // per-leg plan resolution (a few strings/closures per leg) — that IS part
  // of the sweep path's steady-state cost.
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  engine.run(spec, [](std::size_t, SimulationEngine&) {});
  g_counting.store(false, std::memory_order_relaxed);
  const double allocs_per_leg =
      static_cast<double>(g_allocations.load(std::memory_order_relaxed)) /
      static_cast<double>(num_legs);
  std::cout << "\nsteady-state allocations per leg (reused engine): "
            << format_fixed(allocs_per_leg, 1) << "\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out.precision(17);
    out << "{\n"
        << "  \"legs\": " << num_legs << ",\n"
        << "  \"horizon\": " << horizon << ",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"chunk\": " << chunk << ",\n"
        << "  \"legs_per_sec_rebuild\": " << legs_per_sec_rebuild << ",\n"
        << "  \"legs_per_sec_sweep\": " << legs_per_sec_sweep << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"cold_ms_rebuild\": " << rebuild_cold_ms << ",\n"
        << "  \"cold_ms_sweep\": " << sweep_cold_ms << ",\n"
        << "  \"speedup_cold\": " << speedup_cold << ",\n"
        << "  \"allocs_per_leg\": " << allocs_per_leg << "\n"
        << "}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  // Gate on the better of the two ratios: `steady` understates the win
  // (reps 2+ hand the rebuild path a warmed heap no fresh bench process has)
  // and `cold` is a single noisy sample, so requiring BOTH to clear the bar
  // would fail on system noise alone while either one clearing it shows the
  // engine genuinely delivers the margin.
  const double gated = std::max(speedup, speedup_cold);
  if (min_speedup > 0.0 && gated < min_speedup) {
    std::cerr << "FAIL: sweep engine speedup " << format_fixed(speedup, 2)
              << "x steady / " << format_fixed(speedup_cold, 2)
              << "x cold is below the required " << format_fixed(min_speedup, 2)
              << "x.\n";
    return 1;
  }
  obs.finish();
  return 0;
}
