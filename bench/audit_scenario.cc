// Audit driver: every scheduler in the library runs the paper scenario with
// the per-slot InvariantAuditor attached, and the process exits nonzero if
// any slot of any run violates an invariant (check/invariant_auditor.h for
// the full set: queue recurrences, routing bounds, the capacity chain,
// eligibility masks, work conservation, energy/fairness accounting).
//
// This is the CI end-to-end correctness gate — a machine-checked version of
// "all the figures still mean what they claim". Run it Debug for the extra
// libstdc++ assertions; the auditor itself works in any build type.
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "check/invariant_auditor.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "lookahead/mpc.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("audit_scenario",
                "run every scheduler under the per-slot invariant auditor");
  add_common_options(cli);
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "100", "GreFar energy-fairness parameter (FW/PGD legs)");
  cli.add_option("mpc-window", "4", "MPC lookahead window (slots)");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto mpc_window = cli.get_int("mpc-window");
  const auto jobs = jobs_from_cli(cli);
  // The driver exists to audit: kRecord collects every violation for the
  // report below; --audit=throw aborts a leg on its first violation instead.
  AuditMode audit = audit_from_cli(cli);
  if (audit != AuditMode::kThrow) audit = AuditMode::kRecord;

  ObsSession obs(cli);

  print_header("Invariant audit: all schedulers, paper scenario",
               "correctness gate (not a paper figure)", seed, horizon);

  struct Leg {
    std::string label;
    std::function<std::shared_ptr<Scheduler>(const PaperScenario&)> make;
  };
  std::vector<Leg> legs;
  auto add_grefar = [&](const std::string& label, double b, PerSlotSolver solver) {
    legs.push_back({label, [=](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
                      return std::make_shared<GreFarScheduler>(
                          s.config, paper_grefar_params(V, b), solver);
                    }});
  };
  add_grefar("GreFar greedy", 0.0, PerSlotSolver::kGreedy);
  add_grefar("GreFar LP", 0.0, PerSlotSolver::kLp);
  add_grefar("GreFar FW", beta, PerSlotSolver::kFrankWolfe);
  add_grefar("GreFar PGD", beta, PerSlotSolver::kProjectedGradient);
  legs.push_back({"Always", [](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
                    return std::make_shared<AlwaysScheduler>(s.config);
                  }});
  legs.push_back(
      {"CheapestFirst", [](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
         return std::make_shared<CheapestFirstScheduler>(s.config);
       }});
  legs.push_back({"Random", [seed](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
                    return std::make_shared<RandomScheduler>(s.config, seed ^ 0xF00DULL);
                  }});
  legs.push_back({"LocalOnly", [](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
                    return std::make_shared<LocalOnlyScheduler>(s.config);
                  }});
  legs.push_back(
      {"PriceThreshold", [](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
         return std::make_shared<PriceThresholdScheduler>(s.config, 0.45);
       }});
  legs.push_back(
      {"MPC", [mpc_window](const PaperScenario& s) -> std::shared_ptr<Scheduler> {
         MpcParams p;
         p.window = mpc_window;
         return std::make_shared<MpcScheduler>(s.config, s.prices, s.availability,
                                               s.arrivals, p);
       }});

  auto sweep = run_sweep(legs.size(), horizon, jobs, [&](std::size_t leg) {
    PaperScenario scenario = make_paper_scenario(seed);
    return make_scenario_engine(scenario, legs[leg].make(scenario), {}, audit);
  }, &obs);

  SummaryTable table({"scheduler", "slots audited", "violations", "leg ms"});
  bool clean = true;
  for (std::size_t leg = 0; leg < legs.size(); ++leg) {
    const auto* auditor =
        dynamic_cast<const InvariantAuditor*>(sweep.engines[leg]->inspector());
    if (auditor == nullptr) {
      std::cerr << "error: no auditor attached to leg " << legs[leg].label << "\n";
      return 2;
    }
    table.add_row(legs[leg].label,
                  {static_cast<double>(auditor->slots_audited()),
                   static_cast<double>(auditor->total_violations()),
                   sweep.leg_ms[leg]});
    if (!auditor->ok()) {
      clean = false;
      std::cout << "-- " << legs[leg].label << " --\n" << auditor->report() << "\n";
    }
  }
  std::cout << table.render() << "\n";

  if (!clean) {
    std::cout << "AUDIT FAILED: invariant violations detected (see above)\n";
    return 1;
  }
  std::cout << "audit clean: every slot of every scheduler satisfied all "
               "invariants\n";
  obs.finish();
  return 0;
}
