// Theorem 1 empirical check (the paper's analysis section).
//
// On the literal queue dynamics (12)-(13):
//  (a) the largest queue grows O(V) in the cost-delay parameter;
//  (b) GreFar's time-average cost approaches the optimal T-step lookahead
//      policy's cost (eq. (19)) with an O(1/V) gap.
//
// Uses a small instance where the frame problem is an exact LP.
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "lookahead/lookahead.h"
#include "price/price_model.h"
#include "sim/scalar_engine.h"
#include "stats/summary_table.h"
#include "workload/arrival_process.h"

namespace {

grefar::ClusterConfig theorem_config() {
  grefar::ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

std::shared_ptr<grefar::TablePriceModel> theorem_prices() {
  return std::make_shared<grefar::TablePriceModel>(
      std::vector<std::vector<double>>{{0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
                                       {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("theorem1_bounds", "empirically check Theorem 1's O(V)/O(1/V) bounds");
  add_common_options(cli, /*default_horizon=*/"1600");
  cli.add_option("T", "8", "lookahead frame length (horizon must be R*T)");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto T = cli.get_int("T");
  const auto jobs = jobs_from_cli(cli);

  ObsSession obs(cli);

  print_header("Theorem 1: queue bound O(V), optimality gap O(1/V)",
               "Ren, He, Xu (ICDCS'12), Theorem 1", seed, horizon);

  auto config = theorem_config();
  auto prices = theorem_prices();

  // Optimal T-step lookahead cost (eq. (19)).
  FullAvailability avail_la(config.data_centers);
  ConstantArrivals arrivals_la({6});
  LookaheadParams lp;
  lp.T = T;
  lp.R = horizon / T;
  lp.r_max = 50.0;
  lp.h_max = 50.0;
  lp.jobs = jobs;  // frame LPs fan out; costs are bit-identical at any value
  double optimal = solve_lookahead(config, *prices, avail_la, arrivals_la, lp).average_cost;
  std::cout << "optimal T-step lookahead average cost (T=" << T
            << "): " << format_fixed(optimal, 4) << "\n\n";

  SummaryTable table({"V", "avg cost", "gap to lookahead", "gap * V", "max queue",
                      "max queue / V"});
  for (double V : {0.5, 2.0, 8.0, 32.0, 128.0, 512.0}) {
    auto avail = std::make_shared<FullAvailability>(config.data_centers);
    auto arrivals = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});
    GreFarParams params;
    params.V = V;
    params.r_max = 50.0;
    params.h_max = 50.0;
    params.clamp_to_queue = true;
    params.process_after_routing = false;  // literal eq. (13) ordering
    auto scheduler = std::make_shared<GreFarScheduler>(config, params);
    ScalarQueueSimulator sim(config, prices, avail, arrivals, scheduler);
    sim.run(horizon);
    double cost = sim.average_cost(0.0);
    double gap = cost - optimal;
    table.add_row("V=" + format_fixed(V, 1),
                  {cost, gap, gap * V, sim.max_queue_observed(),
                   sim.max_queue_observed() / V});
  }
  std::cout << table.render()
            << "\nTheorem 1 shape: 'gap * V' stays bounded (O(1/V) optimality gap)\n"
               "while 'max queue / V' stays bounded (O(V) queue growth). Very large\n"
               "V can dip below the lookahead cost because work deferred past the\n"
               "horizon end is never charged.\n\n";

  // -- beta > 0: the energy-fairness regime ---------------------------------
  // Two accounts share the cluster; the lookahead bound now comes from
  // Frank-Wolfe over the frame polytope (solve_lookahead_fair).
  const double beta = 10.0;
  ClusterConfig fair_config = theorem_config();
  fair_config.accounts = {{"a", 0.5}, {"b", 0.5}};
  fair_config.job_types = {{"ja", 1.0, {0, 1}, 0}, {"jb", 1.0, {0, 1}, 1}};

  FullAvailability fair_avail(fair_config.data_centers);
  ConstantArrivals fair_arrivals_la({3, 3});
  FairLookaheadParams flp;
  flp.base = lp;
  flp.base.R = std::min<std::int64_t>(lp.R, 50);  // FW per frame is pricier
  flp.beta = beta;
  double fair_optimal =
      solve_lookahead_fair(fair_config, *prices, fair_avail, fair_arrivals_la, flp)
          .average_cost;
  std::cout << "beta = " << format_fixed(beta, 1)
            << " energy-fairness lookahead optimum (FW over frame LP): "
            << format_fixed(fair_optimal, 4) << "\n\n";

  SummaryTable fair_table({"V", "avg g = e - beta*f", "gap to lookahead", "max queue"});
  for (double V : {2.0, 32.0, 128.0}) {
    auto avail = std::make_shared<FullAvailability>(fair_config.data_centers);
    auto arrivals =
        std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{3, 3});
    GreFarParams params;
    params.V = V;
    params.beta = beta;
    params.r_max = 50.0;
    params.h_max = 50.0;
    params.clamp_to_queue = true;
    params.process_after_routing = false;  // literal eq. (13) ordering
    auto scheduler = std::make_shared<GreFarScheduler>(fair_config, params);
    ScalarQueueSimulator sim(fair_config, prices, avail, arrivals, scheduler);
    sim.run(flp.base.R * flp.base.T);
    double cost = sim.average_cost(beta);
    fair_table.add_row("V=" + format_fixed(V, 1),
                       {cost, cost - fair_optimal, sim.max_queue_observed()});
  }
  std::cout << fair_table.render()
            << "\nsame story with fairness in the objective: the gap shrinks as V\n"
               "grows while queues grow at most linearly.\n";
  obs.finish();
  return 0;
}
