// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary: builds the paper scenario, runs one or more schedulers
// through the job-level engine, prints the paper's y-axes as ASCII charts
// and summary tables, and (with --csv-dir) drops the raw series as CSV for
// external plotting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace_sink.h"
#include "scenario/paper_scenario.h"
#include "sim/engine.h"
#include "stats/time_series.h"
#include "sweep/sweep_engine.h"
#include "util/cli.h"

namespace grefar::bench {

/// Registers the options shared by all experiment binaries (including
/// --jobs for the sweep binaries; see run_sweep, and the observability
/// flags --trace/--counters/--profile; see ObsSession).
void add_common_options(CliParser& cli, const std::string& default_horizon = "2000");

/// One binary's observability session, driven by the common flags:
///
///   --trace=<path>  write one JSONL slot record per simulated slot (the
///                   tracer attaches to leg 0 of a sweep / the reference
///                   engine of a comparison run),
///   --counters      collect solver/engine counters and print them as a
///                   JSON block at exit,
///   --profile       collect per-phase wall times and print the breakdown
///                   table at exit.
///
/// Constructing the session installs the counter/profile registries on the
/// calling thread (the parallel runner forwards them to worker threads and
/// merges at join, so counter totals are identical at any --jobs value).
/// With none of the flags given every member stays null and the run is
/// untouched. finish() prints the requested reports; the destructor calls
/// it as a fallback.
class ObsSession {
 public:
  explicit ObsSession(const CliParser& cli);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return sink_ != nullptr; }
  bool counting() const { return counters_ != nullptr; }
  bool profiling() const { return profile_ != nullptr; }
  bool any() const { return tracing() || counting() || profiling(); }

  /// Attaches a TracingInspector to `engine`, tee-ing with any inspector
  /// already attached (the invariant auditor). No-op when --trace is off.
  void attach_tracer(SimulationEngine& engine) const;

  /// Prints the --counters JSON block and the --profile table, flushes and
  /// reports the trace file. Idempotent; deactivates the registries first
  /// so the reporting itself is never measured.
  void finish();

  const obs::CounterRegistry* counters() const { return counters_.get(); }
  const obs::TraceSink* sink() const { return sink_.get(); }

 private:
  std::shared_ptr<obs::TraceSink> sink_;
  std::unique_ptr<obs::CounterRegistry> counters_;
  std::unique_ptr<obs::ProfileRegistry> profile_;
  std::optional<obs::CountersScope> counters_scope_;
  std::optional<obs::ProfileScope> profile_scope_;
  bool finished_ = false;
};

/// Parses --jobs: 0 (the default) means all hardware threads, 1 forces the
/// serial path, N caps the worker count at N.
std::size_t jobs_from_cli(const CliParser& cli);

/// Parses --audit into the scenario AuditMode ("auto" | "off" | "throw" |
/// "record"); exits with a usage error on anything else. "auto" keeps the
/// build-type default: every-slot invariant auditing in Debug, none in
/// Release (see AuditMode in scenario/paper_scenario.h).
AuditMode audit_from_cli(const CliParser& cli);

/// What run_sweep hands back: one engine (metrics inside) and one wall-clock
/// measurement per leg, both in leg order.
struct SweepResult {
  std::vector<std::unique_ptr<SimulationEngine>> engines;
  std::vector<double> leg_ms;  // build + run wall-clock per leg
};

/// Runs `count` independent simulation legs for `horizon` slots each,
/// fanned across `jobs` worker threads (`jobs` == 1 runs inline, serially,
/// in leg order — the historical behaviour, bit-for-bit).
///
/// `make_engine(leg)` is called on a worker thread and must build the leg's
/// *entire* stack — scenario, scheduler, engine. Legs must not share model
/// instances: the stochastic models (prices, availability, arrivals) carry
/// lazily extended mutable caches, so a shared instance is a data race.
/// Rebuilding a scenario from the same seed per leg is deterministic and
/// costs microseconds, and it makes the sweep output independent of the
/// worker count: results land in per-leg slots and are aggregated in leg
/// order after every leg finished.
///
/// When `obs` is given and tracing is on, leg 0 gets the TracingInspector
/// attached before it runs (one traced reference leg keeps trace files a
/// bounded size regardless of sweep width).
SweepResult run_sweep(
    std::size_t count, std::int64_t horizon, std::size_t jobs,
    const std::function<std::unique_ptr<SimulationEngine>(std::size_t)>& make_engine,
    const ObsSession* obs = nullptr);

/// Runs a declarative SweepSpec on the shared-artifact sweep engine
/// (src/sweep/): scenarios materialize once per unique key, each worker
/// reuses one persistent engine/scheduler across its legs, and legs are
/// chunk-scheduled — same bitwise output at any `jobs` per DESIGN.md §16.
/// When `obs` is given and tracing is on, leg 0 gets the TracingInspector
/// attached (tee-ing with the leg's auditor) before it runs.
std::vector<sweep::SweepLegResult> run_sweep_spec(const sweep::SweepSpec& spec,
                                                  std::size_t jobs, AuditMode audit,
                                                  const ObsSession* obs = nullptr);

/// Parses argv; exits the process on --help (status 0) or bad flags (1).
void parse_or_exit(CliParser& cli, int argc, char** argv);

/// Renders `series` (already running-averaged if desired) as an ASCII chart.
std::string render_chart(const std::string& title, const std::string& y_label,
                         std::vector<TimeSeries> series, std::int64_t horizon);

/// Writes the series to `<csv_dir>/<name>.csv` when csv_dir is non-empty.
void maybe_write_csv(const std::string& csv_dir, const std::string& name,
                     const std::vector<TimeSeries>& series);

/// Writes an SVG rendering of the series to `<svg_dir>/<name>.svg` when
/// svg_dir (--svg-dir) is non-empty.
void maybe_write_svg(const std::string& svg_dir, const std::string& name,
                     const std::string& title, const std::string& y_label,
                     const std::vector<TimeSeries>& series, std::int64_t horizon);

/// Names a time series after its scheduler ("GreFar(V=7.50, beta=0.0)").
TimeSeries named(TimeSeries series, std::string name);

/// Standard header printed at the top of every experiment.
void print_header(const std::string& experiment, const std::string& paper_ref,
                  std::uint64_t seed, std::int64_t horizon);

}  // namespace grefar::bench
