// Drop-in replacement for BENCHMARK_MAIN() that stamps the *project's* build
// type into the benchmark context as "grefar_build_type".
//
// google-benchmark already reports "library_build_type", but that describes
// how the benchmark *library* was compiled (the distro package is a Debug
// build, permanently reporting "debug") and says nothing about this repo's
// code. Perf numbers from a Debug build of the schedulers are meaningless as
// baselines, so run_perf.sh keys its refusal off this field instead.
//
// Include exactly once per benchmark binary, in place of BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("grefar_build_type", "release");
#else
  benchmark::AddCustomContext("grefar_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
